"""Cross-stage program fusion — modelled and executed exchange savings.

A fused :class:`repro.StencilProgram` exchanges halos once per group of
consecutive equal-radius stages instead of once per stage.  This benchmark
prices both schedules with :func:`repro.analysis.program_fusion_summary`
(the identical arithmetic the routing scheduler uses), executes both on the
sharded program runner, and asserts the acceptance criterion: **fusion cuts
the halo-exchange count per program step**, the executed counts match the
model exactly, and the fused/unfused outputs stay bit-identical.

Regenerate with::

    pytest benchmarks/bench_program_fusion.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro import (
    Problem,
    ShardedProgramRunner,
    StencilPattern,
    StencilProgram,
    StencilSession,
)
from repro.analysis import program_fusion_summary
from repro.stencils.grid import make_grid

SHAPE = (512, 512)
STEPS = 8
DEVICES = 4

#: Chain programs whose stages share a radius, so fusion can group them:
#: (name, stage count) — each stage is a distinct radius-1 kernel, giving
#: N compiled plans per program and N exchanges per step unfused.
PROGRAMS = [("three-stage", 3), ("five-stage", 5)]

_ROWS: dict = {}


def _chain_program(name: str, stages: int) -> StencilProgram:
    """A chain of ``stages`` distinct radius-1 kernels (star / box blends,
    all mass-conserving so the field stays bounded over the run)."""
    entries = []
    for index in range(stages):
        centre = 0.5 + 0.04 * index
        rest = (1.0 - centre) / 8.0
        kernel = np.full((3, 3), rest)
        kernel[1, 1] = centre
        entries.append((f"s{index}",
                        StencilPattern.from_dense(kernel,
                                                  name=f"{name}-k{index}")))
    return StencilProgram.chain(name, entries)


@pytest.fixture(scope="module")
def session():
    with StencilSession(devices=DEVICES) as session:
        yield session


@pytest.mark.parametrize("name,stages", PROGRAMS,
                         ids=[p[0] for p in PROGRAMS])
def test_fusion_cuts_modelled_exchanges(benchmark, session, name, stages):
    """The acceptance gate: the fused schedule must need strictly fewer
    modelled halo exchanges than exchange-per-stage execution, and the
    model must agree with itself on both step counts."""
    program = _chain_program(name, stages)
    grid = make_grid(SHAPE, kind="random", seed=2026, boundary="periodic")
    plan = session.compile(Problem(program=program, grid=grid,
                                   iterations=STEPS))

    summary = benchmark.pedantic(
        lambda: program_fusion_summary(plan, devices=DEVICES, steps=STEPS),
        rounds=1, iterations=1)

    assert summary.shardable
    assert summary.fused.exchange_count < summary.unfused.exchange_count
    assert summary.exchanges_removed > 0
    # exchange-per-stage: stages per step; fused: groups per step (first
    # round of the run is always exchange-free)
    assert summary.unfused.exchange_count == stages * STEPS - 1
    groups = len(summary.fused.groups)
    assert summary.fused.exchange_count == groups * STEPS - 1

    _ROWS.setdefault("modelled", {})[name] = summary.as_dict()
    print(f"\nProgram fusion — {name} ({stages} stages, {STEPS} steps, "
          f"{DEVICES} devices):")
    print(f"  unfused exchanges: {summary.unfused.exchange_count}")
    print(f"  fused exchanges:   {summary.fused.exchange_count} "
          f"(depth {summary.fused.halo_depth}, "
          f"{groups} group(s)/step)")
    print(f"  removed:           {summary.exchanges_removed} "
          f"({summary.exchange_reduction:.0%})")
    print(f"  exposed comm saved: "
          f"{summary.exposed_seconds_saved * 1e6:.2f} us")


def test_executed_exchanges_match_model(benchmark, session):
    """The sharded program runner must bill exactly the exchange count the
    model predicted, fused and unfused, with bit-identical outputs."""
    program = _chain_program("exec-check", 3)
    grid = make_grid(SHAPE, kind="random", seed=7, boundary="periodic")
    plan = session.compile(Problem(program=program, grid=grid,
                                   iterations=STEPS))
    summary = program_fusion_summary(plan, devices=DEVICES, steps=STEPS)

    def run_both():
        fused = ShardedProgramRunner(
            DEVICES, cache=session.cache, fuse=True).execute(
                plan, grid, STEPS)
        unfused = ShardedProgramRunner(
            DEVICES, cache=session.cache, fuse=False).execute(
                plan, grid, STEPS)
        return fused, unfused

    fused, unfused = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert fused.halo_exchange_count == summary.fused.exchange_count
    assert unfused.halo_exchange_count == summary.unfused.exchange_count
    assert fused.halo_exchange_count < unfused.halo_exchange_count
    assert np.array_equal(fused.output, unfused.output)

    _ROWS["executed"] = {
        "fused_exchanges": fused.halo_exchange_count,
        "unfused_exchanges": unfused.halo_exchange_count,
        "fused_halo_seconds": fused.halo_exchange_seconds,
        "unfused_halo_seconds": unfused.halo_exchange_seconds,
        "fused_elapsed_seconds": fused.elapsed_seconds,
        "unfused_elapsed_seconds": unfused.elapsed_seconds,
        "bit_identical": True,
    }
    print(f"\nExecuted — fused {fused.halo_exchange_count} vs unfused "
          f"{unfused.halo_exchange_count} exchanges; halo time "
          f"{fused.halo_exchange_seconds * 1e6:.2f} vs "
          f"{unfused.halo_exchange_seconds * 1e6:.2f} us (bit-identical)")


def test_save_results(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_results("program_fusion", _ROWS,
                 config={"shape": list(SHAPE), "steps": STEPS,
                         "devices": DEVICES,
                         "programs": {name: stages
                                      for name, stages in PROGRAMS}})

"""Figure 10 — throughput and compute density across the 79-kernel suite.

Runs SparStencil, cuDNN and ConvStencil over all 79 catalog kernels (9
application domains) on the simulated A100, reporting per-domain mean
GStencil/s, compute density (useful FLOPs per byte of device traffic) and the
overall average speedups the paper headlines (6.3x over cuDNN, 3.1x over
ConvStencil on average, up to 7.1x peak).

Regenerate with::

    pytest benchmarks/bench_fig10_catalog.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.analysis import geometric_mean
from repro.baselines import ConvStencilBaseline, CudnnBaseline, SparStencilMethod
from repro.stencils.catalog import DOMAINS, catalog_by_domain
from repro.stencils.grid import make_grid
from repro.stencils.reference import stencil_flops

#: Scaled-down per-kernel workloads (the full catalog is 79 kernels; keeping
#: each run small bounds the harness to a few minutes).
GRIDS = {1: (4096,), 2: (96, 96), 3: (28, 28, 28)}
ITERATIONS = 1

_DOMAIN_ROWS: dict = {}


def _run_domain(domain: str):
    methods = {
        "SparStencil": SparStencilMethod(),
        "cuDNN": CudnnBaseline(),
        "ConvStencil": ConvStencilBaseline(),
    }
    rows = []
    for pattern in catalog_by_domain()[domain]:
        shape = GRIDS[pattern.ndim]
        grid = make_grid(shape, kind="random", seed=10)
        flops = stencil_flops(pattern, shape, ITERATIONS)
        entry = {"kernel": pattern.name, "points": pattern.points}
        for name, method in methods.items():
            result = method.run(pattern, grid, ITERATIONS)
            # Compute density proxy: useful FLOPs per byte of modelled memory
            # traffic (memory time x HBM bandwidth).  Methods that move less
            # data per stencil update score higher, as in Figure 10 (bottom).
            memory_bytes = max(result.memory_seconds, 1e-30) * 1.555e12
            entry[name] = {
                "gstencil_per_s": result.gstencil_per_second,
                "elapsed_seconds": result.elapsed_seconds,
                "compute_density": flops / memory_bytes,
            }
        rows.append(entry)
    return rows


@pytest.mark.parametrize("domain", DOMAINS)
def test_figure10_domain(benchmark, domain):
    rows = benchmark.pedantic(_run_domain, args=(domain,), rounds=1, iterations=1)
    _DOMAIN_ROWS[domain] = rows

    spar = [r["SparStencil"]["gstencil_per_s"] for r in rows]
    cudnn = [r["cuDNN"]["gstencil_per_s"] for r in rows]
    conv = [r["ConvStencil"]["gstencil_per_s"] for r in rows]
    print(f"\nFigure 10 — {domain} ({len(rows)} kernels)")
    print(f"  mean GStencil/s   SparStencil {np.mean(spar):8.1f}   "
          f"ConvStencil {np.mean(conv):8.1f}   cuDNN {np.mean(cudnn):8.1f}")
    speed_cudnn = [r["cuDNN"]["elapsed_seconds"] / r["SparStencil"]["elapsed_seconds"]
                   for r in rows]
    speed_conv = [r["ConvStencil"]["elapsed_seconds"] / r["SparStencil"]["elapsed_seconds"]
                  for r in rows]
    print(f"  speedup (geomean) vs cuDNN {geometric_mean(speed_cudnn):5.2f}x, "
          f"vs ConvStencil {geometric_mean(speed_conv):5.2f}x")

    # Shape checks: SparStencil leads cuDNN on every kernel and is never
    # meaningfully behind ConvStencil.
    assert min(speed_cudnn) > 1.0
    assert min(speed_conv) > 0.9


def test_figure10_summary(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_DOMAIN_ROWS) < len(DOMAINS):
        pytest.skip("domain benchmarks did not all run")
    all_rows = [row for rows in _DOMAIN_ROWS.values() for row in rows]
    speed_cudnn = [r["cuDNN"]["elapsed_seconds"] / r["SparStencil"]["elapsed_seconds"]
                   for r in all_rows]
    speed_conv = [r["ConvStencil"]["elapsed_seconds"] / r["SparStencil"]["elapsed_seconds"]
                  for r in all_rows]
    peak = max(r["SparStencil"]["gstencil_per_s"] for r in all_rows)
    summary = {
        "kernels": len(all_rows),
        "peak_gstencil_per_s": peak,
        "geomean_speedup_vs_cudnn": geometric_mean(speed_cudnn),
        "geomean_speedup_vs_convstencil": geometric_mean(speed_conv),
        "max_speedup_vs_cudnn": max(speed_cudnn),
        "max_speedup_vs_convstencil": max(speed_conv),
    }
    print("\nFigure 10 — overall summary")
    for key, value in summary.items():
        print(f"  {key:32s} {value:10.2f}" if isinstance(value, float)
              else f"  {key:32s} {value}")
    save_results("fig10_catalog", {"summary": summary, "per_domain": _DOMAIN_ROWS})
    assert summary["kernels"] == 79
    assert summary["geomean_speedup_vs_cudnn"] > 2.0

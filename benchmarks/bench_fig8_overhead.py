"""Figure 8 — preprocessing overhead (transformation / metadata / LUT).

For each Table-2 kernel the host-side preprocessing cost (layout
transformation, sparse-metadata generation, lookup-table construction) is
measured on a real compilation and expressed as a percentage of total runtime
for increasing iteration counts, reproducing the "overhead is minimal and
quickly amortised" behaviour of Figure 8.

Host preprocessing here is Python rather than the paper's C++, so absolute
percentages are larger at low iteration counts; the decay *shape* is the
reproduced quantity.

Regenerate with::

    pytest benchmarks/bench_fig8_overhead.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_results
from repro.analysis.overhead import preprocessing_overhead
from repro.stencils.catalog import table2_benchmarks

#: Grids used for the overhead measurement: large enough that one device
#: sweep is meaningful, small enough that host-side LUT construction stays
#: within a Python-friendly budget (scaled from the paper's problem sizes).
OVERHEAD_GRIDS = {1: (1_048_576,), 2: (4096, 4096), 3: (192, 192, 192)}

ITERATION_COUNTS = (1, 10, 100, 1000, 10000)

_ROWS: dict = {}


@pytest.mark.parametrize("config", table2_benchmarks(), ids=lambda c: c.name)
def test_figure8_overhead(benchmark, config):
    grid_shape = OVERHEAD_GRIDS[config.pattern.ndim]
    report = benchmark.pedantic(
        preprocessing_overhead, args=(config.pattern, grid_shape),
        kwargs={"iteration_counts": ITERATION_COUNTS}, rounds=1, iterations=1)

    print(f"\nFigure 8 — {config.name}: overhead share of total runtime (%)")
    print(f"  categories: TS=transformation, MD=metadata, LUT=lookup table")
    for count in ITERATION_COUNTS:
        shares = report.percentages[count]
        print(f"  iterations={count:>6}:  TS {shares['transformation']:6.2f}  "
              f"MD {shares['metadata']:6.2f}  LUT {shares['lookup_table']:6.2f}  "
              f"(total {sum(shares.values()):6.2f})")

    # Shape check: the overhead decays monotonically with the iteration count
    # and is a small fraction of runtime at the paper's iteration counts.
    totals = [report.total_percentage(c) for c in ITERATION_COUNTS]
    assert all(b <= a + 1e-9 for a, b in zip(totals, totals[1:]))
    _ROWS[config.name] = {str(c): report.percentages[c] for c in ITERATION_COUNTS}


def test_figure8_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("per-kernel benchmarks did not run")
    save_results("fig8_overhead", _ROWS)
    print(f"\nFigure 8 data saved for {len(_ROWS)} kernels")

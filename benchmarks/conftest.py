"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section: it prints the same rows/series the paper reports (scaled
to the simulated device) and persists them as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete numbers.

The pytest-benchmark fixture times the *harness* (compilation + simulated
execution); the paper-facing quantity is the modelled device time embedded in
each row.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

import pytest

from benchmarks._emit import RESULTS_DIR, emit_result

#: Scaled-down workload shapes used by the figure benchmarks (the simulator is
#: a Python process; the paper's 10240^2 x 10240-iteration runs are modelled
#: analytically where needed and noted in EXPERIMENTS.md).
BENCH_GRIDS = {1: (8192,), 2: (128, 128), 3: (32, 32, 32)}
BENCH_ITERATIONS = 3


def save_results(name: str, payload: Dict[str, Any],
                 config: Optional[Dict[str, Any]] = None) -> Path:
    """Persist a benchmark's paper-facing rows as a timestamped JSON envelope
    (see :mod:`benchmarks._emit`)."""
    return emit_result(name, payload, config=config)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def fusion_protocol(points: int) -> Dict[str, int]:
    """Figure-6 protocol: 3x temporal fusion for TCU layout methods on small kernels."""
    if points <= 9:
        return {"SparStencil": 3, "ConvStencil": 3}
    return {}

"""Table 3 — FP64 performance on dense Tensor Cores (GFlops/s).

Sparse Tensor Cores have no FP64 path, so SparStencil falls back to its
dense-TCU execution while keeping the adaptive layout morphing and search.
The table compares AMOS, cuDNN, DRStencil, ConvStencil and SparStencil on
Heat-2D, Box-2D9P, Star-2D13P and Box-2D49P at FP64, mirroring Table 3.

Regenerate with::

    pytest benchmarks/bench_table3_fp64.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_results
from repro.baselines import (
    AMOSBaseline,
    ConvStencilBaseline,
    CudnnBaseline,
    DRStencilBaseline,
    SparStencilMethod,
)
from repro.stencils.catalog import get_benchmark
from repro.stencils.grid import make_grid
from repro.tcu.spec import DataType

KERNELS = ("Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P")
METHODS = ("AMOS", "cuDNN", "DRStencil", "ConvStencil", "SparStencil")
GRID = (160, 160)
ITERATIONS = 2

_TABLE: dict = {}


def _method(name):
    return {
        "AMOS": AMOSBaseline,
        "cuDNN": CudnnBaseline,
        "DRStencil": DRStencilBaseline,
        "ConvStencil": ConvStencilBaseline,
        "SparStencil": SparStencilMethod,
    }[name]()


@pytest.mark.parametrize("kernel", KERNELS)
def test_table3_kernel(benchmark, kernel):
    pattern = get_benchmark(kernel).pattern
    grid = make_grid(GRID, kind="random", seed=13)

    def run():
        row = {}
        for name in METHODS:
            result = _method(name).run(pattern, grid, ITERATIONS,
                                       dtype=DataType.FP64)
            row[name] = result.gflops_per_second
        return row

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _TABLE[kernel] = row

    print(f"\nTable 3 — {kernel} (FP64, GFlops/s, simulated device)")
    for name in METHODS:
        print(f"  {name:>12}: {row[name]:9.2f}")

    # Shape checks from Table 3: SparStencil leads (or sits within a small
    # margin of) every method, and AMOS trails by a wide factor.  On the
    # simulated device DRStencil edges ahead on Star-2D13P because the scalar
    # FP64 pipeline and the dense FP64 Tensor Cores have comparable peaks and
    # the star kernel leaves most fragment lanes idle — recorded as a known
    # deviation in EXPERIMENTS.md.
    best_other = max(row[m] for m in METHODS if m != "SparStencil")
    assert row["SparStencil"] >= 0.80 * best_other
    assert row["SparStencil"] > row["AMOS"] * 3.0
    assert row["SparStencil"] > row["cuDNN"]


def test_table3_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_TABLE) < len(KERNELS):
        pytest.skip("per-kernel rows missing")
    print("\nTable 3 — summary (GFlops/s)")
    header = f"{'Method':>12} " + " ".join(f"{k:>12}" for k in KERNELS)
    print(header)
    for name in METHODS:
        print(f"{name:>12} " + " ".join(f"{_TABLE[k][name]:>12.2f}" for k in KERNELS))
    save_results("table3_fp64", _TABLE)

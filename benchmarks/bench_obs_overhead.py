"""Observability overhead — tracing must be free when off.

Three timings of the same hot, fully cached single-device solve:

* *bypassed* — the ambient instrumentation monkeypatched out of every
  module that carries it: the true uninstrumented baseline;
* *disabled* — the shipped default (no tracer on the session): every
  instrumented call site pays one context-variable read and finds no
  active span;
* *enabled* — a live :class:`repro.Tracer` recording the full span tree.

The contract enforced here: the disabled path costs at most 5% over the
bypassed baseline.  The enabled/disabled ratio is *reported* (it buys the
whole span tree, so it is allowed to cost) and persisted through the usual
benchmark envelope.

Regenerate with::

    pytest benchmarks/bench_obs_overhead.py --benchmark-only -s
"""

from __future__ import annotations

import time

import repro.engine.single as engine_single
import repro.engine.sharded as engine_sharded
import repro.service.batch as service_batch
import repro.service.cache as service_cache
from benchmarks.conftest import save_results
from repro import Problem, SessionConfig, StencilPattern, StencilSession, Tracer
from repro.obs.trace import _NOOP_CONTEXT, Tracer as _Tracer
from repro.stencils import make_grid

ROUNDS = 40
GRID_SHAPE = (128, 128)
ITERATIONS = 2
#: Disabled-tracing overhead budget over the uninstrumented baseline.
MAX_DISABLED_OVERHEAD = 1.05


def _heat2d() -> StencilPattern:
    return StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")


def _hot_session(tracer: Tracer | None = None) -> tuple:
    """A session plus a problem whose plan is already resident in cache."""
    session = StencilSession(SessionConfig(devices=1, tracer=tracer))
    problem = Problem(_heat2d(), make_grid(GRID_SHAPE, seed=11), ITERATIONS)
    session.solve(problem, mode="single")  # warm the compile cache
    return session, problem


def _time_solves(session, problem, rounds: int = ROUNDS) -> float:
    """Best-of-N wall time of one hot cached solve (min rejects noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        session.solve(problem, mode="single")
        best = min(best, time.perf_counter() - start)
    return best


def _time_interleaved(session, problem, monkeypatch,
                      rounds: int = ROUNDS) -> tuple:
    """Best-of-N for the bypassed and disabled paths, *interleaved* round by
    round so clock drift, cache state and CPU frequency hit both equally —
    a phase-ordered comparison would attribute machine drift to tracing."""
    best_bypassed = float("inf")
    best_disabled = float("inf")
    for _ in range(rounds):
        with monkeypatch.context() as patched:
            _bypass_instrumentation(patched)
            start = time.perf_counter()
            session.solve(problem, mode="single")
            best_bypassed = min(best_bypassed,
                                time.perf_counter() - start)
        start = time.perf_counter()
        session.solve(problem, mode="single")
        best_disabled = min(best_disabled, time.perf_counter() - start)
    return best_bypassed, best_disabled


def _bypass_instrumentation(monkeypatch) -> None:
    """Patch the ambient hooks out of every instrumented module, yielding
    the code path as it was before the observability layer existed."""
    noop_span = lambda *a, **k: _NOOP_CONTEXT  # noqa: E731
    no_current = lambda: None  # noqa: E731
    monkeypatch.setattr(service_cache, "obs_span", noop_span)
    monkeypatch.setattr(service_batch, "obs_span", noop_span)
    monkeypatch.setattr(service_batch, "current_span", no_current)
    monkeypatch.setattr(engine_single, "current_span", no_current)
    monkeypatch.setattr(engine_sharded, "current_span", no_current)


def test_disabled_tracing_overhead(benchmark, monkeypatch, results_dir):
    session, problem = _hot_session()

    # bypassed (ambient hooks monkeypatched away) vs disabled (the shipped
    # default: instrumentation present, no tracer) — interleaved
    bypassed, disabled = _time_interleaved(session, problem, monkeypatch)

    # keep the harness timing the real disabled path too
    benchmark.pedantic(session.solve, args=(problem,),
                       kwargs={"mode": "single"}, rounds=10, iterations=1)
    disabled = min(disabled, min(benchmark.stats.stats.data))

    # full tracing: every solve records its span tree
    traced_session, traced_problem = _hot_session(tracer=Tracer())
    enabled = _time_solves(traced_session, traced_problem)

    disabled_ratio = disabled / bypassed if bypassed > 0 else float("inf")
    enabled_ratio = enabled / disabled if disabled > 0 else float("inf")
    print(f"\nhot cached solve {GRID_SHAPE} x{ITERATIONS}: "
          f"bypassed {bypassed * 1e3:.3f} ms, "
          f"disabled {disabled * 1e3:.3f} ms "
          f"({disabled_ratio:.3f}x), "
          f"enabled {enabled * 1e3:.3f} ms "
          f"({enabled_ratio:.3f}x over disabled)")

    assert disabled_ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {disabled_ratio:.3f}x over the "
        f"uninstrumented baseline (budget {MAX_DISABLED_OVERHEAD}x)")
    # the traced run actually produced spans (it paid for something real)
    assert traced_session.tracer.spans()

    path = save_results("obs_overhead", {
        "bypassed_seconds": bypassed,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_over_bypassed": disabled_ratio,
        "enabled_over_disabled": enabled_ratio,
    }, config={
        "grid_shape": list(GRID_SHAPE),
        "iterations": ITERATIONS,
        "rounds": ROUNDS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "timer": "best-of-rounds",
    })
    print(f"saved observability-overhead rows to {path}")


def test_null_tracer_allocates_nothing(benchmark):
    """The no-op recorder is shared state: spans and contexts are singletons."""
    from repro.obs.trace import NOOP_SPAN, NULL_TRACER

    def disabled_span_cycle():
        with NULL_TRACER.span("x", a=1) as span_:
            span_.set(b=2).add_device_seconds(1.0)
        return span_

    result = benchmark.pedantic(disabled_span_cycle, rounds=50,
                                iterations=200)
    assert result is NOOP_SPAN
    assert NULL_TRACER.spans() == []
    assert _Tracer(enabled=False).span("y") is _NOOP_CONTEXT

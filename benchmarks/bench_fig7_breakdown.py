"""Figure 7 — performance breakdown of SparStencil on Box-2D49P.

Models the incremental gain of each stage (CUDA -> +Layout Morphing on dense
TCUs -> +PIT on sparse TCUs -> +Optimizations) across problem sizes, mirroring
the paper's breakdown figure.

Regenerate with::

    pytest benchmarks/bench_fig7_breakdown.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_results
from repro.analysis.breakdown import BREAKDOWN_STAGES, performance_breakdown
from repro.stencils.catalog import get_benchmark

#: The problem sizes of Figure 7 (square 2D grids).
PROBLEM_SIZES = (256, 768, 2560, 5120, 10240)


def test_figure7_breakdown(benchmark):
    pattern = get_benchmark("Box-2D49P").pattern
    rows = benchmark.pedantic(
        performance_breakdown, args=(pattern, PROBLEM_SIZES), rounds=1, iterations=1)

    by_size = {}
    for row in rows:
        by_size.setdefault(row.problem_size, {})[row.stage] = row

    print("\nFigure 7 — Box-2D49P breakdown (speedup over the CUDA baseline)")
    header = f"{'size':>7} " + " ".join(f"{stage:>30}" for stage in BREAKDOWN_STAGES)
    print(header)
    payload = {}
    for size in PROBLEM_SIZES:
        stages = by_size[size]
        print(f"{size:>7} " + " ".join(
            f"{stages[stage].speedup_over_cuda:>29.2f}x" for stage in BREAKDOWN_STAGES))
        payload[size] = {stage: stages[stage].speedup_over_cuda
                         for stage in BREAKDOWN_STAGES}

    # Shape checks: each stage improves on the previous one at large problem
    # sizes (the paper notes PIT can regress at very small sizes).
    large = by_size[PROBLEM_SIZES[-1]]
    assert large["+Layout Morphing (dense TCU)"].speedup_over_cuda > 1.2
    assert large["+PIT (sparse TCU)"].speedup_over_cuda > \
        large["+Layout Morphing (dense TCU)"].speedup_over_cuda
    assert large["+Optimizations"].speedup_over_cuda > \
        large["+PIT (sparse TCU)"].speedup_over_cuda

    save_results("fig7_breakdown", payload)

"""Sharded multi-device scaling — modelled weak scaling plus the
communication-avoiding deep-halo study.

Three experiments share one results envelope:

* **Weak scaling** — one grid decomposed over 1/2/4/8 simulated A100s;
  every point reports modelled speedup, parallel efficiency, the exposed
  halo-traffic fraction, load balance and the communication-avoiding
  schedule envelope (halo depth, exchange count, halo bytes, redundant
  compute).
* **Deep-halo crossover** — at 4 devices on a latency-heavy link, sweep
  ``halo_depth`` x shard-grid shape and check the measured-optimal depth
  against the analytic prediction of
  :func:`repro.analysis.deep_halo_tradeoff` (same finite schedule, same
  per-window roofline pricing — the two must agree exactly).
* **Overlap** — the acceptance comparison: deep halos plus compute/comm
  overlap versus the classic exchange-every-sweep serialised baseline must
  cut the exposed halo-traffic fraction by at least 2x, bit-identically.

Regenerate with::

    pytest benchmarks/bench_sharded_scaling.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro import StencilSession, compile_stencil
from repro.analysis import deep_halo_tradeoff, sharded_scaling
from repro.engine import ShardedExecutor
from repro.service import CompileCache
from repro.stencils.catalog import get_benchmark
from repro.stencils.grid import make_grid
from repro.tcu.spec import MultiDeviceSpec

#: Large enough that per-sweep device time clears the interconnect latency —
#: the regime where sharding pays (tiny tier-1 grids are latency-bound).
WORKLOADS = [
    ("Heat-1D", (1 << 22,), 2),
    ("Heat-2D", (2048, 2048), 2),
    ("Box-2D49P", (2048, 2048), 2),
]
DEVICE_COUNTS = (1, 2, 4, 8)

#: Deep-halo study configuration: a 514^2 Heat-2D slab on 4 devices behind a
#: latency-heavy link (200 ns/message at NVLink bandwidth) — the regime where
#: exchange latency, not bandwidth, is the scaling tax deep halos avoid.
CROSSOVER_SHAPE = (514, 514)
CROSSOVER_ITERS = 10
CROSSOVER_DEPTHS = 5
CROSSOVER_GRIDS = ((4, 1), (2, 2))
LINK_LATENCY_SECONDS = 2e-7
LINK_BANDWIDTH_GBS = 600.0

_ROWS: dict = {}


@pytest.fixture(scope="module")
def crossover_workload():
    """One compiled 514^2 Heat-2D plan plus a cache shared by the analytic
    model and every measured run — window plans compile exactly once."""
    config = get_benchmark("Heat-2D")
    grid = make_grid(CROSSOVER_SHAPE, kind="random", seed=2026)
    cache = CompileCache(capacity=256)
    compiled = compile_stencil(config.pattern, CROSSOVER_SHAPE,
                               backend="numpy", search=False, r1=8, r2=8)
    return compiled, grid, cache


def _crossover_spec(compiled) -> MultiDeviceSpec:
    return MultiDeviceSpec(device=compiled.spec, device_count=4,
                           interconnect_bandwidth_gbs=LINK_BANDWIDTH_GBS,
                           link_latency_seconds=LINK_LATENCY_SECONDS)


@pytest.mark.parametrize("name,grid_shape,iterations", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_sharded_scaling(benchmark, name, grid_shape, iterations):
    config = get_benchmark(name)
    grid = make_grid(grid_shape, kind="random", seed=2026)

    report = benchmark.pedantic(
        lambda: sharded_scaling(config.pattern, grid, iterations,
                                device_counts=DEVICE_COUNTS),
        rounds=1, iterations=1)

    _ROWS.setdefault("weak_scaling", {})[name] = {
        "grid_shape": list(grid_shape),
        "iterations": iterations,
        "single_device_seconds": report.single_device_seconds,
        "points": report.as_rows(),
    }

    print(f"\nSharded scaling — {name} {grid_shape}, "
          f"{iterations} iterations "
          f"(single device: {report.single_device_seconds * 1e6:.1f} us)")
    for point in report.points:
        print(f"  {point.devices:2d} device(s) shards={point.shard_grid}: "
              f"{point.elapsed_seconds * 1e6:8.1f} us  "
              f"speedup {point.speedup:5.2f}x  "
              f"efficiency {point.efficiency:5.2f}  "
              f"halo traffic {100 * point.halo_traffic_fraction:5.2f}%  "
              f"balance {point.load_balance:.3f}")

    best = report.best
    assert best.speedup >= 1.0, "sharding should pay at this grid size"
    for point in report.points[1:]:
        assert point.halo_exchange_bytes > 0.0
        assert point.halo_exchange_count == iterations - 1  # depth-1 sweep


@pytest.mark.parametrize("shard_grid", CROSSOVER_GRIDS,
                         ids=[f"{a}x{b}" for a, b in CROSSOVER_GRIDS])
def test_deep_halo_crossover(benchmark, crossover_workload, shard_grid):
    """Measured-optimal halo depth must land where the tradeoff model says.

    The model prices the identical finite schedule the executor bills
    (per-window rooflines, first round unexchanged, partial last round), so
    beyond matching the argmin, every per-depth cost must agree to float
    precision.
    """
    compiled, grid, cache = crossover_workload
    spec = _crossover_spec(compiled)
    trade = deep_halo_tradeoff(compiled, spec, shard_grid=shard_grid,
                               max_depth=CROSSOVER_DEPTHS, overlap=False,
                               cache=cache, iterations=CROSSOVER_ITERS)

    def sweep_depths():
        results = {}
        for point in trade.points:
            results[point.halo_depth] = ShardedExecutor(
                spec, shard_grid=shard_grid, cache=cache,
                halo_depth=point.halo_depth,
                overlap=False).execute(compiled, grid, CROSSOVER_ITERS)
        return results

    by_depth = benchmark.pedantic(sweep_depths, rounds=1, iterations=1)

    rows = []
    measured = {}
    for point in trade.points:
        result = by_depth[point.halo_depth]
        per_sweep = result.elapsed_seconds / CROSSOVER_ITERS
        measured[point.halo_depth] = per_sweep
        row = point.as_dict()
        row.update({
            "measured_per_sweep_seconds": per_sweep,
            "halo_exchange_count": result.halo_exchange_count,
            "halo_exchange_bytes": result.halo_exchange_bytes,
        })
        rows.append(row)
        assert point.per_sweep_seconds == pytest.approx(per_sweep, rel=1e-9)

    measured_depth = min(measured, key=measured.get)
    print(f"\nDeep-halo crossover — Heat-2D {CROSSOVER_SHAPE}, "
          f"shards {shard_grid}, link {LINK_LATENCY_SECONDS * 1e9:.0f} ns / "
          f"{LINK_BANDWIDTH_GBS:.0f} GB/s")
    for row in rows:
        print(f"  depth {row['halo_depth']}: "
              f"model {row['per_sweep_seconds'] * 1e9:7.1f} ns/sweep  "
              f"measured {row['measured_per_sweep_seconds'] * 1e9:7.1f}  "
              f"exchanges {row['halo_exchange_count']}  "
              f"redundant {100 * row['redundant_fraction']:5.2f}%")
    print(f"  predicted optimum: depth {trade.predicted_depth}, "
          f"measured optimum: depth {measured_depth}")

    assert trade.predicted_depth == measured_depth, (
        f"analytic crossover (depth {trade.predicted_depth}) disagrees with "
        f"the measured optimum (depth {measured_depth})")
    assert measured_depth > 1, "deep halos should pay on this link"

    _ROWS.setdefault("deep_halo_crossover", {})[f"{shard_grid}"] = {
        "shard_grid": list(shard_grid),
        "predicted_depth": trade.predicted_depth,
        "measured_depth": measured_depth,
        "points": rows,
    }


def test_overlap_halves_exposed_halo_fraction(benchmark, crossover_workload):
    """Acceptance: deep halos + overlap cut the exposed halo-traffic
    fraction at 4 devices by >= 2x against the exchange-every-sweep
    serialised baseline, without changing a single bit of output."""
    compiled, grid, cache = crossover_workload
    spec = _crossover_spec(compiled)

    baseline, avoiding = benchmark.pedantic(
        lambda: (ShardedExecutor(spec, shard_grid=(2, 2), cache=cache,
                                 halo_depth=1, overlap=False).execute(
                     compiled, grid, CROSSOVER_ITERS),
                 ShardedExecutor(spec, shard_grid=(2, 2), cache=cache,
                                 halo_depth=3, overlap=True).execute(
                     compiled, grid, CROSSOVER_ITERS)),
        rounds=1, iterations=1)

    print(f"\nCommunication avoidance — Heat-2D {CROSSOVER_SHAPE}, "
          f"4 devices (2x2):")
    for label, result in (("depth 1, serialised", baseline),
                          ("depth 3, overlap", avoiding)):
        print(f"  {label:22s} halo fraction "
              f"{100 * result.halo_traffic_fraction:6.2f}%  "
              f"exchanges {result.halo_exchange_count:2d}  "
              f"exposed {result.halo_exposed_seconds * 1e9:8.1f} ns  "
              f"elapsed {result.elapsed_seconds * 1e6:8.2f} us")

    assert np.array_equal(baseline.output, avoiding.output)
    assert baseline.halo_traffic_fraction > 0.0
    assert avoiding.halo_traffic_fraction <= \
        baseline.halo_traffic_fraction / 2.0, (
            "communication avoidance must cut the exposed halo fraction 2x")
    assert avoiding.elapsed_seconds < baseline.elapsed_seconds
    assert avoiding.halo_exchange_count < baseline.halo_exchange_count

    _ROWS["overlap"] = {
        "grid_shape": list(CROSSOVER_SHAPE),
        "iterations": CROSSOVER_ITERS,
        "baseline": {
            "halo_depth": 1, "overlap": False,
            "halo_traffic_fraction": baseline.halo_traffic_fraction,
            "halo_exchange_count": baseline.halo_exchange_count,
            "halo_exchange_bytes": baseline.halo_exchange_bytes,
            "elapsed_seconds": baseline.elapsed_seconds,
        },
        "communication_avoiding": {
            "halo_depth": avoiding.halo_depth, "overlap": True,
            "halo_traffic_fraction": avoiding.halo_traffic_fraction,
            "halo_exchange_count": avoiding.halo_exchange_count,
            "halo_exchange_bytes": avoiding.halo_exchange_bytes,
            "elapsed_seconds": avoiding.elapsed_seconds,
        },
    }


def test_save_results(benchmark):
    """Persist the scaling rows once every experiment has run."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _ROWS:
        path = save_results("sharded_scaling", _ROWS, config={
            "workloads": [{"name": name, "grid_shape": list(shape),
                           "iterations": iters}
                          for name, shape, iters in WORKLOADS],
            "device_counts": list(DEVICE_COUNTS),
            "crossover": {
                "grid_shape": list(CROSSOVER_SHAPE),
                "iterations": CROSSOVER_ITERS,
                "max_depth": CROSSOVER_DEPTHS,
                "shard_grids": [list(g) for g in CROSSOVER_GRIDS],
                "link_latency_seconds": LINK_LATENCY_SECONDS,
                "link_bandwidth_gbs": LINK_BANDWIDTH_GBS,
            },
        })
        print(f"\nsaved {path}")


def test_sharded_outputs_stay_bit_identical(benchmark):
    """Spot check at benchmark scale: 4-way sharding reproduces 1-way bits,
    deep halos and overlap included."""
    config = get_benchmark("Heat-2D")
    grid = make_grid((1024, 1024), kind="random", seed=7)

    compiled = compile_stencil(config.pattern, (1024, 1024))
    single = StencilSession().run(compiled, grid, 4)
    cache = CompileCache(capacity=64)

    def shard_both_depths():
        return [ShardedExecutor(4, cache=cache, halo_depth=depth).execute(
                    compiled, grid, 4) for depth in (1, 3)]

    for sharded in benchmark.pedantic(shard_both_depths,
                                      rounds=1, iterations=1):
        assert np.array_equal(single.output, sharded.output)

"""Sharded multi-device scaling — modelled weak-scaling sweep.

One grid is decomposed over 1/2/4/8 simulated A100s by the sharded execution
engine (:class:`repro.engine.ShardedExecutor`); every point reports the
modelled speedup over the single-device run, the parallel efficiency, the
halo-traffic fraction (the communication tax of the decomposition) and the
shard load balance.  Outputs are bit-identical across all points, so the
sweep isolates the execution model: per-device kernel time shrinking with
the shard size versus the NVLink latency/bandwidth cost of the per-sweep
halo exchange.

Regenerate with::

    pytest benchmarks/bench_sharded_scaling.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.analysis import sharded_scaling
from repro.stencils.catalog import get_benchmark
from repro.stencils.grid import make_grid

#: Large enough that per-sweep device time clears the interconnect latency —
#: the regime where sharding pays (tiny tier-1 grids are latency-bound).
WORKLOADS = [
    ("Heat-1D", (1 << 22,), 2),
    ("Heat-2D", (2048, 2048), 2),
    ("Box-2D49P", (2048, 2048), 2),
]
DEVICE_COUNTS = (1, 2, 4, 8)

_ROWS: dict = {}


@pytest.mark.parametrize("name,grid_shape,iterations", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_sharded_scaling(benchmark, name, grid_shape, iterations):
    config = get_benchmark(name)
    grid = make_grid(grid_shape, kind="random", seed=2026)

    report = benchmark.pedantic(
        lambda: sharded_scaling(config.pattern, grid, iterations,
                                device_counts=DEVICE_COUNTS),
        rounds=1, iterations=1)

    _ROWS[name] = {
        "grid_shape": list(grid_shape),
        "iterations": iterations,
        "single_device_seconds": report.single_device_seconds,
        "points": report.as_rows(),
    }

    print(f"\nSharded scaling — {name} {grid_shape}, "
          f"{iterations} iterations "
          f"(single device: {report.single_device_seconds * 1e6:.1f} us)")
    for point in report.points:
        print(f"  {point.devices:2d} device(s) shards={point.shard_grid}: "
              f"{point.elapsed_seconds * 1e6:8.1f} us  "
              f"speedup {point.speedup:5.2f}x  "
              f"efficiency {point.efficiency:5.2f}  "
              f"halo traffic {100 * point.halo_traffic_fraction:5.2f}%  "
              f"balance {point.load_balance:.3f}")

    best = report.best
    assert best.speedup >= 1.0, "sharding should pay at this grid size"
    for point in report.points[1:]:
        assert point.halo_traffic_fraction > 0.0


def test_save_results():
    """Persist the scaling rows once every workload has run."""
    if _ROWS:
        path = save_results("sharded_scaling", _ROWS, config={
            "workloads": [{"name": name, "grid_shape": list(shape),
                           "iterations": iters}
                          for name, shape, iters in WORKLOADS],
            "device_counts": list(DEVICE_COUNTS),
        })
        print(f"\nsaved {path}")


def test_sharded_outputs_stay_bit_identical():
    """Spot check at benchmark scale: 4-way sharding reproduces 1-way bits."""
    config = get_benchmark("Heat-2D")
    grid = make_grid((1024, 1024), kind="random", seed=7)
    from repro import compile_stencil, run_stencil
    from repro.engine import ShardedExecutor

    compiled = compile_stencil(config.pattern, (1024, 1024))
    single = run_stencil(compiled, grid, 1)
    sharded = ShardedExecutor(4).execute(compiled, grid, 1)
    assert np.array_equal(single.output, sharded.output)

"""Figure 11 — hardware utilisation comparison.

Collects the six NCU-style counters the simulator derives (SM utilisation,
achieved occupancy, L1/TEX throughput, L2 throughput, memory throughput and
DRAM throughput) for SparStencil, ConvStencil and cuDNN on a Box-2D49P-class
workload, following the Figure-6 fusion protocol.

Regenerate with::

    pytest benchmarks/bench_fig11_utilization.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_results
from repro.analysis.utilization import utilization_comparison
from repro.stencils.catalog import get_benchmark
from repro.stencils.grid import make_grid

GRID = (192, 192)
ITERATIONS = 3


def test_figure11_utilization(benchmark, results_dir):
    pattern = get_benchmark("Box-2D49P").pattern
    grid = make_grid(GRID, kind="random", seed=11)
    report = benchmark.pedantic(
        utilization_comparison, args=(pattern, grid),
        kwargs={"iterations": ITERATIONS}, rounds=1, iterations=1)

    metrics = list(next(iter(report.values())).keys())
    print("\nFigure 11 — hardware utilisation (percent)")
    print(f"{'metric':>22} " + " ".join(f"{m:>13}" for m in report))
    for metric in metrics:
        print(f"{metric:>22} " + " ".join(f"{report[m][metric]:>13.1f}"
                                          for m in report))
    save_results("fig11_utilization", report)

    spar, conv, cudnn = (report["SparStencil"], report["ConvStencil"],
                         report["cuDNN"])
    # Shape checks that carry over from the paper on the simulated device:
    # SparStencil sustains the highest occupancy and at least as much SM
    # activity as cuDNN, while relying on on-chip (L1/shared) reuse at least
    # as much as cuDNN does.
    assert spar["Occupancy"] >= conv["Occupancy"]
    assert spar["Occupancy"] >= cudnn["Occupancy"]
    assert spar["SM Utilization"] >= cudnn["SM Utilization"]
    assert spar["L1/TEX Throughput"] >= cudnn["L1/TEX Throughput"]
    assert spar["DRAM Throughput"] <= cudnn["DRAM Throughput"] + 1e-9

"""Figure 9 — adaptivity and sparsity across stencil sizes and layouts.

Top half: throughput and residual sparsity across stencil sizes (k = 3..9,
star and box) on both sparse-fragment geometries, versus the dense-TCU
execution of the same morphed layout.  Temporal fusion is disabled, as in
§4.5 of the paper.

Bottom half: the (r1, r2) performance / compute-density heatmaps for the two
representative 2D kernels (Box-2D9P, Box-2D49P).

Regenerate with::

    pytest benchmarks/bench_fig9_adaptivity.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.analysis.sparsity import analyze_sparsity
from repro.core.layout_search import search_layout
from repro.core.morphing import MorphConfig
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import stencil_points_updated
from repro.tcu.spec import DENSE_FRAGMENTS, SPARSE_FRAGMENTS

GRID = (2048, 2048)
STENCIL_SIZES = (3, 5, 7, 9)          # kernel diameters k
KINDS = ("star", "box")

_TOP: dict = {}
_HEATMAPS: dict = {}


def _throughput(pattern, fragment, engine):
    result = search_layout(pattern, GRID, fragment=fragment, engine=engine)
    est = result.best.estimate
    points = stencil_points_updated(pattern, GRID, 1)
    return points / est.t_total / 1e9, result


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("k", STENCIL_SIZES)
def test_figure9_stencil_sizes(benchmark, kind, k):
    radius = k // 2
    pattern = getattr(StencilPattern, kind)(2, radius, name=f"{kind}-2d-k{k}")

    def run():
        rows = {}
        for fragment in SPARSE_FRAGMENTS:
            gstencil, search = _throughput(pattern, fragment, "sparse_mma")
            best = search.best
            report = analyze_sparsity(
                pattern, MorphConfig.from_r1_r2(2, best.r1, best.r2))
            rows[fragment.label] = {
                "gstencil_per_s": gstencil,
                "sparsity": report.converted_sparsity,
                "r1": best.r1,
                "r2": best.r2,
            }
        dense_gstencil, _ = _throughput(pattern, DENSE_FRAGMENTS[0], "dense_mma")
        rows["dense_baseline"] = {"gstencil_per_s": dense_gstencil}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _TOP[f"{kind}-k{k}"] = rows

    print(f"\nFigure 9 (top) — {kind} stencil, k={k}")
    dense = rows["dense_baseline"]["gstencil_per_s"]
    for label, row in rows.items():
        if label == "dense_baseline":
            print(f"  dense TCU baseline : {dense:9.1f} GStencil/s")
            continue
        speedup = row["gstencil_per_s"] / dense
        print(f"  sparse {label:>12}: {row['gstencil_per_s']:9.1f} GStencil/s "
              f"({speedup:4.2f}x vs dense, sparsity {row['sparsity']:.2f}, "
              f"r1={row['r1']}, r2={row['r2']})")

    # Paper shape: SparStencil never loses to the dense execution of the same
    # morphed layout.  Box kernels keep the converted sparsity in the paper's
    # <60% band; wide star kernels sit higher because their zero-weight taps
    # never enter the kernel matrix in the first place (see EXPERIMENTS.md).
    for label in (f.label for f in SPARSE_FRAGMENTS):
        assert rows[label]["gstencil_per_s"] >= dense * 0.99
        assert rows[label]["sparsity"] <= (0.80 if kind == "box" else 0.95)


@pytest.mark.parametrize("kernel", ["box-2d9p", "box-2d49p"])
def test_figure9_heatmaps(benchmark, kernel):
    radius = 1 if kernel == "box-2d9p" else 3
    pattern = StencilPattern.box(2, radius, name=kernel)

    def run():
        search = search_layout(pattern, GRID)
        grid, r2_values, r1_values = search.density_grid()
        return search, grid, r2_values, r1_values

    search, grid, r2_values, r1_values = benchmark.pedantic(run, rounds=1, iterations=1)
    _HEATMAPS[kernel] = {
        "r1_values": r1_values,
        "r2_values": r2_values,
        "compute_density": np.where(np.isnan(grid), None, grid).tolist(),
        "best": {"r1": search.best.r1, "r2": search.best.r2},
    }

    print(f"\nFigure 9 (bottom) — compute-density heatmap for {kernel}")
    print("        " + " ".join(f"r1={r1:<4}" for r1 in r1_values))
    for i, r2 in enumerate(r2_values):
        row = " ".join(f"{grid[i, j]:7.3f}" if np.isfinite(grid[i, j]) else "      -"
                       for j in range(len(r1_values)))
        print(f"  r2={r2:<3} {row}")
    print(f"  best layout: r1={search.best.r1}, r2={search.best.r2}")

    # the optimum is an interior sweet spot, not the trivial (1, 1) layout
    assert (search.best.r1, search.best.r2) != (1, 1)


def test_figure9_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _TOP:
        pytest.skip("figure-9 rows not collected")
    save_results("fig9_adaptivity", {"stencil_sizes": _TOP, "heatmaps": _HEATMAPS})

"""Backend comparison — host wall-clock of the registered execution backends.

The registry's pitch (see the README's "Backends" section) is that the
``numpy`` backend runs the *same compiled plan* materially faster on the
host than the instrumented ``tcu-sim`` interpreter while billing identical
modelled device time and staying within the documented numerical tolerance.
This benchmark quantifies that claim per Table-2 kernel:

* host wall-clock of :func:`execute_compiled` per backend (min over rounds);
* the acceptance gate: the fast backend is **>= 2x** faster than
  ``tcu-sim`` on at least two catalog kernels;
* the tolerance gate: outputs agree within the fp16 device tolerance, and
  the modelled device seconds agree exactly.

Regenerate with::

    pytest benchmarks/bench_backend_comparison.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_GRIDS, BENCH_ITERATIONS, save_results
from repro.core.codegen import available_backends
from repro.core.pipeline import compile_stencil, execute_compiled
from repro.stencils.catalog import table2_benchmarks
from repro.stencils.grid import make_grid

#: Fast backend under comparison (always available; ``numba`` joins the
#: sweep automatically when its import gate opens).
FAST_BACKEND = "numpy"

#: The acceptance gate from the backend-registry issue: the fast backend
#: must beat the tcu-sim interpreter by >= 2x wall-clock on at least
#: MIN_KERNELS_AT_TARGET catalog kernels.
TARGET_SPEEDUP = 2.0
MIN_KERNELS_AT_TARGET = 2

#: Documented numerical tolerance between backends: ``numpy`` is float64
#: exact, so the gap *is* ``tcu-sim``'s fp16 rounding envelope.  The
#: high-order star kernels get looser bounds for the same reason their
#: golden fixtures do (tests/golden/generate_golden.py): their weights sum
#: to ~0, which amplifies fp16 rounding each iteration.
BACKEND_TOL = 2e-2
BACKEND_TOL_OVERRIDES = {"Star-2D13P": 5e-1, "1D5P": 1e-1}

ROUNDS = 5

KERNELS = list(table2_benchmarks())

_ROWS: dict = {}


def _best_wall_clock(compiled, grid, iterations: int) -> tuple:
    best, output = float("inf"), None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = execute_compiled(compiled, grid, iterations)
        best = min(best, time.perf_counter() - start)
        output = result
    return best, output


@pytest.mark.parametrize("config", KERNELS, ids=lambda c: c.name)
def test_backend_wall_clock(benchmark, config):
    grid_shape = BENCH_GRIDS[config.pattern.ndim]
    grid = make_grid(grid_shape, kind="random", seed=3)
    sim_plan = compile_stencil(config.pattern, grid_shape, backend="tcu-sim")
    fast_plan = compile_stencil(config.pattern, grid_shape,
                                backend=FAST_BACKEND)

    sim_seconds, sim_result = _best_wall_clock(sim_plan, grid,
                                               BENCH_ITERATIONS)
    benchmark.pedantic(execute_compiled,
                       args=(fast_plan, grid, BENCH_ITERATIONS),
                       rounds=ROUNDS, iterations=1)
    fast_seconds = min(benchmark.stats.stats.data)
    fast_result = execute_compiled(fast_plan, grid, BENCH_ITERATIONS)
    speedup = sim_seconds / fast_seconds if fast_seconds > 0 else float("inf")

    # tolerance gate: same numbers within the documented fp16 envelope ...
    tolerance = BACKEND_TOL_OVERRIDES.get(config.name, BACKEND_TOL)
    drift = float(np.max(np.abs(sim_result.output.astype(np.float64)
                                - fast_result.output)))
    assert drift < tolerance, (
        f"{config.name}: backend outputs drifted {drift:.3e} "
        f"(tolerance {tolerance:.0e})")
    # ... and identical modelled device time (both bill the plan estimate)
    assert sim_result.elapsed_seconds == fast_result.elapsed_seconds

    print(f"\n{config.name:12s} tcu-sim {sim_seconds * 1e3:9.2f} ms, "
          f"{FAST_BACKEND} {fast_seconds * 1e3:7.2f} ms "
          f"({speedup:5.1f}x), max |drift| {drift:.2e}")
    _ROWS[config.name] = {
        "grid_shape": list(grid_shape),
        "iterations": BENCH_ITERATIONS,
        "tcu_sim_wall_seconds": sim_seconds,
        f"{FAST_BACKEND}_wall_seconds": fast_seconds,
        "wall_clock_speedup": speedup,
        "max_abs_drift": drift,
        "modelled_device_seconds": sim_result.elapsed_seconds,
    }


def test_backend_speedup_gate(benchmark, results_dir):
    """>= TARGET_SPEEDUP on >= MIN_KERNELS_AT_TARGET catalog kernels."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("no rows collected")
    at_target = sorted(name for name, row in _ROWS.items()
                       if row["wall_clock_speedup"] >= TARGET_SPEEDUP)
    print(f"\n{len(at_target)}/{len(_ROWS)} kernels at >= "
          f"{TARGET_SPEEDUP:.0f}x: {', '.join(at_target)}")
    assert len(at_target) >= MIN_KERNELS_AT_TARGET, (
        f"fast backend reached {TARGET_SPEEDUP:.0f}x on only "
        f"{len(at_target)} kernels: "
        f"{ {n: r['wall_clock_speedup'] for n, r in _ROWS.items()} }")
    path = save_results("backend_comparison", _ROWS, config={
        "fast_backend": FAST_BACKEND,
        "available_backends": available_backends(),
        "target_speedup": TARGET_SPEEDUP,
        "min_kernels_at_target": MIN_KERNELS_AT_TARGET,
        "backend_tolerance": BACKEND_TOL,
        "backend_tolerance_overrides": BACKEND_TOL_OVERRIDES,
        "rounds": ROUNDS,
        "bench_grids": {str(k): list(v) for k, v in BENCH_GRIDS.items()},
    })
    print(f"saved backend-comparison rows to {path}")

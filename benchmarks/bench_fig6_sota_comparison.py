"""Figure 6 — performance comparison of SparStencil with the state of the art.

For every Table-2 benchmark kernel, run SparStencil and all baselines
(cuDNN, AMOS, Brick, DRStencil, TCStencil, ConvStencil, plus the naive CUDA
kernel) on the same simulated A100 and report GStencil/s and the speedup of
SparStencil over each baseline.  ConvStencil and SparStencil use 3x temporal
fusion for small kernels, as in the paper.

Regenerate with::

    pytest benchmarks/bench_fig6_sota_comparison.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_GRIDS, BENCH_ITERATIONS, fusion_protocol, save_results
from repro.analysis import compare_methods, geometric_mean
from repro.baselines import all_methods
from repro.stencils.catalog import table2_benchmarks
from repro.stencils.grid import make_grid

_ROWS: dict = {}


def _run_kernel(config):
    grid = make_grid(BENCH_GRIDS[config.pattern.ndim], kind="random", seed=6)
    comparison = compare_methods(
        config.pattern, grid, BENCH_ITERATIONS, all_methods(),
        temporal_fusion=fusion_protocol(config.pattern.points),
    )
    spar_time = comparison.results["SparStencil"].elapsed_seconds
    row = {
        "gstencil_per_s": comparison.gstencil(),
        "speedup_of_sparstencil": {
            name: result.elapsed_seconds / spar_time
            for name, result in comparison.results.items()
            if name != "SparStencil"
        },
    }
    return comparison, row


@pytest.mark.parametrize("config", table2_benchmarks(), ids=lambda c: c.name)
def test_figure6_kernel(benchmark, config):
    comparison, row = benchmark.pedantic(
        _run_kernel, args=(config,), rounds=1, iterations=1)
    _ROWS[config.name] = row

    print(f"\nFigure 6 — {config.name} "
          f"({config.pattern.points} taps, grid {BENCH_GRIDS[config.pattern.ndim]})")
    for name, gstencil in sorted(row["gstencil_per_s"].items(),
                                 key=lambda kv: -kv[1]):
        speed = row["speedup_of_sparstencil"].get(name)
        suffix = f"  (SparStencil {speed:4.2f}x faster)" if speed else ""
        print(f"  {name:>12}: {gstencil:9.2f} GStencil/s{suffix}")

    # Headline shape checks: SparStencil leads every baseline on every kernel
    # except near-ties with the strongest dense-TCU layout method.
    for name, speed in row["speedup_of_sparstencil"].items():
        assert speed > 0.95, (config.name, name, speed)
    assert row["speedup_of_sparstencil"]["cuDNN"] > 2.0


def test_figure6_summary(benchmark, results_dir):
    """Aggregate speedups across kernels (the paper's 'average speedup' claim)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("per-kernel benchmarks did not run")
    baselines = sorted(next(iter(_ROWS.values()))["speedup_of_sparstencil"])
    summary = {}
    for baseline in baselines:
        values = [row["speedup_of_sparstencil"][baseline] for row in _ROWS.values()]
        summary[baseline] = {
            "geomean_speedup": geometric_mean(values),
            "max_speedup": max(values),
            "min_speedup": min(values),
        }
    print("\nFigure 6 — SparStencil speedup summary (geomean / max over Table-2 kernels)")
    for baseline, stats in summary.items():
        print(f"  vs {baseline:>12}: {stats['geomean_speedup']:5.2f}x geomean, "
              f"{stats['max_speedup']:5.2f}x max")
    save_results("fig6_sota_comparison", {"per_kernel": _ROWS, "summary": summary})

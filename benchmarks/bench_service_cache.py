"""Service-layer benchmark — compile cache and batched solve throughput.

Quantifies what the serving layer buys on top of the paper's pipeline:

* cold vs. warm compile latency per Table-2 kernel (a warm hit skips
  morphing, conversion and the layout search entirely);
* batched ``solve_many`` throughput over a mixed 8-request workload versus
  sequential uncached ``sparstencil_solve`` calls.

Regenerate with::

    pytest benchmarks/bench_service_cache.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_GRIDS, save_results
from repro import Problem, StencilSession, make_grid
from repro.service import CompileCache, CompileRequest
from repro.stencils.catalog import table2_benchmarks

#: Kernels small enough that host compile time is the interesting quantity.
CACHE_KERNELS = [c for c in table2_benchmarks()
                 if c.name in ("Heat-1D", "Heat-2D", "Box-2D9P", "Box-2D49P")]

_ROWS: dict = {}


@pytest.mark.parametrize("config", CACHE_KERNELS, ids=lambda c: c.name)
def test_cold_vs_warm_compile(benchmark, config):
    grid_shape = BENCH_GRIDS[config.pattern.ndim]
    request = CompileRequest.build(config.pattern, grid_shape)

    cold_start = time.perf_counter()
    cache = CompileCache()
    cache.get_or_compile(request)
    cold_seconds = time.perf_counter() - cold_start

    warm = benchmark.pedantic(cache.get_or_compile, args=(request,),
                              rounds=20, iterations=1)
    warm_seconds = min(benchmark.stats.stats.data)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert cache.stats.hits >= 20
    assert warm.plan is not None

    print(f"\n{config.name}: cold compile {cold_seconds * 1e3:8.2f} ms, "
          f"warm lookup {warm_seconds * 1e6:8.2f} us "
          f"({speedup:,.0f}x)")
    _ROWS.setdefault("compile_latency", {})[config.name] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
    }


def _mixed_problems():
    patterns = [c.pattern for c in CACHE_KERNELS]
    problems = []
    for i in range(8):
        pattern = patterns[i % len(patterns)]
        shape = BENCH_GRIDS[pattern.ndim]
        problems.append(Problem(pattern, make_grid(shape, seed=i), 2,
                                tag=f"{pattern.name}/{i}"))
    return problems


def test_batch_throughput(benchmark):
    problems = _mixed_problems()
    session = StencilSession()

    # the pre-service baseline: one-at-a-time, no cache (cache=None disables
    # the session cache per call), one compile per request
    sequential_start = time.perf_counter()
    sequential_provenance = None
    for problem in problems:
        solution = session.solve(problem, mode="single", cache=None)
        sequential_provenance = solution.provenance
    sequential_seconds = time.perf_counter() - sequential_start

    cache = CompileCache()
    session.solve_batch(problems, cache=cache)  # warm the cache once
    report = benchmark.pedantic(session.solve_batch, args=(problems,),
                                kwargs={"cache": cache}, rounds=5, iterations=1)
    batched_seconds = min(benchmark.stats.stats.data)

    summary = report.summary()
    print(f"\nbatch of {summary['requests']} requests "
          f"({summary['distinct_plans']} distinct plans): "
          f"sequential uncached {sequential_seconds * 1e3:.1f} ms, "
          f"warm batched {batched_seconds * 1e3:.1f} ms "
          f"({sequential_seconds / batched_seconds:.1f}x), "
          f"aggregate {summary['aggregate_gstencil_per_second']:.1f} GStencil/s")
    assert summary["compiles_performed"] == 0  # fully warm
    _ROWS["batch_throughput"] = {
        "sequential_uncached_seconds": sequential_seconds,
        "warm_batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "aggregate_gstencil_per_second":
            summary["aggregate_gstencil_per_second"],
        "requests": summary["requests"],
        "distinct_plans": summary["distinct_plans"],
    }
    # session provenance: which engine the routed modes actually used, so
    # the perf trajectory can distinguish "same numbers, different path"
    _ROWS["provenance"] = {
        "api": "session",
        "sequential": sequential_provenance.as_dict(),
        "batch_mode": "solve_batch/single",
    }


def test_service_cache_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("no rows collected")
    path = save_results("service_cache", _ROWS, config={
        "kernels": [c.name for c in CACHE_KERNELS],
        "bench_grids": {str(k): list(v) for k, v in BENCH_GRIDS.items()},
        "batch_requests": 8,
        "api": "session",
    })
    print(f"\nsaved service-cache benchmark rows to {path}")

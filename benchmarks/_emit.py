"""Machine-readable benchmark results: one JSON envelope per benchmark.

Every benchmark writes ``benchmarks/results/<name>.json`` through
:func:`emit_result` so the files share one schema a perf-trajectory tool can
diff across PRs::

    {
      "name": "<benchmark name>",
      "timestamp": "<UTC ISO-8601>",
      "config": { ... knobs the run was taken with ... },
      "metrics": { ... the benchmark's rows ... }
    }

:func:`repro.analysis.report` unwraps the envelope transparently, and also
accepts the bare legacy payloads older result files may still contain.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["RESULTS_DIR", "emit_result"]


def emit_result(name: str, metrics: Dict[str, Any],
                config: Optional[Dict[str, Any]] = None,
                results_dir: Optional[Path] = None) -> Path:
    """Write one benchmark's results as a timestamped JSON envelope."""
    directory = Path(results_dir) if results_dir is not None else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    envelope = {
        "name": name,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "config": config or {},
        "metrics": metrics,
    }
    with path.open("w") as handle:
        json.dump(envelope, handle, indent=2, default=str)
    return path

"""Ablation — Hierarchical Two-Level Matching vs greedy vs Blossom.

DESIGN.md calls out the matching algorithm as a design choice worth ablating:
Algorithm 1 is linear-time and provably optimal on k-staircase matrices,
while the Blossom fallback is general but cubic in the worst case.  This
ablation measures, across morphed kernel matrices of growing size,

* the number of zero columns each algorithm inserts (padding quality), and
* the host time each algorithm needs (compilation cost).

Regenerate with::

    pytest benchmarks/bench_ablation_matching.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import save_results
from repro.core.matching import blossom_matching, greedy_matching, hierarchical_matching
from repro.core.morphing import MorphConfig, morph_kernel_matrix
from repro.core.staircase import block_structure_from_morph
from repro.stencils.pattern import StencilPattern

#: (kernel radius, r1, r2) — k' grows from a few dozen to several hundred.
CASES = [(1, 4, 4), (1, 8, 8), (2, 8, 4), (3, 8, 4), (3, 16, 8)]

_ROWS: list = []


@pytest.mark.parametrize("radius,r1,r2", CASES,
                         ids=[f"k{2 * r + 1}-r{r1}x{r2}" for r, r1, r2 in CASES])
def test_ablation_matching(benchmark, radius, r1, r2):
    pattern = StencilPattern.box(2, radius)
    config = MorphConfig.from_r1_r2(2, r1, r2)
    a_prime = morph_kernel_matrix(pattern, config)
    structure = block_structure_from_morph(pattern, config)

    def run():
        timings = {}
        paddings = {}
        start = time.perf_counter()
        hier = hierarchical_matching(structure)
        timings["hierarchical"] = time.perf_counter() - start
        paddings["hierarchical"] = hier.n_pad
        assert hier.is_conflict_free(a_prime)

        start = time.perf_counter()
        greedy = greedy_matching(a_prime)
        timings["greedy"] = time.perf_counter() - start
        paddings["greedy"] = greedy.n_pad

        start = time.perf_counter()
        blossom = blossom_matching(a_prime)
        timings["blossom"] = time.perf_counter() - start
        paddings["blossom"] = blossom.n_pad
        return timings, paddings

    timings, paddings = benchmark.pedantic(run, rounds=1, iterations=1)
    row = {"k": 2 * radius + 1, "r1": r1, "r2": r2,
           "k_prime": a_prime.shape[1], "timings": timings, "paddings": paddings}
    _ROWS.append(row)

    print(f"\nMatching ablation — k={row['k']}, r1={r1}, r2={r2} "
          f"(k'={row['k_prime']} columns)")
    for name in ("hierarchical", "greedy", "blossom"):
        print(f"  {name:>13}: pad {paddings[name]:>3} columns, "
              f"{timings[name] * 1e3:8.2f} ms")

    # Theorem 2: the hierarchical matching is optimal, so Blossom cannot pad
    # less; the hierarchical matching must also not be slower than Blossom.
    assert paddings["hierarchical"] <= paddings["blossom"]
    assert timings["hierarchical"] <= timings["blossom"] * 1.5


def test_ablation_matching_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("no ablation rows collected")
    save_results("ablation_matching", _ROWS)

"""Online-serving benchmark — coalesced server vs one-request-at-a-time.

A load generator drives the :class:`repro.StencilServer` with a *skewed*
fingerprint popularity (a few hot kernels dominate, a tail of cold ones —
the shape real serving traffic has) under two arrival patterns:

* **closed-loop** — N client threads, each submitting its next request as
  soon as the previous one resolves (throughput-bound clients);
* **open-loop** — requests arrive on a fixed schedule regardless of
  completion (arrival-rate-bound clients; queueing shows up as latency).

The baseline is the pre-serving deployment: sequential, uncached
``sparstencil_solve`` calls, one compile per request.  Coalescing + the
shared compile cache turn ``requests`` compiles into ``distinct
fingerprints`` compiles, which is where the throughput multiple comes from.

Regenerate with::

    pytest benchmarks/bench_server_load.py --benchmark-only -s
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from collections import Counter

from benchmarks.conftest import save_results
from repro import Problem, ServerConfig, StencilServer, StencilSession, make_grid
from repro.stencils.catalog import table2_benchmarks

#: Kernel popularity is skewed ~ Zipf: the first kernel gets half the
#: traffic, the next a quarter, and so on — the regime where fingerprint
#: coalescing pays most.
POPULARITY = (8, 4, 2, 1)
REQUESTS = 45
ITERATIONS = 2
GRID_2D = (96, 96)
GRID_1D = (4096,)
DEVICES = 2

_ROWS: dict = {}


def _workload():
    """Deterministic skewed problem stream over 4 distinct fingerprints."""
    kernels = [c for c in table2_benchmarks()
               if c.name in ("Heat-1D", "Heat-2D", "Box-2D9P", "Box-2D49P")]
    weighted = [k for kernel, weight in zip(kernels, POPULARITY)
                for k in [kernel] * weight]
    problems = []
    for i in range(REQUESTS):
        config = weighted[(i * 7) % len(weighted)]  # shuffled, deterministic
        shape = GRID_1D if config.pattern.ndim == 1 else GRID_2D
        problems.append(Problem(
            config.pattern, make_grid(shape, seed=i), ITERATIONS,
            tag=f"{config.name}/{i}"))
    return problems


def _run_sequential(problems):
    """The pre-serving baseline: one-at-a-time, one compile per request
    (``cache=None`` disables the session cache per call)."""
    outputs = []
    with StencilSession() as session:
        for problem in problems:
            outputs.append(session.solve(problem, mode="single",
                                         cache=None).output)
    return outputs


def _run_server_closed_loop(problems, clients=6):
    """Closed-loop: each client thread keeps one request in flight."""
    outputs = [None] * len(problems)
    executors = [None] * len(problems)
    cursor = iter(range(len(problems)))
    lock = threading.Lock()
    with StencilServer(devices=DEVICES,
                       config=ServerConfig(window_seconds=0.005,
                                           max_batch_size=16)) as server:
        def client():
            while True:
                with lock:
                    i = next(cursor, None)
                if i is None:
                    return
                result = server.submit_problem(problems[i]).result(timeout=300)
                outputs[i] = result.output
                executors[i] = result.executor

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        telemetry = server.metrics()
    return outputs, telemetry, executors


def _run_server_open_loop(problems, interval_seconds=0.001):
    """Open-loop: fixed arrival schedule, completion decoupled from arrival."""
    with StencilServer(devices=DEVICES,
                       config=ServerConfig(window_seconds=0.005,
                                           max_batch_size=16,
                                           queue_bound=2 * len(problems))
                       ) as server:
        handles = []
        for problem in problems:
            handles.append(server.submit_problem(problem))
            time.sleep(interval_seconds)
        results = [handle.result(timeout=300) for handle in handles]
        telemetry = server.metrics()
    return ([result.output for result in results], telemetry,
            [result.executor for result in results])


def test_server_load(benchmark):
    requests = _workload()
    distinct = {request.compile_request().fingerprint
                for request in requests}

    sequential_start = time.perf_counter()
    expected = _run_sequential(requests)
    sequential_seconds = time.perf_counter() - sequential_start

    result = {}

    def serve():
        start = time.perf_counter()
        outputs, telemetry, executors = _run_server_closed_loop(requests)
        result["seconds"] = time.perf_counter() - start
        result["outputs"] = outputs
        result["telemetry"] = telemetry
        result["executors"] = executors

    benchmark.pedantic(serve, rounds=1, iterations=1)
    server_seconds = result["seconds"]
    telemetry = result["telemetry"]

    for i, (got, want) in enumerate(zip(result["outputs"], expected)):
        assert np.array_equal(got, want), requests[i].tag

    open_start = time.perf_counter()
    open_outputs, open_telemetry, open_executors = _run_server_open_loop(
        requests)
    open_seconds = time.perf_counter() - open_start
    for i, (got, want) in enumerate(zip(open_outputs, expected)):
        assert np.array_equal(got, want), requests[i].tag

    speedup = sequential_seconds / server_seconds
    print(f"\n{REQUESTS} requests over {len(distinct)} fingerprints "
          f"(popularity {POPULARITY}):")
    print(f"  sequential one-at-a-time : {sequential_seconds * 1e3:8.1f} ms")
    print(f"  closed-loop coalesced    : {server_seconds * 1e3:8.1f} ms "
          f"({speedup:.1f}x)")
    print(f"  open-loop coalesced      : {open_seconds * 1e3:8.1f} ms")
    print(f"  coalescing ratio         : "
          f"{telemetry['coalescing']['ratio']:.2f}")
    print(f"  cache hit rate           : "
          f"{telemetry['cache']['hit_rate']:.2%}")
    print(f"  p50/p95/p99 latency      : "
          f"{telemetry['latency']['total']['p50_seconds'] * 1e3:.1f} / "
          f"{telemetry['latency']['total']['p95_seconds'] * 1e3:.1f} / "
          f"{telemetry['latency']['total']['p99_seconds'] * 1e3:.1f} ms")

    # acceptance: coalesced serving beats one-at-a-time by >= 2x on the
    # skewed workload, and actually coalesced (ratio > 1, one compile per
    # distinct fingerprint)
    assert speedup >= 2.0, f"serving speedup {speedup:.2f}x below 2x"
    assert telemetry["coalescing"]["ratio"] > 1.0
    assert telemetry["cache"]["misses"] == len(distinct)

    _ROWS["comparison"] = {
        "requests": REQUESTS,
        "distinct_fingerprints": len(distinct),
        "sequential_seconds": sequential_seconds,
        "server_seconds": server_seconds,
        "open_loop_seconds": open_seconds,
        "speedup": speedup,
    }
    _ROWS["telemetry"] = telemetry
    _ROWS["open_loop_telemetry"] = open_telemetry
    # session provenance: per-request routed modes, so the perf trajectory
    # distinguishes single-device micro-batches from sharded dispatches
    _ROWS["provenance"] = {
        "api": "session/served",
        "sequential_mode": "single",
        "closed_loop_executor_counts": dict(Counter(result["executors"])),
        "open_loop_executor_counts": dict(Counter(open_executors)),
    }


def test_server_load_save(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("no rows collected")
    path = save_results("server_load", _ROWS, config={
        "requests": REQUESTS,
        "iterations": ITERATIONS,
        "devices": DEVICES,
        "popularity": list(POPULARITY),
        "grid_2d": list(GRID_2D),
        "grid_1d": list(GRID_1D),
    })
    print(f"\nsaved server-load benchmark rows to {path}")
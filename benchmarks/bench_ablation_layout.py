"""Ablation — automatic layout search vs fixed layouts, and LUT address mapping.

Two of the design choices DESIGN.md calls out:

* **Layout search (Eq. 11)** — compare the modelled sweep time of the layout
  the search selects against fixed layouts (the ConvStencil-style 16x1, a
  square 4x4 and the naive 1x1) on every Table-2 kernel.
* **Lookup-table address mapping (§3.3)** — compare the host time to build
  ``B'`` through the precomputed tables against re-deriving the addresses
  with the direct (div/mod-style) morphing routine, and report the table
  sizes shipped to the device.

Regenerate with::

    pytest benchmarks/bench_ablation_layout.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import save_results
from repro.core.layout_search import search_layout
from repro.core.lookup_table import build_lookup_table, gather_b_matrix
from repro.core.morphing import MorphConfig, morph_input_matrix
from repro.core.perf_model import estimate_layout
from repro.stencils.catalog import table2_benchmarks
from repro.stencils.grid import make_grid

GRIDS = {1: (65536,), 2: (1024, 1024), 3: (96, 96, 96)}

FIXED_LAYOUTS = {"convstencil-16x1": (16, 1), "square-4x4": (4, 4), "naive-1x1": (1, 1)}

_SEARCH_ROWS: dict = {}


@pytest.mark.parametrize("config", table2_benchmarks(), ids=lambda c: c.name)
def test_ablation_layout_search(benchmark, config):
    pattern = config.pattern
    grid_shape = GRIDS[pattern.ndim]
    out_last = grid_shape[-1] - pattern.diameter + 1

    def run():
        searched = search_layout(pattern, grid_shape).best.estimate
        rows = {"searched": {"r1": searched.r1, "r2": searched.r2,
                             "t_sweep": searched.t_total}}
        for name, (r1, r2) in FIXED_LAYOUTS.items():
            r1 = min(r1, out_last)
            r2 = 1 if pattern.ndim == 1 else r2
            est = estimate_layout(
                pattern, grid_shape,
                MorphConfig.from_r1_r2(pattern.ndim, r1, r2))
            rows[name] = {"r1": r1, "r2": r2, "t_sweep": est.t_total}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _SEARCH_ROWS[config.name] = rows

    print(f"\nLayout-search ablation — {config.name} on {grid_shape}")
    base = rows["searched"]["t_sweep"]
    for name, row in rows.items():
        slowdown = row["t_sweep"] / base
        print(f"  {name:>16}: r1={row['r1']:<3} r2={row['r2']:<3} "
              f"sweep {row['t_sweep'] * 1e6:9.2f} us  ({slowdown:4.2f}x of searched)")

    # The searched layout is never slower than any fixed layout.
    assert all(row["t_sweep"] >= base * 0.999 for row in rows.values())


def test_ablation_lookup_table(benchmark, results_dir):
    pattern = table2_benchmarks()[5].pattern      # Box-2D49P
    grid_shape = (512, 512)
    config = MorphConfig.from_r1_r2(2, 8, 4)
    data = make_grid(grid_shape, kind="random", seed=3).data

    def run():
        start = time.perf_counter()
        lut = build_lookup_table(pattern, grid_shape, config)
        build_seconds = time.perf_counter() - start

        start = time.perf_counter()
        via_lut = gather_b_matrix(lut, data)
        gather_seconds = time.perf_counter() - start

        start = time.perf_counter()
        direct, _, _, _ = morph_input_matrix(pattern, data, config)
        direct_seconds = time.perf_counter() - start

        assert np.allclose(via_lut, direct)
        return {"lut_build_s": build_seconds, "lut_gather_s": gather_seconds,
                "direct_morph_s": direct_seconds, "lut_bytes": lut.nbytes}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nLookup-table ablation — Box-2D49P, 512x512, layout (8, 4)")
    print(f"  LUT build      : {stats['lut_build_s'] * 1e3:8.2f} ms "
          f"({stats['lut_bytes'] / 1024:.1f} KiB shipped once)")
    print(f"  LUT gather     : {stats['lut_gather_s'] * 1e3:8.2f} ms per sweep")
    print(f"  direct morph   : {stats['direct_morph_s'] * 1e3:8.2f} ms per sweep")

    save_results("ablation_layout_and_lut",
                 {"layout_search": _SEARCH_ROWS, "lookup_table": stats})

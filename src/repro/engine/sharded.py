"""Sharded multi-device executor: domain decomposition + halo exchange.

The grid's output region is tiled into per-shard subgrids
(:class:`repro.stencils.partition.GridPartition`), one shard per simulated
device.  Each shard gets its own compiled plan — obtained through the
:class:`repro.service.CompileCache`, so shards with equal subgrid shapes
share one fingerprint and compile once — pinned to the *same* layout config
as the reference plan and aligned to its tile extents.  That alignment makes
every shard-local ``B'`` column bit-identical to the corresponding column of
the global ``B'``, which is what lets the sharded run reproduce the
single-device output exactly.

Per sweep: every shard runs one ``gather B' -> MMA -> assemble`` step
(concurrently, on one run-wide thread pool), then the
radius-wide halos are exchanged between neighbouring shards.  The modelled
wall time is the weak-scaling critical path: slowest shard per sweep plus
the interconnect cost of its halo traffic.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fusion import fused_iterations
from repro.core.morphing import MorphConfig
from repro.core.pipeline import CompiledStencil, StencilRunResult
from repro.engine.base import (
    original_points,
    prepare_sweep,
    run_sweep,
    summarize_launches,
    throughput_metrics,
)
from repro.stencils.boundary import apply_boundary
from repro.stencils.grid import Grid
from repro.stencils.partition import GridPartition
from repro.tcu.counters import UtilizationReport, combine_utilization
from repro.tcu.executor import LaunchResult
from repro.tcu.spec import MultiDeviceSpec
from repro.util.parallel import default_workers, parallel_map
from repro.util.validation import require, require_positive_int

__all__ = ["ShardedExecutor", "ShardedRunResult"]


@dataclass(frozen=True)
class ShardedRunResult(StencilRunResult):
    """A :class:`StencilRunResult` plus the multi-device execution picture.

    ``elapsed_seconds`` is the modelled *wall* time of the cluster (critical
    shard per sweep plus halo-exchange time); ``compute_seconds`` and
    ``memory_seconds`` are the same critical-path decomposition.  Per-shard
    device time and utilization are kept so the analysis layer can report
    load balance and scaling efficiency.
    """

    shard_grid: Tuple[int, ...] = ()
    device_count: int = 1
    shard_elapsed_seconds: Tuple[float, ...] = ()
    shard_utilization: Tuple[UtilizationReport, ...] = ()
    halo_exchange_bytes: float = 0.0
    halo_exchange_seconds: float = 0.0
    device_traffic_bytes: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.shard_elapsed_seconds)

    @property
    def halo_traffic_fraction(self) -> float:
        """Share of all modelled byte movement that was halo exchange."""
        total = self.halo_exchange_bytes + self.device_traffic_bytes
        return self.halo_exchange_bytes / total if total > 0 else 0.0

    @property
    def load_balance(self) -> float:
        """Fastest over slowest shard device time (1.0 = perfectly balanced)."""
        if not self.shard_elapsed_seconds:
            return 1.0
        slowest = max(self.shard_elapsed_seconds)
        return min(self.shard_elapsed_seconds) / slowest if slowest > 0 else 1.0


class ShardedExecutor:
    """Run a compiled stencil sharded across ``spec.device_count`` devices.

    Parameters
    ----------
    spec:
        A :class:`repro.tcu.spec.MultiDeviceSpec`, or an integer device count
        (N simulated A100s on NVLink).
    shard_grid:
        Shards per grid axis.  Defaults to one shard per device, factored
        over the axes by :func:`repro.stencils.partition.plan_shard_grid`.
    cache:
        Optional :class:`repro.service.CompileCache` for the per-shard plans.
        A private cache is created when omitted, so equal-shaped shards still
        compile once per run.
    max_workers:
        Thread-pool width for concurrent shard sweeps.
    """

    def __init__(self, spec: Union[MultiDeviceSpec, int] = 2,
                 shard_grid: Optional[Sequence[int]] = None,
                 cache=None, max_workers: Optional[int] = None) -> None:
        if isinstance(spec, (int, np.integer)):
            # resolved against the compiled plan's device at execute time, so
            # an integer count clusters whatever device the workload targets
            self._device_count = int(spec)
            require_positive_int(self._device_count, "device count")
            self.spec: Optional[MultiDeviceSpec] = None
        else:
            require(isinstance(spec, MultiDeviceSpec),
                    f"spec must be a MultiDeviceSpec or a device count, "
                    f"got {type(spec).__name__}")
            self.spec = spec
            self._device_count = spec.device_count
        self.shard_grid = None if shard_grid is None else tuple(
            int(c) for c in shard_grid)
        self.cache = cache
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def resolve_spec(self, compiled: CompiledStencil) -> MultiDeviceSpec:
        """The cluster this run executes on: the configured
        :class:`MultiDeviceSpec`, or — when the executor was built from a
        bare device count — N copies of the *compiled plan's* device."""
        if self.spec is not None:
            return self.spec
        return MultiDeviceSpec(device=compiled.spec,
                               device_count=self._device_count)

    def partition(self, compiled: CompiledStencil) -> GridPartition:
        """Tile the compiled grid, aligned to the plan's layout tiles."""
        config = compiled.plan.config
        pattern = compiled.pattern
        require(MorphConfig.from_r1_r2(pattern.ndim, config.r1, config.r2)
                == config,
                f"layout config {config.r} is not expressible as (r1, r2) — "
                f"sharded execution supports the standard morph layouts only")
        shard_grid = self.shard_grid if self.shard_grid is not None \
            else self._device_count
        partition = GridPartition.build(
            compiled.grid_shape, pattern.radius, shard_grid, align=config.r,
            boundary=compiled.boundary)
        require(partition.n_shards <= self._device_count,
                f"{partition.n_shards} shards need more than the "
                f"{self._device_count} available devices")
        return partition

    def _shard_plans(self, compiled: CompiledStencil, spec: MultiDeviceSpec,
                     partition: GridPartition) -> List[CompiledStencil]:
        """Compile (or fetch) one plan per shard, pinned to the global layout.

        Plans go through the compile cache keyed by the canonical fingerprint,
        so the typical partition — interior shards all the same shape, edge
        shards sharing a handful of remainder shapes — compiles each distinct
        subgrid shape exactly once.
        """
        from repro.service.cache import CompileCache
        from repro.service.fingerprint import CompileRequest

        cache = self.cache
        if cache is None:
            cache = CompileCache(capacity=max(8, partition.n_shards))
        config = compiled.plan.config
        requests = [
            CompileRequest.build(
                compiled.original_pattern, shard.subgrid_shape,
                dtype=compiled.plan.dtype,
                spec=spec.device,
                engine=compiled.engine,
                fragment=compiled.plan.fragment,
                search=False,
                r1=config.r1,
                r2=config.r2,
                temporal_fusion=compiled.temporal_fusion,
                conversion_method=compiled.conversion_method,
                boundary=compiled.boundary,
                backend=compiled.backend,
            )
            for shard in partition.shards
        ]
        distinct = {}
        for request in requests:
            distinct.setdefault(request.fingerprint, request)
        parallel_map(cache.get_or_compile, list(distinct.values()),
                     max_workers=self.max_workers)
        return [cache.get_or_compile(request) for request in requests]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, compiled: CompiledStencil, grid: Grid,
                iterations: int) -> ShardedRunResult:
        require_positive_int(iterations, "iterations")
        require(tuple(grid.shape) == compiled.grid_shape,
                f"grid shape {tuple(grid.shape)} does not match the compiled "
                f"shape {compiled.grid_shape}")
        require(grid.boundary == compiled.boundary,
                f"grid boundary {grid.boundary!r} does not match the "
                f"compiled boundary {compiled.boundary!r} — recompile for "
                f"this grid")
        sweeps, leftover = fused_iterations(iterations,
                                            compiled.temporal_fusion)
        require(leftover == 0,
                f"sharded execution requires iterations divisible by the "
                f"temporal fusion factor {compiled.temporal_fusion} "
                f"(got {iterations}); run the leftover sweeps on the "
                f"single-device executor")

        spec = self.resolve_spec(compiled)
        partition = self.partition(compiled)
        compile_start = time.perf_counter()
        contexts = [prepare_sweep(plan, spec.device)
                    for plan in self._shard_plans(compiled, spec, partition)]
        shard_compile_seconds = time.perf_counter() - compile_start

        itemsize = compiled.plan.dtype.itemsize
        recv_messages = partition.messages_per_shard()
        recv_elements = partition.received_elements_per_shard()
        halo_seconds_per_sweep = max(
            (spec.exchange_seconds(elements * itemsize, messages)
             for elements, messages in zip(recv_elements, recv_messages)),
            default=0.0,
        ) if partition.n_shards > 1 else 0.0
        dram_bytes_per_sweep = sum(
            context.plan.estimate.traffic.global_bytes
            + context.plan.estimate.traffic.metadata_bytes
            + context.plan.estimate.traffic.lut_bytes
            for context in contexts)

        # the initial halo ring is derived state under periodic/reflect —
        # fill it exactly like the single-device executor before extracting
        # the shard slabs; Dirichlet reads the grid as-is (extract and
        # assemble both copy, so no mutation escapes either way)
        if partition.boundary == "dirichlet":
            base = grid.data
        else:
            base = apply_boundary(grid.data.copy(), partition.radius,
                                  partition.boundary)
        locals_ = partition.extract(base)
        shard_launches: List[List[LaunchResult]] = [[] for _ in contexts]
        wall = compute_crit = memory_crit = 0.0
        halo_bytes = 0.0

        # one pool for the whole run — per-sweep pool churn would dominate
        # at small shard sizes
        workers = self.max_workers if self.max_workers is not None \
            else default_workers(len(contexts))
        pool = ThreadPoolExecutor(max_workers=workers) \
            if workers > 1 and len(contexts) > 1 else None
        try:
            for sweep in range(sweeps):
                if pool is not None:
                    results = list(pool.map(run_sweep, contexts, locals_))
                else:
                    results = [run_sweep(context, local)
                               for context, local in zip(contexts, locals_)]
                for launches, result in zip(shard_launches, results):
                    launches.append(result)
                wall += max(r.elapsed_seconds for r in results)
                compute_crit += max(r.compute_seconds for r in results)
                memory_crit += max(r.memory_seconds for r in results)
                if sweep < sweeps - 1:
                    # nothing reads halos after the final sweep — the output
                    # is assembled from interiors only, so the last exchange
                    # is neither performed nor billed
                    exchanged = partition.exchange_halos(locals_)
                    halo_bytes += exchanged * itemsize
                    wall += halo_seconds_per_sweep
        finally:
            if pool is not None:
                pool.shutdown()

        output = partition.assemble(locals_, base)
        # under periodic/reflect the single-device executor refreshes the
        # halo ring after the final sweep too; the fill is a pure function
        # of the interior, so applying it to the assembled output lands on
        # the bit-identical ring (no-op under Dirichlet)
        apply_boundary(output, partition.radius, partition.boundary)

        shard_totals = [summarize_launches(launches)
                        for launches in shard_launches]
        all_launches = [r for launches in shard_launches for r in launches]
        overall = combine_utilization(
            [r.utilization for r in all_launches],
            [r.elapsed_seconds for r in all_launches])

        halo_seconds = halo_seconds_per_sweep * max(0, sweeps - 1)
        points = original_points(compiled, sweeps, 0)
        elapsed = wall
        gstencil, gflops = throughput_metrics(compiled, points, elapsed)
        overhead = dict(compiled.overhead_seconds)
        overhead["shard_compile"] = shard_compile_seconds

        return ShardedRunResult(
            output=output,
            iterations=iterations,
            elapsed_seconds=elapsed,
            compute_seconds=compute_crit,
            memory_seconds=memory_crit,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=overall,
            overhead_seconds=overhead,
            sweeps=sweeps,
            leftover_sweeps=0,
            points_updated=points,
            shard_grid=partition.shard_grid,
            shard_elapsed_seconds=tuple(t.elapsed_seconds
                                        for t in shard_totals),
            shard_utilization=tuple(t.utilization for t in shard_totals),
            halo_exchange_bytes=halo_bytes,
            halo_exchange_seconds=halo_seconds,
            device_traffic_bytes=dram_bytes_per_sweep * sweeps,
            device_count=spec.device_count,
        )

"""Sharded multi-device executor: communication-avoiding halo exchange.

The grid's output region is tiled into per-shard subgrids
(:class:`repro.stencils.partition.GridPartition`), one shard per simulated
device.  Each shard gets its own compiled plan — obtained through the
:class:`repro.service.CompileCache`, so shards with equal subgrid shapes
share one fingerprint and compile once — pinned to the *same* layout config
as the reference plan and aligned to its tile extents.  That alignment makes
every shard-local ``B'`` column bit-identical to the corresponding column of
the global ``B'``, which is what lets the sharded run reproduce the
single-device output exactly.

Communication avoidance happens along two axes:

* **Deep halos** (``halo_depth = k``): ghost regions are ``k`` shrink-steps
  wide and halos are exchanged once per *round* of ``k`` sweeps instead of
  once per sweep.  The intervening sweeps run on shrinking windows that
  recompute the ghost zone redundantly — sweep ``j`` of a round extends
  ``(k-1-j)`` steps past the owned interior, so by the round's last sweep
  the valid region has shrunk to exactly the interior.  Because windows
  shrink in tile-congruent steps, the redundant cells recompute *exactly*
  the neighbouring shard's bits and the output stays identical to the
  single-device run.  Locally supplied faces (reflect mirrors, periodic
  self-wraps) are refreshed every sweep, mirroring
  :func:`repro.stencils.boundary.apply_boundary`.
* **Compute/comm overlap**: the sweep immediately after an exchange is
  split into an *interior* phase (cells no exchanged ghost can reach) and a
  *rim* phase (the rest), and the modelled wall time of exchange + sweep
  becomes ``max(interior_compute, halo_exchange) + rim_compute`` — the
  exchange rides under the interior compute instead of serialising with it.

The modelled wall time is the weak-scaling critical path: slowest shard per
sweep plus whatever exchange time the overlap could not hide.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fusion import fused_iterations
from repro.core.morphing import MorphConfig
from repro.core.pipeline import CompiledStencil, StencilRunResult
from repro.engine.base import (
    SweepContext,
    original_points,
    prepare_sweep,
    run_sweep,
    summarize_launches,
    throughput_metrics,
)
from repro.obs.trace import current_span
from repro.stencils.boundary import apply_boundary
from repro.stencils.grid import Grid
from repro.stencils.partition import GridPartition
from repro.tcu.counters import UtilizationReport, combine_utilization
from repro.tcu.executor import LaunchResult
from repro.tcu.spec import MultiDeviceSpec
from repro.util.parallel import default_workers, parallel_map
from repro.util.validation import require, require_positive_int

__all__ = ["ShardedExecutor", "ShardedRunResult", "HaloRoundModel",
           "model_round", "model_schedule", "window_plan_seconds",
           "window_request", "build_shard_phases", "run_shard_phase"]


def window_request(compiled: CompiledStencil, device, shape: Tuple[int, ...]):
    """The compile request for one shard window: the global plan's layout
    (``r1``/``r2`` pinned, no search) at the window's shape — the pinning
    that makes shard-local tiles bit-identical to the global ones."""
    from repro.service.fingerprint import CompileRequest

    config = compiled.plan.config
    return CompileRequest.build(
        compiled.original_pattern, shape,
        dtype=compiled.plan.dtype,
        spec=device,
        engine=compiled.engine,
        fragment=compiled.plan.fragment,
        search=False,
        r1=config.r1,
        r2=config.r2,
        temporal_fusion=compiled.temporal_fusion,
        conversion_method=compiled.conversion_method,
        boundary=compiled.boundary,
        backend=compiled.backend,
    )


def window_plan_seconds(compiled: CompiledStencil, spec: MultiDeviceSpec,
                        partition: GridPartition, cache=None,
                        max_workers: Optional[int] = None
                        ) -> List[List[float]]:
    """Per-``(shard, mult)`` modelled sweep seconds from each window's own
    compiled roofline estimate.

    This is exactly what the executor bills per window sweep
    (``max(t_compute, t_memory)`` of the window plan), so feeding the
    result into :func:`model_round` makes the analytic round prediction
    match the measured modelled timeline instead of assuming compute scales
    linearly with window cells.  Plans go through ``cache`` — share the
    executor's cache and the later run compiles nothing new.
    """
    from repro.service.cache import CompileCache

    if cache is None:
        cache = CompileCache(
            capacity=max(8, partition.n_shards * partition.halo_depth))
    shapes = [[tuple(s.stop - s.start for s in partition.window(shard, mult))
               for mult in range(partition.halo_depth)]
              for shard in partition.shards]
    distinct = {}
    for rows in shapes:
        for shape in rows:
            request = window_request(compiled, spec.device, shape)
            distinct.setdefault(shape, request)
    parallel_map(cache.get_or_compile, list(distinct.values()),
                 max_workers=max_workers)
    seconds = {
        shape: cache.get_or_compile(request).plan.estimate.t_total
        for shape, request in distinct.items()
    }
    return [[seconds[shape] for shape in rows] for rows in shapes]


@dataclass(frozen=True)
class ShardedRunResult(StencilRunResult):
    """A :class:`StencilRunResult` plus the multi-device execution picture.

    ``elapsed_seconds`` is the modelled *wall* time of the cluster (critical
    shard per sweep plus the exchange time the overlap could not hide);
    ``compute_seconds`` and ``memory_seconds`` are the same critical-path
    decomposition.  Per-shard device time and utilization are kept so the
    analysis layer can report load balance and scaling efficiency.

    ``halo_exchange_seconds`` is the total modelled interconnect time of all
    exchanges; ``halo_exposed_seconds`` is the part that actually extended
    the wall clock (with overlap enabled the interior compute hides the
    rest).  ``redundant_points_updated`` counts the ghost-zone stencil
    updates deep halos recompute instead of communicating.
    """

    shard_grid: Tuple[int, ...] = ()
    device_count: int = 1
    shard_elapsed_seconds: Tuple[float, ...] = ()
    shard_utilization: Tuple[UtilizationReport, ...] = ()
    halo_exchange_bytes: float = 0.0
    halo_exchange_seconds: float = 0.0
    halo_exposed_seconds: float = 0.0
    halo_exchange_count: int = 0
    halo_depth: int = 1
    overlap: bool = True
    redundant_points_updated: float = 0.0
    device_traffic_bytes: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.shard_elapsed_seconds)

    @property
    def halo_traffic_fraction(self) -> float:
        """Share of the modelled wall time *exposed* to halo exchange.

        This is the communication cost that actually hurts: exchange time
        the interior compute could not hide (all of it when overlap is
        disabled).  The byte-level view lives in :attr:`halo_bytes_fraction`.
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.halo_exposed_seconds / self.elapsed_seconds

    @property
    def halo_bytes_fraction(self) -> float:
        """Share of all modelled byte movement that was halo exchange."""
        total = self.halo_exchange_bytes + self.device_traffic_bytes
        return self.halo_exchange_bytes / total if total > 0 else 0.0

    @property
    def redundant_compute_fraction(self) -> float:
        """Share of all stencil updates that were redundant ghost-zone
        recompute (the price of deep halos)."""
        total = self.points_updated + self.redundant_points_updated
        return self.redundant_points_updated / total if total > 0 else 0.0

    @property
    def load_balance(self) -> float:
        """Fastest over slowest shard device time (1.0 = perfectly balanced)."""
        if not self.shard_elapsed_seconds:
            return 1.0
        slowest = max(self.shard_elapsed_seconds)
        return min(self.shard_elapsed_seconds) / slowest if slowest > 0 else 1.0


@dataclass(frozen=True)
class _ShardPhase:
    """Per-(shard, window-mult) sweep state: the compiled context plus the
    precomputed window geometry."""

    context: SweepContext
    window: Tuple[slice, ...]
    writeback: Tuple[slice, ...]
    whole: bool                 #: window covers the entire local array
    out_cells: int              #: outputs this window computes
    dram_bytes: float           #: modelled DRAM traffic of one sweep


def _interior_cells(partition: GridPartition, shard) -> int:
    """Owned cells no freshly exchanged ghost value can reach in one sweep
    (the overlap's interior phase — everything else is rim)."""
    faces = partition.exchanged_faces(shard)
    radius = partition.radius
    cells = 1
    for axis, extent in enumerate(shard.out_shape):
        trim = sum(radius for f in faces if f[0] == axis)
        cells *= max(0, extent - trim)
    return cells


def build_shard_phases(compiled: CompiledStencil, spec: MultiDeviceSpec,
                       partition: GridPartition, cache=None,
                       max_workers: Optional[int] = None
                       ) -> List[List[_ShardPhase]]:
    """Compile (or fetch) one plan per (shard, window size), pinned to the
    global layout.

    Plans go through the compile cache keyed by the canonical fingerprint,
    so the typical partition — interior shards all the same shape, edge
    shards sharing a handful of remainder shapes, window shapes repeating
    across shards — compiles each distinct shape exactly once.  Shared by
    :class:`ShardedExecutor` and the program runner in
    :mod:`repro.programs.executor`, which builds one phase table per stage
    over a common partition.
    """
    from repro.service.cache import CompileCache

    if cache is None:
        cache = CompileCache(
            capacity=max(8, partition.n_shards * partition.halo_depth))

    def request_for(shape: Tuple[int, ...]):
        return window_request(compiled, spec.device, shape)

    geometry = []       # (shard, mult) -> window/writeback/shape
    requests = {}
    for shard in partition.shards:
        rows = []
        for mult in range(partition.halo_depth):
            window = partition.window(shard, mult)
            shape = tuple(s.stop - s.start for s in window)
            whole = shape == shard.subgrid_shape and all(
                s.start == 0 for s in window)
            rows.append((window, shape, whole))
            request = request_for(shape)
            requests.setdefault(request.fingerprint, request)
        geometry.append(rows)
    parallel_map(cache.get_or_compile, list(requests.values()),
                 max_workers=max_workers)

    phases: List[List[_ShardPhase]] = []
    for shard, rows in zip(partition.shards, geometry):
        shard_rows = []
        for mult, (window, shape, whole) in enumerate(rows):
            plan = cache.get_or_compile(request_for(shape))
            context = prepare_sweep(plan, spec.device)
            traffic = plan.plan.estimate.traffic
            shard_rows.append(_ShardPhase(
                context=context,
                window=window,
                writeback=partition.window_writeback(shard, mult),
                whole=whole,
                out_cells=math.prod(
                    partition.window_out_shape(shard, mult)),
                dram_bytes=float(traffic.global_bytes
                                 + traffic.metadata_bytes
                                 + traffic.lut_bytes),
            ))
        phases.append(shard_rows)
    return phases


def run_shard_phase(phase: _ShardPhase, local: np.ndarray,
                    radius: int) -> LaunchResult:
    """One shard sweep on its current window.

    A whole-array window runs in place (the classic ``halo_depth=1``
    path).  A shrunken window is copied to a contiguous buffer — shard
    plans index C-contiguous storage — swept there, and its computed
    outputs written back; the window's input ring is read-only and never
    written back.
    """
    if phase.whole:
        return run_sweep(phase.context, local)
    buffer = np.ascontiguousarray(local[phase.window])
    result = run_sweep(phase.context, buffer)
    local[phase.writeback] = buffer[tuple(
        slice(radius, s - radius) for s in buffer.shape)]
    return result


@dataclass(frozen=True)
class HaloRoundModel:
    """Modelled cost of one steady-state round (exchange + ``k`` sweeps).

    Shared by the :class:`repro.server.scheduler.DevicePoolScheduler`
    routing estimate and the deep-halo tradeoff analysis in
    :mod:`repro.analysis.scaling`, so the router and the analyst price a
    round identically.
    """

    halo_depth: int
    round_seconds: float        #: exchange + k sweeps on the critical path
    per_sweep_seconds: float    #: ``round_seconds / k`` (the routing cost)
    compute_seconds: float      #: critical-path compute of the k sweeps
    halo_seconds: float         #: modelled interconnect time of one exchange
    exposed_seconds: float      #: exchange time the overlap could not hide
    halo_fraction: float        #: ``exposed / round`` — wall-time exposure
    redundant_fraction: float   #: redundant updates / useful updates


def model_round(partition: GridPartition, spec: MultiDeviceSpec,
                itemsize: int, sweep_seconds: float,
                overlap: bool = True,
                window_seconds: Optional[Sequence[Sequence[float]]] = None
                ) -> HaloRoundModel:
    """Price one steady-state round of the communication-avoiding schedule.

    ``sweep_seconds`` is the modelled single-device full-grid sweep time;
    shard compute scales by its window's share of the global output cells.
    ``window_seconds`` optionally replaces that linear scaling with exact
    per-``(shard, mult)`` sweep times (from each window's own compiled
    roofline — see :func:`window_plan_seconds`); the routing scheduler
    stays on the compile-free linear model.  The first sweep of a round
    overlaps with the exchange (``max(interior, halo) + rim`` per shard);
    the remaining ``k-1`` sweeps are pure compute on shrinking windows.
    """
    k = partition.halo_depth
    out_cells = 1
    for extent in partition.grid_shape:
        out_cells *= extent - 2 * partition.radius
    if partition.n_shards <= 1:
        total = sweep_seconds * k
        return HaloRoundModel(halo_depth=k, round_seconds=total,
                              per_sweep_seconds=sweep_seconds,
                              compute_seconds=total, halo_seconds=0.0,
                              exposed_seconds=0.0, halo_fraction=0.0,
                              redundant_fraction=0.0)

    recv_elements = partition.received_elements_per_shard()
    recv_messages = partition.messages_per_shard()
    halos = [spec.exchange_seconds(elements * itemsize, messages)
             for elements, messages in zip(recv_elements, recv_messages)]
    halo = max(halos)

    window_cells = [[math.prod(partition.window_out_shape(shard, mult))
                     for mult in range(k)] for shard in partition.shards]
    interior = [_interior_cells(partition, shard)
                for shard in partition.shards]

    def compute(i: int, mult: int) -> float:
        if window_seconds is not None:
            return window_seconds[i][mult]
        return sweep_seconds * window_cells[i][mult] / out_cells

    first_mult = k - 1
    compute_first = max(compute(i, first_mult)
                        for i in range(partition.n_shards))
    if overlap:
        first_sweep = 0.0
        for i, cells in enumerate(window_cells):
            total = cells[first_mult]
            seconds = compute(i, first_mult)
            interior_sec = seconds * min(interior[i], total) / total \
                if total > 0 else 0.0
            rim_sec = seconds - interior_sec
            first_sweep = max(first_sweep,
                              max(interior_sec, halos[i]) + rim_sec)
    else:
        first_sweep = halo + compute_first

    rest = sum(max(compute(i, mult) for i in range(partition.n_shards))
               for mult in range(k - 2, -1, -1))
    round_seconds = first_sweep + rest
    compute_seconds = compute_first + rest
    redundant = sum(sum(cells) for cells in window_cells) - k * out_cells
    return HaloRoundModel(
        halo_depth=k,
        round_seconds=round_seconds,
        per_sweep_seconds=round_seconds / k,
        compute_seconds=compute_seconds,
        halo_seconds=halo,
        exposed_seconds=round_seconds - compute_seconds,
        halo_fraction=(round_seconds - compute_seconds) / round_seconds
        if round_seconds > 0 else 0.0,
        redundant_fraction=redundant / (k * out_cells),
    )


def model_schedule(partition: GridPartition, spec: MultiDeviceSpec,
                   itemsize: int, sweeps: int, sweep_seconds: float,
                   overlap: bool = True,
                   window_seconds: Optional[Sequence[Sequence[float]]] = None
                   ) -> HaloRoundModel:
    """Price a *finite* run of ``sweeps`` sweeps, round by round.

    :func:`model_round` amortises one steady-state round; this mirrors the
    executor's actual billing loop instead — the first round skips the
    exchange, the last round may be partial — so its ``per_sweep_seconds``
    (wall over ``sweeps``) matches :attr:`ShardedRunResult.elapsed_seconds`
    of a modelled run exactly when ``window_seconds`` comes from
    :func:`window_plan_seconds`.  Use it to predict the measured-optimal
    halo depth for a concrete iteration count.
    """
    require_positive_int(sweeps, "sweeps")
    k = partition.halo_depth
    out_cells = 1
    for extent in partition.grid_shape:
        out_cells *= extent - 2 * partition.radius
    if partition.n_shards <= 1:
        total = sweep_seconds * sweeps
        return HaloRoundModel(halo_depth=k, round_seconds=total,
                              per_sweep_seconds=sweep_seconds,
                              compute_seconds=total, halo_seconds=0.0,
                              exposed_seconds=0.0, halo_fraction=0.0,
                              redundant_fraction=0.0)

    recv_elements = partition.received_elements_per_shard()
    recv_messages = partition.messages_per_shard()
    halos = [spec.exchange_seconds(elements * itemsize, messages)
             for elements, messages in zip(recv_elements, recv_messages)]
    halo = max(halos)

    window_cells = [[math.prod(partition.window_out_shape(shard, mult))
                     for mult in range(k)] for shard in partition.shards]
    interior = [_interior_cells(partition, shard)
                for shard in partition.shards]

    def compute(i: int, mult: int) -> float:
        if window_seconds is not None:
            return window_seconds[i][mult]
        return sweep_seconds * window_cells[i][mult] / out_cells

    wall = compute_seconds = exposed = 0.0
    redundant = 0
    sweep = 0
    first_round = True
    while sweep < sweeps:
        span = min(k, sweeps - sweep)
        after_exchange = not first_round
        for j in range(span):
            mult = span - 1 - j
            step = [compute(i, mult) for i in range(partition.n_shards)]
            compute_seconds += max(step)
            redundant += sum(window_cells[i][mult]
                             for i in range(partition.n_shards)) - out_cells
            if after_exchange and overlap:
                step_wall = 0.0
                for i, seconds in enumerate(step):
                    cells = window_cells[i][mult]
                    share = min(interior[i], cells) / cells \
                        if cells > 0 else 0.0
                    interior_sec = seconds * share
                    step_wall = max(step_wall,
                                    max(interior_sec, halos[i])
                                    + (seconds - interior_sec))
                wall += step_wall
                exposed += step_wall - max(step)
            elif after_exchange:
                wall += max(step) + halo
                exposed += halo
            else:
                wall += max(step)
            after_exchange = False
        sweep += span
        first_round = False
    exchanges = max(0, -(-sweeps // k) - 1)
    return HaloRoundModel(
        halo_depth=k,
        round_seconds=wall,
        per_sweep_seconds=wall / sweeps,
        compute_seconds=compute_seconds,
        halo_seconds=halo * exchanges,
        exposed_seconds=exposed,
        halo_fraction=exposed / wall if wall > 0 else 0.0,
        redundant_fraction=redundant / (sweeps * out_cells),
    )


class ShardedExecutor:
    """Run a compiled stencil sharded across ``spec.device_count`` devices.

    Parameters
    ----------
    spec:
        A :class:`repro.tcu.spec.MultiDeviceSpec`, or an integer device count
        (N simulated A100s on NVLink).
    shard_grid:
        Shards per grid axis.  Defaults to one shard per device, factored
        over the axes by :func:`repro.stencils.partition.plan_shard_grid`
        (the surface-minimising heuristic — 4 devices on a square grid
        become a 2x2 shard grid).
    cache:
        Optional :class:`repro.service.CompileCache` for the per-shard plans.
        A private cache is created when omitted, so equal-shaped shards still
        compile once per run.
    max_workers:
        Thread-pool width for concurrent shard sweeps.
    halo_depth:
        Requested communication-avoiding depth ``k`` (exchange once per
        ``k`` sweeps).  Clamped to what the geometry supports
        (:meth:`repro.stencils.partition.GridPartition.max_halo_depth`),
        so an infeasible request degrades to shallower halos rather than
        failing.
    overlap:
        Model compute/comm overlap (``max(interior, exchange) + rim`` per
        post-exchange sweep).  Disable for the classic serialised timeline.
    """

    def __init__(self, spec: Union[MultiDeviceSpec, int] = 2,
                 shard_grid: Optional[Sequence[int]] = None,
                 cache=None, max_workers: Optional[int] = None,
                 halo_depth: int = 1, overlap: bool = True) -> None:
        if isinstance(spec, (int, np.integer)):
            # resolved against the compiled plan's device at execute time, so
            # an integer count clusters whatever device the workload targets
            self._device_count = int(spec)
            require_positive_int(self._device_count, "device count")
            self.spec: Optional[MultiDeviceSpec] = None
        else:
            require(isinstance(spec, MultiDeviceSpec),
                    f"spec must be a MultiDeviceSpec or a device count, "
                    f"got {type(spec).__name__}")
            self.spec = spec
            self._device_count = spec.device_count
        self.shard_grid = None if shard_grid is None else tuple(
            int(c) for c in shard_grid)
        self.cache = cache
        self.max_workers = max_workers
        require_positive_int(halo_depth, "halo_depth")
        self.halo_depth = int(halo_depth)
        self.overlap = bool(overlap)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def resolve_spec(self, compiled: CompiledStencil) -> MultiDeviceSpec:
        """The cluster this run executes on: the configured
        :class:`MultiDeviceSpec`, or — when the executor was built from a
        bare device count — N copies of the *compiled plan's* device."""
        if self.spec is not None:
            return self.spec
        return MultiDeviceSpec(device=compiled.spec,
                               device_count=self._device_count)

    def partition(self, compiled: CompiledStencil) -> GridPartition:
        """Tile the compiled grid, aligned to the plan's layout tiles.

        The requested ``halo_depth`` is clamped to the deepest the geometry
        supports (shards must own their deep ghost width; periodic wrap
        images must stay tile-congruent)."""
        config = compiled.plan.config
        pattern = compiled.pattern
        require(MorphConfig.from_r1_r2(pattern.ndim, config.r1, config.r2)
                == config,
                f"layout config {config.r} is not expressible as (r1, r2) — "
                f"sharded execution supports the standard morph layouts only")
        shard_grid = self.shard_grid if self.shard_grid is not None \
            else self._device_count
        depth = min(self.halo_depth, GridPartition.max_halo_depth(
            compiled.grid_shape, pattern.radius, shard_grid, align=config.r,
            boundary=compiled.boundary))
        partition = GridPartition.build(
            compiled.grid_shape, pattern.radius, shard_grid, align=config.r,
            boundary=compiled.boundary, halo_depth=depth)
        require(partition.n_shards <= self._device_count,
                f"{partition.n_shards} shards need more than the "
                f"{self._device_count} available devices")
        return partition

    def _shard_phases(self, compiled: CompiledStencil, spec: MultiDeviceSpec,
                      partition: GridPartition) -> List[List[_ShardPhase]]:
        return build_shard_phases(compiled, spec, partition,
                                  cache=self.cache,
                                  max_workers=self.max_workers)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_phase(phase: _ShardPhase, local: np.ndarray,
                   radius: int) -> LaunchResult:
        return run_shard_phase(phase, local, radius)

    def execute(self, compiled: CompiledStencil, grid: Grid,
                iterations: int) -> ShardedRunResult:
        require_positive_int(iterations, "iterations")
        require(tuple(grid.shape) == compiled.grid_shape,
                f"grid shape {tuple(grid.shape)} does not match the compiled "
                f"shape {compiled.grid_shape}")
        require(grid.boundary == compiled.boundary,
                f"grid boundary {grid.boundary!r} does not match the "
                f"compiled boundary {compiled.boundary!r} — recompile for "
                f"this grid")
        sweeps, leftover = fused_iterations(iterations,
                                            compiled.temporal_fusion)
        require(leftover == 0,
                f"sharded execution requires iterations divisible by the "
                f"temporal fusion factor {compiled.temporal_fusion} "
                f"(got {iterations}); run the leftover sweeps on the "
                f"single-device executor")

        spec = self.resolve_spec(compiled)
        partition = self.partition(compiled)
        depth = partition.halo_depth
        radius = partition.radius
        # One ambient-context check up front: round/exchange/sweep spans are
        # recorded on this (round-loop) thread, which carries the trace
        # context — the shard pool threads never need it.
        trace = current_span()
        tracer = trace.tracer if trace is not None else None
        compile_start = time.perf_counter()
        phases = self._shard_phases(compiled, spec, partition)
        shard_compile_seconds = time.perf_counter() - compile_start
        if tracer is not None:
            tracer.record("shard_compile", compile_start,
                          compile_start + shard_compile_seconds, parent=trace,
                          shards=partition.n_shards, halo_depth=depth)

        itemsize = compiled.plan.dtype.itemsize
        recv_messages = partition.messages_per_shard()
        recv_elements = partition.received_elements_per_shard()
        shard_halo_seconds = [
            spec.exchange_seconds(elements * itemsize, messages)
            for elements, messages in zip(recv_elements, recv_messages)
        ] if partition.n_shards > 1 else [0.0]
        halo_seconds_per_exchange = max(shard_halo_seconds)
        interior_cells = [_interior_cells(partition, shard)
                          for shard in partition.shards]
        owned_cells = [math.prod(shard.out_shape)
                       for shard in partition.shards]

        # the initial halo ring is derived state under periodic/reflect —
        # fill it exactly like the single-device executor before extracting
        # the shard slabs; Dirichlet reads the grid as-is (extract and
        # assemble both copy, so no mutation escapes either way)
        if partition.boundary == "dirichlet":
            base = grid.data
        else:
            base = apply_boundary(grid.data.copy(), radius,
                                  partition.boundary)
        locals_ = partition.extract(base)
        shard_launches: List[List[LaunchResult]] = [[] for _ in phases]
        wall = compute_crit = memory_crit = 0.0
        halo_bytes = halo_seconds = exposed_seconds = dram_bytes = 0.0
        exchange_count = 0
        redundant_cells = 0

        # one pool for the whole run — per-sweep pool churn would dominate
        # at small shard sizes
        workers = self.max_workers if self.max_workers is not None \
            else default_workers(len(phases))
        pool = ThreadPoolExecutor(max_workers=workers) \
            if workers > 1 and len(phases) > 1 else None

        def sweep_all(mult: int) -> List[LaunchResult]:
            row = [shard_phases[mult] for shard_phases in phases]
            if pool is not None:
                return list(pool.map(
                    lambda pair: self._run_phase(pair[0], pair[1], radius),
                    zip(row, locals_)))
            return [self._run_phase(phase, local, radius)
                    for phase, local in zip(row, locals_)]

        try:
            sweep = 0
            first_round = True
            round_index = 0
            while sweep < sweeps:
                span = min(depth, sweeps - sweep)
                after_exchange = False
                round_span = None
                round_wall_before = wall
                if tracer is not None:
                    round_span = tracer.begin("round", parent=trace,
                                              round=round_index,
                                              sweeps_in_round=span)
                if not first_round:
                    # one exchange validates the whole round; nothing reads
                    # halos after the final sweep, so the last round's
                    # exchange is neither performed nor billed.  A single
                    # shard still refreshes its local faces (reflect
                    # mirrors, periodic self-wraps) but crosses no link, so
                    # nothing is counted
                    exchange_start = time.perf_counter()
                    exchanged = partition.exchange_halos(locals_)
                    if partition.n_shards > 1:
                        halo_bytes += exchanged * itemsize
                        halo_seconds += halo_seconds_per_exchange
                        exchange_count += 1
                        after_exchange = True
                        if tracer is not None:
                            tracer.record(
                                "halo_exchange", exchange_start,
                                time.perf_counter(), parent=round_span,
                                device_seconds=halo_seconds_per_exchange,
                                bytes=exchanged * itemsize,
                                overlap=self.overlap)
                for j in range(span):
                    mult = span - 1 - j
                    if j > 0:
                        # exchanged faces live off redundant compute inside a
                        # round, but reflect mirrors and periodic self-wraps
                        # are refreshed every sweep, like apply_boundary
                        partition.refresh_local_boundaries(locals_)
                    sweep_start = time.perf_counter()
                    results = sweep_all(mult)
                    sweep_end = time.perf_counter()
                    for launches, result in zip(shard_launches, results):
                        launches.append(result)
                    elapsed = [r.elapsed_seconds for r in results]
                    compute_crit += max(r.compute_seconds for r in results)
                    memory_crit += max(r.memory_seconds for r in results)
                    dram_bytes += sum(p[mult].dram_bytes for p in phases)
                    redundant_cells += sum(
                        p[mult].out_cells - owned
                        for p, owned in zip(phases, owned_cells))
                    if tracer is not None:
                        tracer.record("sweep", sweep_start, sweep_end,
                                      parent=round_span,
                                      device_seconds=max(elapsed),
                                      sweep=sweep + j, window_mult=mult)
                    if after_exchange and self.overlap:
                        # the exchange rides under the interior phase of the
                        # first sweep it validates; only the overflow (and
                        # the halo-dependent rim) extends the wall clock
                        step_wall = 0.0
                        for i, seconds in enumerate(elapsed):
                            cells = phases[i][mult].out_cells
                            share = min(interior_cells[i], cells) / cells \
                                if cells > 0 else 0.0
                            interior_sec = seconds * share
                            step_wall = max(
                                step_wall,
                                max(interior_sec, shard_halo_seconds[i])
                                + (seconds - interior_sec))
                        wall += step_wall
                        exposure = step_wall - max(elapsed)
                        exposed_seconds += exposure
                        if tracer is not None:
                            # modelled quantity, not a measured interval —
                            # zero host wall, the exposed time rides in
                            # device_seconds
                            tracer.record("overlap_exposed", sweep_end,
                                          sweep_end, parent=round_span,
                                          device_seconds=exposure,
                                          sweep=sweep + j, overlap=True)
                    elif after_exchange:
                        wall += max(elapsed) + halo_seconds_per_exchange
                        exposed_seconds += halo_seconds_per_exchange
                        if tracer is not None:
                            tracer.record("overlap_exposed", sweep_end,
                                          sweep_end, parent=round_span,
                                          device_seconds=(
                                              halo_seconds_per_exchange),
                                          sweep=sweep + j, overlap=False)
                    else:
                        wall += max(elapsed)
                    after_exchange = False
                sweep += span
                first_round = False
                round_index += 1
                if tracer is not None and round_span is not None:
                    round_span.add_device_seconds(wall - round_wall_before)
                    tracer.end(round_span)
        finally:
            if pool is not None:
                pool.shutdown()

        output = partition.assemble(locals_, base)
        # under periodic/reflect the single-device executor refreshes the
        # halo ring after the final sweep too; the fill is a pure function
        # of the interior, so applying it to the assembled output lands on
        # the bit-identical ring (no-op under Dirichlet)
        apply_boundary(output, radius, partition.boundary)

        shard_totals = [summarize_launches(launches)
                        for launches in shard_launches]
        all_launches = [r for launches in shard_launches for r in launches]
        overall = combine_utilization(
            [r.utilization for r in all_launches],
            [r.elapsed_seconds for r in all_launches])

        points = original_points(compiled, sweeps, 0)
        elapsed = wall
        gstencil, gflops = throughput_metrics(compiled, points, elapsed)
        overhead = dict(compiled.overhead_seconds)
        overhead["shard_compile"] = shard_compile_seconds

        return ShardedRunResult(
            output=output,
            iterations=iterations,
            elapsed_seconds=elapsed,
            compute_seconds=compute_crit,
            memory_seconds=memory_crit,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=overall,
            overhead_seconds=overhead,
            sweeps=sweeps,
            leftover_sweeps=0,
            points_updated=points,
            shard_grid=partition.shard_grid,
            shard_elapsed_seconds=tuple(t.elapsed_seconds
                                        for t in shard_totals),
            shard_utilization=tuple(t.utilization for t in shard_totals),
            halo_exchange_bytes=halo_bytes,
            halo_exchange_seconds=halo_seconds,
            halo_exposed_seconds=exposed_seconds,
            halo_exchange_count=exchange_count,
            halo_depth=depth,
            overlap=self.overlap,
            redundant_points_updated=float(redundant_cells)
            * compiled.temporal_fusion,
            device_traffic_bytes=dram_bytes,
            device_count=spec.device_count,
        )

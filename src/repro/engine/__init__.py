"""Execution-engine layer: how compiled stencils actually run.

The compile pipeline (:mod:`repro.core.pipeline`) stops at a
:class:`~repro.core.pipeline.CompiledStencil`; this package owns everything
after that:

* :mod:`repro.engine.base` — the ``plan -> gather B' -> MMA -> assemble``
  step API and the :class:`SweepExecutor` protocol;
* :mod:`repro.engine.single` — :class:`SingleDeviceExecutor`, the original
  one-grid-one-device sweep loop (what ``execute_compiled`` wraps), now with
  cross-sweep utilization aggregation and leftover-sweep support for
  iteration counts not divisible by the temporal-fusion factor;
* :mod:`repro.engine.sharded` — :class:`ShardedExecutor`, domain-decomposed
  execution across N simulated devices with communication-avoiding deep
  halos (exchange once per ``halo_depth`` sweeps), modelled compute/comm
  overlap, and the shared round-cost model (:func:`model_round` /
  :func:`model_schedule`) the scheduler and analysis layers price with —
  bit-identical to the single-device run at every depth.
"""

from repro.engine.base import (
    SweepContext,
    SweepExecutor,
    assemble_step,
    gather_step,
    mma_step,
    prepare_sweep,
    run_sweep,
)
from repro.engine.single import SingleDeviceExecutor, leftover_plan
from repro.engine.sharded import (
    HaloRoundModel,
    ShardedExecutor,
    ShardedRunResult,
    model_round,
    model_schedule,
    window_plan_seconds,
)

__all__ = [
    "SweepContext",
    "SweepExecutor",
    "prepare_sweep",
    "gather_step",
    "mma_step",
    "assemble_step",
    "run_sweep",
    "SingleDeviceExecutor",
    "leftover_plan",
    "HaloRoundModel",
    "ShardedExecutor",
    "ShardedRunResult",
    "model_round",
    "model_schedule",
    "window_plan_seconds",
]

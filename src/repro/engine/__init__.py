"""Execution-engine layer: how compiled stencils actually run.

The compile pipeline (:mod:`repro.core.pipeline`) stops at a
:class:`~repro.core.pipeline.CompiledStencil`; this package owns everything
after that:

* :mod:`repro.engine.base` — the ``plan -> gather B' -> MMA -> assemble``
  step API and the :class:`SweepExecutor` protocol;
* :mod:`repro.engine.single` — :class:`SingleDeviceExecutor`, the original
  one-grid-one-device sweep loop (what ``execute_compiled`` wraps), now with
  cross-sweep utilization aggregation and leftover-sweep support for
  iteration counts not divisible by the temporal-fusion factor;
* :mod:`repro.engine.sharded` — :class:`ShardedExecutor`, domain-decomposed
  execution across N simulated devices with per-sweep halo exchange,
  bit-identical to the single-device run.
"""

from repro.engine.base import (
    SweepContext,
    SweepExecutor,
    assemble_step,
    gather_step,
    mma_step,
    prepare_sweep,
    run_sweep,
)
from repro.engine.single import SingleDeviceExecutor, leftover_plan
from repro.engine.sharded import ShardedExecutor, ShardedRunResult

__all__ = [
    "SweepContext",
    "SweepExecutor",
    "prepare_sweep",
    "gather_step",
    "mma_step",
    "assemble_step",
    "run_sweep",
    "SingleDeviceExecutor",
    "leftover_plan",
    "ShardedExecutor",
    "ShardedRunResult",
]

"""Single-device executor: the original ``run_stencil`` loop as an engine.

This is the behaviour the monolithic loop in :mod:`repro.core.pipeline` used
to implement, expressed through the step API of :mod:`repro.engine.base`,
plus two fixes the step structure makes natural:

* utilization is aggregated across *all* sweeps (time-weighted) instead of
  keeping only the last sweep's report;
* ``iterations`` that are not a multiple of the temporal-fusion factor run
  the ``leftover`` plain sweeps :func:`repro.core.fusion.fused_iterations`
  already computes, with a plan compiled for the unfused pattern, instead of
  raising.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.fusion import fused_iterations
from repro.core.pipeline import (
    CompiledStencil,
    StencilRunResult,
    compile_cached,
)
from repro.engine.base import (
    original_points,
    prepare_sweep,
    run_sweep,
    summarize_launches,
    throughput_metrics,
)
from repro.obs.trace import current_span
from repro.stencils.boundary import apply_boundary
from repro.stencils.grid import Grid
from repro.tcu.executor import LaunchResult
from repro.tcu.spec import GPUSpec
from repro.util.validation import require, require_positive_int

__all__ = ["SingleDeviceExecutor", "leftover_plan"]

#: Serialises uncached leftover-plan compiles: concurrent executors sharing
#: one CompiledStencil (the batch service reuses plans across requests) must
#: not each pay the layout search for the same memo slot.
_LEFTOVER_MEMO_LOCK = threading.Lock()


def leftover_plan(compiled: CompiledStencil, cache=None) -> CompiledStencil:
    """Compile the *unfused* companion plan of a temporally fused stencil.

    The plan targets the same grid, device, precision, engine and fragment as
    ``compiled`` but implements a single time step of the original pattern —
    what the leftover sweeps of a non-divisible iteration count execute.
    ``cache`` (a :class:`repro.service.CompileCache`) shares the plan across
    compiled stencils; without one, the plan is memoised on ``compiled``
    itself so repeated runs of the same stencil still compile it only once.
    """
    require(compiled.temporal_fusion > 1,
            "leftover_plan only applies to temporally fused stencils")
    kwargs = dict(
        dtype=compiled.plan.dtype,
        spec=compiled.spec,
        engine=compiled.engine,
        fragment=compiled.plan.fragment,
        search=True,
        temporal_fusion=1,
        conversion_method=compiled.conversion_method,
        boundary=compiled.boundary,
        backend=compiled.backend,
    )
    if cache is not None:
        # the cache's own per-fingerprint locks dedupe concurrent compiles
        return compile_cached(compiled.original_pattern, compiled.grid_shape,
                              cache=cache, **kwargs)
    with _LEFTOVER_MEMO_LOCK:
        memoised = getattr(compiled, "_leftover_plan", None)
        if memoised is not None:
            return memoised
        plan = compile_cached(compiled.original_pattern, compiled.grid_shape,
                              **kwargs)
        # frozen dataclass: attach the memo without touching dataclass fields
        object.__setattr__(compiled, "_leftover_plan", plan)
        return plan


class SingleDeviceExecutor:
    """Run every sweep of a compiled stencil on one simulated device.

    Parameters
    ----------
    spec:
        Device the sweeps are costed on; defaults to the spec the stencil was
        compiled for.
    cache:
        Optional :class:`repro.service.CompileCache`, used to memoise the
        unfused leftover plan for non-divisible iteration counts.
    """

    def __init__(self, spec: Optional[GPUSpec] = None, cache=None) -> None:
        self.spec = spec
        self.cache = cache

    def execute(self, compiled: CompiledStencil, grid: Grid,
                iterations: int) -> StencilRunResult:
        require_positive_int(iterations, "iterations")
        require(tuple(grid.shape) == compiled.grid_shape,
                f"grid shape {tuple(grid.shape)} does not match the compiled "
                f"shape {compiled.grid_shape}")
        boundary = compiled.boundary
        require(grid.boundary == boundary,
                f"grid boundary {grid.boundary!r} does not match the "
                f"compiled boundary {boundary!r} — recompile for this grid")
        fused_sweeps, leftover = fused_iterations(
            iterations, compiled.temporal_fusion)

        current = grid.data.copy()
        launches: List[LaunchResult] = []

        # One ambient-context check up front: with no trace active the sweep
        # loops run exactly as before (a single None comparison per sweep).
        trace = current_span()
        tracer = trace.tracer if trace is not None else None

        def timed_sweep(context, phase: str, index: int) -> LaunchResult:
            if tracer is None:
                return run_sweep(context, current)
            start = time.perf_counter()
            launch = run_sweep(context, current)
            tracer.record("sweep", start, time.perf_counter(), parent=trace,
                          device_seconds=launch.elapsed_seconds,
                          phase=phase, sweep=index)
            return launch

        # The halo ring follows the boundary condition around every sweep
        # (a no-op under Dirichlet — under periodic / reflect the halo is
        # derived state, not data).  Each phase fills at its own plan's
        # radius on entry and after each sweep: the entry fill makes a
        # mixed fused+leftover run identical to running the fused sweeps
        # and the leftover sweeps as two separate calls (the fill is a
        # pure, idempotent function of the interior).
        if fused_sweeps:
            context = prepare_sweep(compiled, self.spec)
            apply_boundary(current, context.radius, boundary)
            for index in range(fused_sweeps):
                launches.append(timed_sweep(context, "fused", index))
                apply_boundary(current, context.radius, boundary)
        if leftover:
            context = prepare_sweep(leftover_plan(compiled, self.cache),
                                    self.spec)
            apply_boundary(current, context.radius, boundary)
            for index in range(leftover):
                launches.append(timed_sweep(context, "leftover", index))
                apply_boundary(current, context.radius, boundary)

        totals = summarize_launches(launches)
        points = original_points(compiled, fused_sweeps, leftover)
        elapsed = totals.elapsed_seconds
        gstencil, gflops = throughput_metrics(compiled, points, elapsed)

        return StencilRunResult(
            output=current,
            iterations=iterations,
            elapsed_seconds=elapsed,
            compute_seconds=totals.compute_seconds,
            memory_seconds=totals.memory_seconds,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=totals.utilization,
            overhead_seconds=dict(compiled.overhead_seconds),
            sweeps=len(launches),
            leftover_sweeps=leftover,
            points_updated=points,
        )

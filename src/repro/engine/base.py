"""Execution-engine core: the sweep step API and the executor protocol.

The compile side of the pipeline (:mod:`repro.core.pipeline`) produces a
:class:`~repro.core.pipeline.CompiledStencil`; *executing* it is the
engine layer's job.  One sweep decomposes into three steps, mirroring the
generated kernel's stages:

1. :func:`gather_step` — build ``B'`` from the current grid through the
   lookup tables and apply the conversion's row permutation;
2. :func:`mma_step` — issue the (sparse or dense) MMA on the simulated
   Tensor Cores, producing the functional result and the modelled timing;
3. :func:`assemble_step` — reassemble ``D`` into the grid interior (the
   halo ring is the *executor's* responsibility, per the plan's boundary
   condition).

:func:`prepare_sweep` precomputes everything the steps share for one plan;
executors (:class:`SweepExecutor` implementations) own the loop around the
steps — how many sweeps, on how many devices, with what halo movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.codegen import get_backend
from repro.core.lookup_table import gather_b_matrix
from repro.core.morphing import assemble_output
from repro.core.pipeline import CompiledStencil, StencilRunResult
from repro.stencils.grid import Grid
from repro.stencils.reference import stencil_points_updated
from repro.tcu.counters import combine_utilization
from repro.tcu.executor import KernelLaunch, LaunchResult, execute_launch
from repro.tcu.spec import GPUSpec
from repro.util.validation import require

__all__ = [
    "SweepContext",
    "SweepExecutor",
    "prepare_sweep",
    "gather_step",
    "mma_step",
    "assemble_step",
    "run_sweep",
    "summarize_launches",
    "original_points",
    "throughput_metrics",
]


@runtime_checkable
class SweepExecutor(Protocol):
    """Anything that can run a compiled stencil for a number of iterations.

    Implementations must preserve the functional contract of the original
    monolithic loop: interior cells advance by one (possibly fused) time step
    per sweep, halo cells follow the compiled plan's boundary condition
    (held fixed under Dirichlet, refreshed from the interior under
    ``periodic`` / ``reflect`` — see :mod:`repro.stencils.boundary`), and
    the returned :class:`~repro.core.pipeline.StencilRunResult` carries the
    modelled timing and utilization of the whole run.
    """

    def execute(self, compiled: CompiledStencil, grid: Grid,
                iterations: int) -> StencilRunResult:
        ...


@dataclass(frozen=True)
class SweepContext:
    """Precomputed per-plan state shared by every sweep of a run.

    ``sweep`` is the backend-specific sweep callable, bound once by
    :func:`prepare_sweep` from the plan's registered backend
    (:func:`repro.core.codegen.get_backend`); :func:`run_sweep` dispatches
    through it.
    """

    compiled: CompiledStencil
    spec: GPUSpec
    interior: Tuple[slice, ...]
    launch_name: str
    sweep: Callable[[np.ndarray], LaunchResult] = field(
        default=None, compare=False, repr=False)

    @property
    def plan(self):
        return self.compiled.plan

    @property
    def radius(self) -> int:
        return self.compiled.pattern.radius


def prepare_sweep(compiled: CompiledStencil,
                  spec: Optional[GPUSpec] = None) -> SweepContext:
    """Build the :class:`SweepContext` for one compiled plan.

    ``spec`` overrides the device the sweeps are costed on (the sharded
    executor runs each shard's plan against one device of its cluster);
    it defaults to the spec the stencil was compiled for.  The plan's
    backend is resolved here — once per run, not per sweep — and its sweep
    closure attached to the context.
    """
    radius = compiled.pattern.radius
    interior = tuple(slice(radius, s - radius) for s in compiled.grid_shape)
    context = SweepContext(
        compiled=compiled,
        spec=spec if spec is not None else compiled.spec,
        interior=interior,
        launch_name=f"sparstencil/{compiled.pattern.name}",
    )
    backend = get_backend(compiled.backend)
    # frozen dataclass: the sweep closure needs the context it is attached to
    object.__setattr__(context, "sweep", backend.make_sweep(context))
    return context


def gather_step(context: SweepContext, current: np.ndarray) -> np.ndarray:
    """Stage 1: gather ``B'`` through the LUTs and permute its rows."""
    plan = context.plan
    b_prime = gather_b_matrix(plan.lut, current)
    if plan.conversion is not None:
        return plan.conversion.apply_to_b(b_prime)
    return b_prime


def mma_step(context: SweepContext, b_operand: np.ndarray) -> LaunchResult:
    """Stage 2: run the fragment MMA on the simulated device."""
    plan = context.plan
    launch = KernelLaunch(
        name=context.launch_name,
        engine=plan.engine,
        a=plan.a_operand,
        b=b_operand,
        fragment=plan.fragment,
        dtype=plan.dtype,
        traffic=plan.estimate.traffic,
        threads_per_block=plan.threads_per_block,
        blocks=plan.blocks,
        registers_per_thread=plan.registers_per_thread,
    )
    return execute_launch(launch, context.spec)


def assemble_step(context: SweepContext, result: LaunchResult,
                  current: np.ndarray) -> None:
    """Stage 3: reassemble ``D`` into the grid interior, in place."""
    require(result.output is not None,
            f"launch {result.name!r} produced no functional output")
    output_grid = assemble_output(result.output, context.compiled.geometry())
    current[context.interior] = output_grid


def run_sweep(context: SweepContext, current: np.ndarray) -> LaunchResult:
    """One full sweep, updating ``current`` in place.

    Dispatches to the backend closure bound at :func:`prepare_sweep` time.
    Under the default ``"tcu-sim"`` backend this is exactly the
    ``gather B' -> MMA -> assemble`` sequence of :func:`gather_step` /
    :func:`mma_step` / :func:`assemble_step`; other backends substitute
    their own host implementation while preserving the interior-update
    contract.
    """
    return context.sweep(current)


@dataclass(frozen=True)
class _LaunchTotals:
    elapsed_seconds: float
    compute_seconds: float
    memory_seconds: float
    utilization: object


def summarize_launches(results: Sequence[LaunchResult]) -> _LaunchTotals:
    """Sum modelled times and aggregate utilization across launches.

    Utilization is weighted by each launch's elapsed time, so a run mixing
    fused and leftover sweeps (or differently sized shards) reports the
    counters an NCU capture over the whole run would.
    """
    results = list(results)
    require(len(results) > 0, "summarize_launches needs at least one launch")
    return _LaunchTotals(
        elapsed_seconds=sum(r.elapsed_seconds for r in results),
        compute_seconds=sum(r.compute_seconds for r in results),
        memory_seconds=sum(r.memory_seconds for r in results),
        utilization=combine_utilization(
            [r.utilization for r in results],
            [r.elapsed_seconds for r in results]),
    )


def original_points(compiled: CompiledStencil, fused_sweeps: int,
                    leftover_sweeps: int) -> float:
    """Original-resolution stencil updates for a mixed fused/plain run."""
    points = 0.0
    if fused_sweeps:
        points += (stencil_points_updated(compiled.pattern,
                                          compiled.grid_shape, fused_sweeps)
                   * compiled.temporal_fusion)
    if leftover_sweeps:
        points += stencil_points_updated(compiled.original_pattern,
                                         compiled.grid_shape, leftover_sweeps)
    return float(points)


def throughput_metrics(compiled: CompiledStencil, points: float,
                       elapsed_seconds: float) -> Tuple[float, float]:
    """``(GStencil/s, GFlops/s)`` of a run — Eq. 12 and the Table-3 metric.

    Shared by every executor so the throughput definition cannot diverge
    between the single-device and sharded paths.
    """
    if elapsed_seconds <= 0.0:
        return 0.0, 0.0
    gstencil = points / elapsed_seconds / 1e9
    flops = 2.0 * compiled.original_pattern.points * points
    return gstencil, flops / elapsed_seconds / 1e9

"""The session layer's typed vocabulary: ``Problem`` → ``Solution``.

Every execution mode the reproduction has grown — single-device, sharded
multi-device, the online server, and the baseline comparators — historically
took its own argument convention.  The session API gives them one:

* :class:`Problem` — *what* to solve: a stencil pattern, a grid, an
  iteration count, the compile options and an optional attribution tag.
  This is the canonical request type; :class:`repro.service.SolveRequest`
  is a deprecated alias of it.
* :class:`SolvePolicy` — *how* to solve it: the routing mode
  (``auto | single | sharded | served | baseline:<name>``), a deadline,
  the device/shard spec and batching hints.
* :class:`Solution` — *what happened*: the output and run metrics, the
  compiled plan and its fingerprint, and a :class:`Provenance` record of
  which engine actually executed and why.

This module deliberately imports nothing heavyweight from the package at
module level, so the lower layers (the batch service, the server queue) can
share the vocabulary without import cycles.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "SOLVE_MODES",
    "BASELINE_MODE_PREFIX",
    "split_mode",
    "Problem",
    "SolvePolicy",
    "Provenance",
    "Solution",
]

#: Routing modes the session resolves itself; ``baseline:<name>`` is open
#: (any registered comparator), and custom modes may be added through the
#: :class:`repro.session.registry.ExecutorRegistry`.
SOLVE_MODES = ("auto", "single", "sharded", "served")

BASELINE_MODE_PREFIX = "baseline:"


def split_mode(mode: str) -> Tuple[str, Optional[str]]:
    """``(kind, baseline_name)`` of a policy mode string.

    ``"auto" -> ("auto", None)``; ``"baseline:cudnn" -> ("baseline",
    "cudnn")``.  Unknown plain modes pass through as ``(mode, None)`` so
    custom executors registered on an :class:`ExecutorRegistry` stay
    reachable; the registry raises on genuinely unknown names.
    """
    from repro.util.validation import require

    require(isinstance(mode, str) and mode != "", "mode must be a non-empty string")
    if mode.startswith(BASELINE_MODE_PREFIX):
        name = mode[len(BASELINE_MODE_PREFIX):]
        require(name != "", "baseline mode needs a method name, e.g. 'baseline:cudnn'")
        return "baseline", name
    return mode, None


@dataclass
class Problem:
    """One unit of stencil work, independent of *how* it will execute.

    ``options`` takes the same keyword arguments as
    :func:`repro.compile_stencil` (dtype, spec, engine, temporal_fusion, ...).
    ``dtype`` may also be passed directly as a convenience; it is folded into
    ``options`` at construction.  ``tag`` is the attribution label carried
    through every execution path into the result
    (:attr:`repro.core.pipeline.StencilRunResult.tag`,
    :meth:`repro.service.BatchReport.by_tag`).
    """

    pattern: Optional["Any"] = None  # repro.stencils.pattern.StencilPattern
    grid: "Any" = None               # repro.stencils.grid.Grid
    iterations: int = 0
    options: Dict[str, Any] = field(default_factory=dict)
    tag: Optional[str] = None
    dtype: InitVar[Optional[Any]] = None
    program: Optional["Any"] = None  # repro.programs.StencilProgram

    def __post_init__(self, dtype: Optional[Any]) -> None:
        from repro.util.validation import require, require_positive_int

        self.options = dict(self.options)
        if dtype is not None:
            self.options.setdefault("dtype", dtype)
        require((self.pattern is None) != (self.program is None),
                "a Problem takes exactly one of pattern= or program=")
        require(self.grid is not None, "a Problem needs a grid")
        require_positive_int(self.iterations, "iterations")

    @property
    def is_program(self) -> bool:
        """Whether this problem is a multi-stage
        :class:`~repro.programs.StencilProgram` rather than a single
        pattern."""
        return self.program is not None

    def compile_request(self) -> "Any":
        """The canonical, fingerprinted compile request of this problem.

        The grid's boundary condition is folded into the compile options
        (and thereby the fingerprint); an explicit ``options["boundary"]``
        must agree with the grid — a plan compiled for one boundary can
        never serve a grid with another.
        """
        from repro.service.fingerprint import CompileRequest
        from repro.stencils.boundary import normalize_boundary
        from repro.util.validation import require

        require(not self.is_program,
                "a program Problem has no single compile request — compile "
                "it with repro.programs.compile_program (or let the session "
                "route it)")
        options = dict(self.options)
        grid_boundary = normalize_boundary(
            getattr(self.grid, "boundary", None))
        boundary = normalize_boundary(
            options.setdefault("boundary", grid_boundary))
        require(boundary == grid_boundary,
                f"options boundary {boundary!r} conflicts with the grid's "
                f"boundary {grid_boundary!r}")
        return CompileRequest.build(
            self.pattern, tuple(self.grid.shape), **options)

    @property
    def boundary(self) -> str:
        """The problem's boundary condition (carried on its grid)."""
        from repro.stencils.boundary import normalize_boundary

        return normalize_boundary(getattr(self.grid, "boundary", None))

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        return tuple(self.grid.shape)

    def describe(self) -> str:
        what = (f"program {self.program.name!r} "
                f"({len(self.program.stages)} stages)"
                if self.is_program else self.pattern.name)
        return (f"{what} on {self.grid_shape} "
                f"x{self.iterations} iterations"
                + (f" [{self.tag}]" if self.tag else ""))


@dataclass(frozen=True)
class SolvePolicy:
    """How a :class:`Problem` should be routed and executed.

    Attributes
    ----------
    mode:
        ``"auto"`` (the session's perf/partition model picks single vs
        sharded), ``"single"``, ``"sharded"``, ``"served"`` (through the
        session's online server), ``"baseline:<name>"`` (any registered
        comparator), or a custom mode registered on the session's
        :class:`~repro.session.registry.ExecutorRegistry`.
    deadline_seconds:
        Served-mode deadline (admission + queue wait); ignored by the
        synchronous executors, which cannot abandon work mid-run.
    devices:
        Device override for sharded execution: an int shard/device count or a
        :class:`repro.tcu.spec.MultiDeviceSpec`.  Defaults to the session's
        pool.
    shard_grid:
        Optional shards-per-axis override for sharded execution.
    halo_depth:
        Communication-avoiding halo depth for sharded execution: ghost
        regions deep enough that one halo exchange validates ``halo_depth``
        consecutive sweeps (the intervening sweeps recompute the ghost zone
        redundantly).  ``None`` defers to the route: the classic depth 1
        for an explicit ``"sharded"`` solve, the scheduler's modelled best
        depth under ``"auto"``.  Clamped to what the partition geometry
        supports.
    overlap:
        Whether sharded execution overlaps halo exchange with interior
        compute (``max(interior, exchange) + rim`` per post-exchange sweep
        in the modelled timeline).
    max_workers:
        Thread-pool width override for sharded sweeps / batched compiles.
    window_seconds / max_batch_size:
        Served-mode batching hints, applied when the session first
        materialises its server (a live server's coalescer is not
        reconfigured per request).
    backend:
        Execution backend override (a registered name from
        :mod:`repro.core.codegen`, e.g. ``"tcu-sim"`` or ``"numpy"``).
        ``None`` defers to the problem's ``options["backend"]``, then the
        ``REPRO_BACKEND`` environment default.  An explicit policy backend
        that conflicts with the problem's own option is an error — two
        layers silently disagreeing about numerics must not pick a winner.
    """

    mode: str = "auto"
    deadline_seconds: Optional[float] = None
    devices: Optional[Any] = None
    shard_grid: Optional[Tuple[int, ...]] = None
    halo_depth: Optional[int] = None
    overlap: bool = True
    max_workers: Optional[int] = None
    window_seconds: Optional[float] = None
    max_batch_size: Optional[int] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        split_mode(self.mode)  # validates the shape of the mode string

    @property
    def mode_kind(self) -> str:
        return split_mode(self.mode)[0]

    @property
    def baseline_name(self) -> Optional[str]:
        return split_mode(self.mode)[1]


@dataclass(frozen=True)
class Provenance:
    """Which engine actually ran a problem, and why.

    ``executor`` is the registry key that executed (``"single"``,
    ``"sharded"``, ``"served"``, ``"baseline:<name>"``); ``delegate`` is the
    executor a *served* request was ultimately routed to by the server's
    scheduler.  ``engine`` is the device engine of the compiled plan
    (``"sparse_mma"`` / ``"dense_mma"``) or the baseline's display name.
    ``boundary`` records the boundary condition the run was executed (and
    its plan compiled) under.  ``backend`` records the execution backend
    the plan's sweeps ran on (:mod:`repro.core.codegen`; empty for
    baseline comparators, which never touch the SparStencil pipeline).
    ``trace_id`` links the solution to its spans when the session solved it
    under an enabled :class:`repro.obs.Tracer` (empty otherwise) — any
    served answer is auditable back to its queue-wait/compile/sweep spans.

    For program problems (:class:`~repro.programs.StencilProgram`),
    ``stage_fingerprints`` lists every stage tap's compile fingerprint in
    execution order (``"stage:fingerprint"`` strings; multi-tap stages
    contribute one entry per tap) and ``fusion_groups`` records the fusion
    decision the run executed — the stage names sharing each halo exchange
    (singleton groups on the single-device path, where no exchange exists
    to fuse).  Both stay empty for plain pattern problems.
    """

    mode_requested: str
    executor: str
    engine: str
    devices: int
    reason: str
    batch_size: int = 1
    delegate: Optional[str] = None
    boundary: str = "dirichlet"
    backend: str = "tcu-sim"
    trace_id: str = ""
    stage_fingerprints: Tuple[str, ...] = ()
    fusion_groups: Tuple[Tuple[str, ...], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode_requested": self.mode_requested,
            "executor": self.executor,
            "engine": self.engine,
            "devices": self.devices,
            "reason": self.reason,
            "batch_size": self.batch_size,
            "delegate": self.delegate,
            "boundary": self.boundary,
            "backend": self.backend,
            "trace_id": self.trace_id,
            "stage_fingerprints": list(self.stage_fingerprints),
            "fusion_groups": [list(group) for group in self.fusion_groups],
        }


@dataclass(frozen=True)
class Solution:
    """The uniform outcome of solving one :class:`Problem`.

    Attributes
    ----------
    result:
        The execution-layer result: a
        :class:`~repro.core.pipeline.StencilRunResult`, a
        :class:`~repro.engine.ShardedRunResult`, or a
        :class:`~repro.baselines.base.BaselineResult` for baseline modes.
    compiled:
        The SparStencil plan that ran (``None`` for baseline comparators,
        which own their cost models end to end).
    fingerprint:
        Canonical compile fingerprint of the problem (empty when the problem
        is not expressible as a SparStencil compile, or for precompiled plans
        whose original request is unknown).
    provenance:
        The :class:`Provenance` record: which engine ran, on how many
        devices, and why the router chose it.
    """

    result: "Any"
    compiled: Optional["Any"]
    fingerprint: str
    provenance: Provenance
    tag: Optional[str] = None

    @property
    def output(self) -> "Any":
        return self.result.output

    @property
    def elapsed_seconds(self) -> float:
        return self.result.elapsed_seconds

    @property
    def gstencil_per_second(self) -> float:
        return self.result.gstencil_per_second

    @property
    def utilization(self) -> "Any":
        return self.result.utilization

    def summary(self) -> Dict[str, Any]:
        """Flat dict for telemetry sinks and benchmark envelopes."""
        summary: Dict[str, Any] = {
            "tag": self.tag,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.result.elapsed_seconds,
            "gstencil_per_second": self.result.gstencil_per_second,
            "iterations": self.result.iterations,
        }
        summary.update(self.provenance.as_dict())
        return summary

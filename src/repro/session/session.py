"""The :class:`StencilSession` facade: one typed front door over every engine.

A session owns the resources every execution mode shares — the compile
cache, the device pool (and its occupancy-aware scheduler), the executor
registry and, lazily, an online :class:`~repro.server.facade.StencilServer`
— and exposes one call::

    with StencilSession(devices=4) as session:
        solution = session.solve(Problem(pattern, grid, iterations=8))
        print(solution.provenance.executor, solution.gstencil_per_second)

``SolvePolicy(mode="auto")`` (the default) routes through the existing
perf/partition model: latency-bound problems stay on one device, large grids
shard across the pool, and the decision is recorded in
:attr:`Solution.provenance`.  Explicit modes (``single``, ``sharded``,
``served``, ``baseline:<name>``) pin the engine instead.

The five legacy entry points (``run_stencil``, ``sparstencil_solve``,
``solve_many``, ``solve_sharded``, ``StencilServer.submit``) are
deprecation-warning shims over :func:`default_session`, so old and new code
share a single execution path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.scheduler import DevicePoolScheduler, RoutingDecision
from repro.service.cache import CompileCache
from repro.session.problem import Problem, Provenance, Solution, SolvePolicy
from repro.session.registry import (
    BaselineSessionExecutor,
    ExecutorRegistry,
    default_registry,
)
from repro.tcu.spec import MultiDeviceSpec
from repro.util.validation import require

__all__ = [
    "SessionConfig",
    "StencilSession",
    "default_session",
    "reset_default_session",
]

#: Sentinel distinguishing "use the session cache" from an explicit ``None``
#: (= no caching), which the legacy shims rely on to preserve exact
#: cache-statistics semantics.
_UNSET: Any = object()


@dataclass
class SessionConfig:
    """Everything a :class:`StencilSession` is constructed from.

    Attributes
    ----------
    devices:
        The device pool: a :class:`repro.tcu.spec.MultiDeviceSpec` or a bare
        device count (N simulated A100s on NVLink).
    cache / cache_capacity / persist_dir:
        An injected :class:`~repro.service.cache.CompileCache`, or the
        capacity (and optional persistence directory) of the session-owned
        one built when none is injected.
    min_speedup / max_halo_fraction / halo_depth / overlap:
        The ``auto``-routing thresholds and communication-avoiding knobs
        (see :class:`~repro.server.scheduler.DevicePoolScheduler`);
        ``halo_depth=None`` lets the scheduler search for the cheapest
        modelled depth per routing decision.
    max_workers:
        Default thread-pool width for sharded sweeps and batched compiles.
    queue_bound / window_seconds / max_batch_size / default_deadline_seconds:
        Served-mode tunables, applied when the session materialises its
        online server.
    telemetry:
        Optional sink called with one flat dict per completed solve /
        batch — the session-level analogue of
        :class:`~repro.server.telemetry.ServerTelemetry`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When enabled, every solve
        opens a root span, the executors/cache/engines attach their spans
        under it, and :attr:`Solution.provenance.trace_id` records which
        trace the answer belongs to.  Defaults to the shared disabled
        tracer (:data:`repro.obs.NULL_TRACER`), a zero-overhead no-op.
    """

    devices: Union[MultiDeviceSpec, int] = 1
    cache: Optional[CompileCache] = None
    cache_capacity: int = 128
    persist_dir: Optional[str] = None
    min_speedup: float = 1.25
    max_halo_fraction: float = 0.25
    halo_depth: Optional[int] = None
    overlap: bool = True
    max_workers: Optional[int] = None
    queue_bound: int = 128
    window_seconds: float = 0.002
    max_batch_size: int = 16
    default_deadline_seconds: Optional[float] = None
    telemetry: Optional[Callable[[Dict[str, Any]], None]] = None
    tracer: Optional[Tracer] = None


class StencilSession:
    """Typed ``Problem -> Solution`` front door over every execution engine.

    Parameters
    ----------
    config:
        A :class:`SessionConfig`; keyword overrides may be passed directly
        (``StencilSession(devices=4)``) or on top of a config.
    registry:
        Optional :class:`~repro.session.registry.ExecutorRegistry`; defaults
        to the built-in single/sharded/served (+ dynamic baseline) table.
    """

    def __init__(self, config: Optional[SessionConfig] = None, *,
                 registry: Optional[ExecutorRegistry] = None,
                 **overrides: Any) -> None:
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config

        pool = config.devices
        if isinstance(pool, (int, np.integer)):
            pool = MultiDeviceSpec(device_count=int(pool))
        require(isinstance(pool, MultiDeviceSpec),
                f"devices must be a MultiDeviceSpec or a device count, "
                f"got {type(config.devices).__name__}")
        self.pool = pool

        self.cache = config.cache if config.cache is not None else CompileCache(
            capacity=config.cache_capacity, persist_dir=config.persist_dir)
        self.scheduler = DevicePoolScheduler(
            pool, min_speedup=config.min_speedup,
            max_halo_fraction=config.max_halo_fraction,
            halo_depth=config.halo_depth, overlap=config.overlap)
        self.registry = registry if registry is not None else default_registry()
        self.tracer = config.tracer if config.tracer is not None \
            else NULL_TRACER

        self._server: Optional[Any] = None
        self._server_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # the front door
    # ------------------------------------------------------------------ #
    def solve(self, problem: Problem, policy: Optional[SolvePolicy] = None, *,
              cache: Any = _UNSET, **policy_overrides: Any) -> Solution:
        """Solve one problem under a policy; returns a :class:`Solution`.

        ``policy`` may be omitted and built from keyword overrides
        (``session.solve(problem, mode="sharded", devices=2)``).  ``cache``
        overrides the session cache for this call only — ``None`` disables
        caching entirely, which is what the legacy shims use to keep their
        original cache-statistics semantics.  ``mode="served"`` always
        executes through the session cache (the server compiled into it)
        and rejects per-call cache overrides.
        """
        require(isinstance(problem, Problem),
                f"solve() takes a Problem, got {type(problem).__name__}")
        if policy is None:
            policy = SolvePolicy(**policy_overrides)
        elif policy_overrides:
            policy = replace(policy, **policy_overrides)
        problem = self._apply_backend_policy(problem, policy)
        call_cache = self.cache if cache is _UNSET else cache

        # Root span of the request: everything below — routing, compiles,
        # queueing, engine sweeps — attaches under it through the ambient
        # context, and the trace id is stamped into the provenance so the
        # answer stays auditable back to its spans.
        with self.tracer.span(
                "solve",
                pattern=(f"program:{problem.program.name}"
                         if problem.is_program else problem.pattern.name),
                grid_shape=problem.grid_shape,
                iterations=problem.iterations,
                mode_requested=policy.mode, tag=problem.tag) as root_span:
            mode_requested = policy.mode
            compiled = None
            compile_request = None
            reason = ""
            mode = policy.mode
            if problem.is_program:
                # program problems always route through the program
                # executor, which resolves auto/single/sharded itself
                mode = "program"
            elif mode == "auto":
                compile_request = problem.compile_request()
                compiled = call_cache.get_or_compile(compile_request) \
                    if call_cache is not None else compile_request.compile()
                decision = self.decide(problem, compiled=compiled)
                mode = decision.executor
                reason = decision.reason
                if decision.sharded:
                    if policy.devices is None:
                        policy = replace(
                            policy, devices=self.scheduler.spec_for(
                                decision, compiled))
                    if policy.halo_depth is None:
                        # run at the depth the routing model priced
                        policy = replace(policy,
                                         halo_depth=decision.halo_depth,
                                         overlap=decision.overlap)

            executor = self.registry.create(mode)
            solution = executor.solve(
                self, problem, policy, cache=call_cache, compiled=compiled,
                compile_request=compile_request,
                mode_requested=mode_requested, reason=reason)
            root_span.set(executor=solution.provenance.executor,
                          devices=solution.provenance.devices,
                          reason=solution.provenance.reason)
            root_span.add_device_seconds(solution.result.elapsed_seconds)
            if root_span.trace_id:
                solution = replace(
                    solution,
                    provenance=replace(solution.provenance,
                                       trace_id=root_span.trace_id))
        self._emit({"event": "solve", **solution.summary()})
        return solution

    def solve_batch(self, problems: Sequence[Problem], *,
                    cache: Any = _UNSET,
                    max_workers: Optional[int] = None,
                    compile_requests: Optional[Sequence[Any]] = None) -> Any:
        """Solve a heterogeneous batch: compile each distinct plan once,
        sweep every problem (see :class:`repro.service.BatchReport`).

        ``cache=None`` reproduces the legacy ``solve_many`` behaviour of a
        private per-batch cache; by default the session cache is shared.
        """
        with self.tracer.span("solve_batch", requests=len(problems)):
            report = self.execute_batch(problems, cache=cache,
                                        max_workers=max_workers,
                                        compile_requests=compile_requests)
        self._emit({"event": "solve_batch", **report.summary()})
        return report

    def run(self, compiled: Any, grid: Any, iterations: int, *,
            cache: Any = _UNSET, tag: Optional[str] = None) -> Solution:
        """Execute an already-compiled plan on one device.

        The precompiled analogue of ``solve(mode="single")`` — what the
        legacy ``run_stencil`` shim delegates to.  The original compile
        request is unknown here, so :attr:`Solution.fingerprint` is empty.
        """
        with self.tracer.span("run", iterations=iterations,
                              tag=tag) as root_span:
            result = self.execute_plan(compiled, grid, iterations,
                                       cache=cache)
            root_span.add_device_seconds(result.elapsed_seconds)
            trace_id = root_span.trace_id
        if tag is not None:
            result = replace(result, tag=tag)
        solution = Solution(
            result=result,
            compiled=compiled,
            fingerprint="",
            provenance=Provenance(
                mode_requested="single",
                executor="single",
                engine=compiled.engine,
                devices=1,
                reason="precompiled plan executed directly",
                boundary=compiled.boundary,
                backend=compiled.backend,
                trace_id=trace_id),
            tag=tag)
        self._emit({"event": "run", **solution.summary()})
        return solution

    def solve_baseline(self, problem: Problem, baseline: Any) -> Solution:
        """Run a comparator instance (or registry key) on ``problem`` —
        the hook :func:`repro.analysis.compare_methods` routes through."""
        executor = BaselineSessionExecutor(baseline)
        solution = executor.solve(
            self, problem, SolvePolicy(mode=executor.name), cache=self.cache)
        self._emit({"event": "solve", **solution.summary()})
        return solution

    @staticmethod
    def _apply_backend_policy(problem: Problem, policy: SolvePolicy) -> Problem:
        """Fold ``policy.backend`` into the problem's compile options.

        The backend joins the compile fingerprint, so it must reach the
        options *before* any compile/cache lookup.  An explicit option that
        disagrees with the policy is an error — two layers silently
        disagreeing about numerics must not pick a winner.
        """
        if policy.backend is None:
            return problem
        existing = problem.options.get("backend")
        require(existing is None or existing == policy.backend,
                f"options backend {existing!r} conflicts with the policy "
                f"backend {policy.backend!r}")
        if existing == policy.backend:
            return problem
        rebound = Problem(problem.pattern, problem.grid, problem.iterations,
                          options=dict(problem.options), tag=problem.tag,
                          program=problem.program)
        rebound.options["backend"] = policy.backend
        return rebound

    # ------------------------------------------------------------------ #
    # routing / resources
    # ------------------------------------------------------------------ #
    def decide(self, problem: Problem, *,
               compiled: Any = None) -> RoutingDecision:
        """The ``auto``-mode routing decision for ``problem`` against the
        full pool (direct solves do not lease devices; the served path
        decides against live occupancy instead)."""
        if compiled is None:
            compiled = self.compile(problem)
        if problem.is_program:
            return self.scheduler.decide_program(
                compiled, problem.iterations,
                free_devices=self.pool.device_count)
        return self.scheduler.decide(compiled, problem.iterations,
                                     free_devices=self.pool.device_count)

    def check(self, problem: Problem, policy: Optional[SolvePolicy] = None,
              **policy_overrides: Any) -> Any:
        """Pre-flight ``problem`` without sweeping: the Tier-1 diagnostics.

        Runs the :mod:`repro.lint` domain analyzers against this session's
        scheduler and compile cache and returns a
        :class:`~repro.lint.DiagnosticReport`.  The report never executes a
        sweep — the one compile it may trigger goes through the session
        cache, so a subsequent :meth:`solve` reuses it for free.  Accepts
        the same policy spelling as :meth:`solve`
        (``session.check(problem, mode="sharded", devices=4)``).
        """
        from repro.lint.domain import check_problem

        require(isinstance(problem, Problem),
                f"check() takes a Problem, got {type(problem).__name__}")
        if policy is None:
            policy = SolvePolicy(**policy_overrides)
        elif policy_overrides:
            policy = replace(policy, **policy_overrides)
        return check_problem(problem, policy,
                             scheduler=self.scheduler, cache=self.cache,
                             devices=self.pool.device_count)

    def compile(self, problem: Problem) -> Any:
        """Compile (or fetch) the plan for ``problem`` through the cache.

        Program problems compile stage by stage into a
        :class:`~repro.programs.ProgramPlan`; plain pattern problems into a
        :class:`~repro.core.pipeline.CompiledStencil`.
        """
        if problem.is_program:
            from repro.programs import compile_program

            return compile_program(problem.program, problem.grid, self.cache,
                                   options=dict(problem.options))
        return self.cache.get_or_compile(problem.compile_request())

    def server(self, *, window_seconds: Optional[float] = None,
               max_batch_size: Optional[int] = None) -> Any:
        """The session's online server, materialised on first use.

        The batching hints apply only at creation — a live coalescer is not
        reconfigured per request.
        """
        with self._server_lock:
            if self._server is None:
                from repro.server.facade import ServerConfig, StencilServer

                config = self.config
                server_config = ServerConfig(
                    queue_bound=config.queue_bound,
                    window_seconds=window_seconds if window_seconds is not None
                    else config.window_seconds,
                    max_batch_size=max_batch_size if max_batch_size is not None
                    else config.max_batch_size,
                    max_workers=config.max_workers,
                    default_deadline_seconds=config.default_deadline_seconds,
                    min_speedup=config.min_speedup,
                    max_halo_fraction=config.max_halo_fraction,
                    halo_depth=config.halo_depth,
                    overlap=config.overlap,
                    cache_capacity=config.cache_capacity)
                self._server = StencilServer(session=self,
                                             config=server_config)
            return self._server

    # ------------------------------------------------------------------ #
    # engine plumbing shared with the server facade
    # ------------------------------------------------------------------ #
    def execute_batch(self, problems: Sequence[Problem], *,
                      cache: Any = _UNSET,
                      max_workers: Optional[int] = None,
                      compile_requests: Optional[Sequence[Any]] = None) -> Any:
        """:meth:`solve_batch` without the session telemetry event — the
        server's micro-batches land here, so their requests are counted by
        the *server's* telemetry only (a served solve otherwise double-emits
        at the session level, and only on single-device routes)."""
        from repro.service.batch import execute_batch

        return execute_batch(
            problems,
            cache=self.cache if cache is _UNSET else cache,
            max_workers=max_workers if max_workers is not None
            else self.config.max_workers,
            compile_requests=compile_requests)

    def execute_plan(self, compiled: Any, grid: Any, iterations: int, *,
                     cache: Any = _UNSET) -> Any:
        """Single-device engine call on a precompiled plan (no Solution
        wrapping) — the micro-batch path of the server funnels through
        this, so served and direct execution share one code path."""
        from repro.engine.single import SingleDeviceExecutor

        call_cache = self.cache if cache is _UNSET else cache
        return SingleDeviceExecutor(cache=call_cache).execute(
            compiled, grid, iterations)

    def execute_sharded_plan(self, compiled: Any, grid: Any, iterations: int,
                             *, devices: Any, cache: Any = _UNSET,
                             halo_depth: int = 1,
                             overlap: bool = True) -> Any:
        """Sharded engine call on a precompiled plan (no Solution wrapping)."""
        from repro.engine.sharded import ShardedExecutor

        call_cache = self.cache if cache is _UNSET else cache
        executor = ShardedExecutor(devices, cache=call_cache,
                                   max_workers=self.config.max_workers,
                                   halo_depth=halo_depth, overlap=overlap)
        return executor.execute(compiled, grid, iterations)

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, Any]:
        """Cache, pool and (when materialised) server metrics."""
        with self._server_lock:
            server = self._server
        return {
            "cache": self.cache.snapshot_stats().as_dict(),
            "devices": {"device_count": self.pool.device_count,
                        "pool": self.pool.name},
            "server": server.metrics() if server is not None else None,
        }

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The process-wide unified registry (every cache/ledger/server
        telemetry instance re-registers into it); one
        :meth:`~repro.obs.MetricsRegistry.snapshot` covers the system."""
        return global_registry()

    def close(self) -> None:
        """Shut down the session's server (if one was materialised).
        Idempotent; the cache outlives the session on purpose."""
        with self._server_lock:
            server, self._server = self._server, None
        if server is not None:
            server.shutdown()

    def __enter__(self) -> "StencilSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _emit(self, event: Dict[str, Any]) -> None:
        sink = self.config.telemetry
        if sink is not None:
            sink(event)


# ---------------------------------------------------------------------- #
# the default session (what the legacy shims delegate to)
# ---------------------------------------------------------------------- #
_DEFAULT_SESSION: Optional[StencilSession] = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> StencilSession:
    """The process-wide session backing the legacy shims.

    Single-device pool (legacy callers spell sharding explicitly) and a
    standard cache; created on first use.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = StencilSession()
        return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Drop (and close) the default session — test isolation hook."""
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        session, _DEFAULT_SESSION = _DEFAULT_SESSION, None
    if session is not None:
        session.close()

"""Session layer: the unified ``Problem -> Solution`` front door.

One typed surface over every execution mode the reproduction has —
single-device, sharded multi-device, the online server and the baseline
comparators::

    from repro import Problem, StencilSession

    with StencilSession(devices=4) as session:
        solution = session.solve(Problem(pattern, grid, iterations=8))
        print(solution.provenance.executor)   # "single" or "sharded"

* :mod:`repro.session.problem` — the vocabulary: :class:`Problem`,
  :class:`SolvePolicy`, :class:`Solution`, :class:`Provenance`;
* :mod:`repro.session.registry` — the :class:`ExecutorRegistry` mapping
  policy modes to engines;
* :mod:`repro.session.session` — :class:`StencilSession`,
  :class:`SessionConfig` and the :func:`default_session` the legacy shims
  delegate to.

Only the vocabulary is imported eagerly (the lower service layer shares it);
the facade loads on first attribute access, which keeps
``repro.service.batch`` → ``repro.session.problem`` cycle-free.
"""

from repro.session.problem import (
    Problem,
    Provenance,
    Solution,
    SolvePolicy,
    split_mode,
)

__all__ = [
    "Problem",
    "SolvePolicy",
    "Provenance",
    "Solution",
    "split_mode",
    "SessionExecutor",
    "ExecutorRegistry",
    "default_registry",
    "SessionConfig",
    "StencilSession",
    "default_session",
    "reset_default_session",
]

_LAZY = {
    "SessionExecutor": "repro.session.registry",
    "ExecutorRegistry": "repro.session.registry",
    "default_registry": "repro.session.registry",
    "BaselineSessionExecutor": "repro.session.registry",
    "SingleDeviceSessionExecutor": "repro.session.registry",
    "ShardedSessionExecutor": "repro.session.registry",
    "ServedSessionExecutor": "repro.session.registry",
    "ProgramSessionExecutor": "repro.session.registry",
    "SessionConfig": "repro.session.session",
    "StencilSession": "repro.session.session",
    "default_session": "repro.session.session",
    "reset_default_session": "repro.session.session",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

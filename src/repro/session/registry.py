"""Executor registry: how a :class:`StencilSession` reaches each engine.

Every execution mode is a :class:`SessionExecutor` — one object that turns a
``(Problem, SolvePolicy)`` pair into a :class:`~repro.session.problem.Solution`
against the session's cache and device pool.  The built-ins cover the four
engines the repo already has (single-device, sharded, the online server, and
the baseline comparators); new workloads register additional modes on an
:class:`ExecutorRegistry` instead of growing another top-level function:

>>> registry = default_registry()                      # doctest: +SKIP
>>> registry.register("replay", ReplayExecutor)        # doctest: +SKIP
>>> session.solve(problem, mode="replay")              # doctest: +SKIP
"""

from __future__ import annotations

import abc
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional

from repro.session.problem import (
    BASELINE_MODE_PREFIX,
    Problem,
    Provenance,
    Solution,
    SolvePolicy,
    split_mode,
)
from repro.util.validation import ValidationError, require

__all__ = [
    "SessionExecutor",
    "SingleDeviceSessionExecutor",
    "ShardedSessionExecutor",
    "ServedSessionExecutor",
    "BaselineSessionExecutor",
    "ProgramSessionExecutor",
    "ExecutorRegistry",
    "default_registry",
]


class SessionExecutor(abc.ABC):
    """One execution mode of a session.

    ``solve`` receives the owning session (for its cache, pool and server),
    the problem/policy pair, and — when the session already resolved them —
    the compiled plan and canonical compile request, so executors never
    re-derive fingerprints on the hot path.
    """

    #: Registry key; also the default ``Provenance.executor`` value.
    name: str = "executor"

    @abc.abstractmethod
    def solve(self, session: "Any", problem: Problem, policy: SolvePolicy, *,
              cache: "Any", compiled: "Any" = None,
              compile_request: "Any" = None,
              mode_requested: Optional[str] = None,
              reason: str = "") -> Solution:
        """Execute ``problem`` under ``policy`` and report provenance."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_plan(problem: Problem, cache: "Any",
                      compiled: "Any", compile_request: "Any"):
        """``(compiled, compile_request)`` — compiling through ``cache`` when
        one is given, exactly like :func:`repro.core.pipeline.compile_cached`."""
        if compile_request is None:
            compile_request = problem.compile_request()
        if compiled is None:
            compiled = cache.get_or_compile(compile_request) \
                if cache is not None else compile_request.compile()
        return compiled, compile_request

    @staticmethod
    def _tagged(result: "Any", tag: Optional[str]) -> "Any":
        if tag is not None and getattr(result, "tag", None) != tag:
            result = replace(result, tag=tag)
        return result


class SingleDeviceSessionExecutor(SessionExecutor):
    """Compile (through the cache) and sweep on one simulated device —
    the code path the legacy ``sparstencil_solve`` shim delegates to."""

    name = "single"

    def solve(self, session, problem, policy, *, cache, compiled=None,
              compile_request=None, mode_requested=None, reason=""):
        from repro.engine.single import SingleDeviceExecutor

        compiled, compile_request = self._resolve_plan(
            problem, cache, compiled, compile_request)
        result = SingleDeviceExecutor(cache=cache).execute(
            compiled, problem.grid, problem.iterations)
        result = self._tagged(result, problem.tag)
        return Solution(
            result=result,
            compiled=compiled,
            fingerprint=compile_request.fingerprint,
            provenance=Provenance(
                mode_requested=mode_requested or policy.mode,
                executor=self.name,
                engine=compiled.engine,
                devices=1,
                reason=reason or "explicit single-device route",
                boundary=compiled.boundary,
                backend=compiled.backend),
            tag=problem.tag)


class ShardedSessionExecutor(SessionExecutor):
    """Domain-decomposed execution across the session pool (or the policy's
    device override) — the code path the legacy ``solve_sharded`` shim
    delegates to.  Bit-identical to single-device execution."""

    name = "sharded"

    def solve(self, session, problem, policy, *, cache, compiled=None,
              compile_request=None, mode_requested=None, reason=""):
        from repro.engine.sharded import ShardedExecutor

        compiled, compile_request = self._resolve_plan(
            problem, cache, compiled, compile_request)
        devices = policy.devices if policy.devices is not None \
            else session.pool
        max_workers = policy.max_workers if policy.max_workers is not None \
            else session.config.max_workers
        halo_depth = policy.halo_depth if policy.halo_depth is not None else 1
        executor = ShardedExecutor(devices, shard_grid=policy.shard_grid,
                                   cache=cache, max_workers=max_workers,
                                   halo_depth=halo_depth,
                                   overlap=policy.overlap)
        result = executor.execute(compiled, problem.grid, problem.iterations)
        result = self._tagged(result, problem.tag)
        return Solution(
            result=result,
            compiled=compiled,
            fingerprint=compile_request.fingerprint,
            provenance=Provenance(
                mode_requested=mode_requested or policy.mode,
                executor=self.name,
                engine=compiled.engine,
                devices=result.device_count,
                reason=reason or "explicit sharded route",
                boundary=compiled.boundary,
                backend=compiled.backend),
            tag=problem.tag)


class ServedSessionExecutor(SessionExecutor):
    """Route through the session's online server (admission queue, coalescer,
    device-pool scheduler); blocks until the request resolves.

    The server compiles through the *session* cache, so per-call cache
    overrides cannot apply here and are rejected rather than silently
    ignored.
    """

    name = "served"

    def solve(self, session, problem, policy, *, cache, compiled=None,
              compile_request=None, mode_requested=None, reason=""):
        if cache is not session.cache:
            raise ValidationError(
                "served mode always executes through the session cache; "
                "per-call cache overrides are not supported")
        server = session.server(window_seconds=policy.window_seconds,
                                max_batch_size=policy.max_batch_size)
        handle = server.submit_problem(
            problem, deadline_seconds=policy.deadline_seconds)
        served = handle.result()
        if compile_request is None:
            compile_request = problem.compile_request()
        if compiled is None and session.cache.contains(compile_request):
            # the server compiled through the session cache, so this is a
            # warm lookup that only fills Solution.compiled (the contains
            # guard keeps an already-evicted plan from recompiling here)
            compiled = session.cache.get_or_compile(compile_request)
        return Solution(
            result=served.run,
            compiled=compiled,
            fingerprint=served.fingerprint,
            provenance=Provenance(
                mode_requested=mode_requested or policy.mode,
                executor=self.name,
                engine=compiled.engine if compiled is not None else "",
                devices=served.devices,
                reason=reason or "served through the online scheduler",
                batch_size=served.batch_size,
                delegate=served.executor,
                boundary=compiled.boundary if compiled is not None
                else problem.boundary,
                backend=compiled.backend if compiled is not None
                else compile_request.options.backend),
            tag=problem.tag)


class BaselineSessionExecutor(SessionExecutor):
    """Run any registered comparator on the identical problem.

    Accepts either a registry key (``"cudnn"``) or a prebuilt
    :class:`~repro.baselines.base.Baseline` instance, which is what
    :func:`repro.analysis.compare_methods` feeds through the session.
    Baseline problems accept only the ``dtype`` / ``spec`` /
    ``temporal_fusion`` options the common method interface takes.
    """

    def __init__(self, baseline: "Any") -> None:
        if isinstance(baseline, str):
            from repro.baselines.registry import get_baseline
            baseline = get_baseline(baseline)
        self.baseline = baseline
        self.name = f"{BASELINE_MODE_PREFIX}{baseline.name}"

    def solve(self, session, problem, policy, *, cache, compiled=None,
              compile_request=None, mode_requested=None, reason=""):
        from repro.tcu.spec import A100_SPEC, DataType

        if problem.boundary != "dirichlet":
            raise ValidationError(
                f"baseline comparators implement the fixed-halo Dirichlet "
                f"boundary only; got a {problem.boundary!r} grid")
        options = dict(problem.options)
        dtype = DataType(options.pop("dtype", DataType.FP16))
        spec = options.pop("spec", A100_SPEC)
        temporal_fusion = int(options.pop("temporal_fusion", 1))
        option_boundary = options.pop("boundary", None)
        if option_boundary is not None:
            from repro.stencils.boundary import normalize_boundary

            if normalize_boundary(option_boundary) != problem.boundary:
                raise ValidationError(
                    f"options boundary {option_boundary!r} conflicts with "
                    f"the grid's boundary {problem.boundary!r}")
        if options:
            raise ValidationError(
                f"baseline modes accept only dtype/spec/temporal_fusion/"
                f"boundary options; got {sorted(options)}")
        result = self.baseline.run(
            problem.pattern, problem.grid, problem.iterations,
            dtype=dtype, spec=spec, temporal_fusion=temporal_fusion)
        if compile_request is None:
            try:
                compile_request = problem.compile_request()
            except ValidationError:
                compile_request = None  # not a SparStencil-compilable problem
        return Solution(
            result=result,
            compiled=None,
            fingerprint=compile_request.fingerprint
            if compile_request is not None else "",
            provenance=Provenance(
                mode_requested=mode_requested or policy.mode,
                executor=self.name,
                engine=self.baseline.name,
                devices=1,
                reason=reason or f"comparator {self.baseline.name} requested",
                boundary=problem.boundary,
                # comparators own their cost models end to end and never
                # touch the SparStencil backend registry
                backend=""),
            tag=problem.tag)


class ProgramSessionExecutor(SessionExecutor):
    """Execute a multi-stage :class:`~repro.programs.StencilProgram` problem.

    The session routes every ``Problem(program=...)`` here regardless of the
    policy mode; this executor then resolves the mode itself — ``single``
    runs the :class:`~repro.programs.ProgramRunner`, ``sharded`` the
    :class:`~repro.programs.ShardedProgramRunner`, and ``auto`` asks the
    session scheduler's :meth:`~repro.server.scheduler.DevicePoolScheduler.
    decide_program` (the same min-speedup / halo-fraction gates as plain
    kernels).  ``served`` and ``baseline:*`` modes do not apply to programs
    and are rejected.  The provenance records the program fingerprint's
    constituents: every stage tap's compile fingerprint plus the fusion
    groups the run executed.
    """

    name = "program"

    def solve(self, session, problem, policy, *, cache, compiled=None,
              compile_request=None, mode_requested=None, reason=""):
        from repro.programs import (
            ProgramRunner,
            ShardedProgramRunner,
            compile_program,
        )

        kind = policy.mode_kind
        if kind not in ("auto", "single", "sharded"):
            raise ValidationError(
                f"program problems route through auto/single/sharded; "
                f"mode {policy.mode!r} is not supported for programs")
        plan = compiled
        if plan is None:
            plan = compile_program(problem.program, problem.grid, cache,
                                   options=dict(problem.options))
        mode = kind
        decision = None
        if mode == "auto":
            # direct solves decide against the full pool, like the
            # session's plain-kernel auto route (no lease is taken)
            decision = session.scheduler.decide_program(
                plan, problem.iterations,
                free_devices=session.pool.device_count)
            mode = decision.executor
            reason = reason or decision.reason

        if mode == "sharded":
            if policy.devices is not None:
                devices = policy.devices
            elif decision is not None:
                devices = session.scheduler.spec_for_program(decision, plan)
            else:
                devices = session.pool
            max_workers = policy.max_workers \
                if policy.max_workers is not None \
                else session.config.max_workers
            runner = ShardedProgramRunner(
                devices, shard_grid=policy.shard_grid, cache=cache,
                max_workers=max_workers, overlap=policy.overlap)
            result = runner.execute(plan, problem.grid, problem.iterations)
            devices_used = result.device_count
            fusion_groups = runner.partition(plan)[1]
            reason = reason or "explicit sharded program route"
        else:
            result = ProgramRunner().execute(plan, problem.grid,
                                             problem.iterations)
            devices_used = 1
            # no exchange exists on one device, so nothing fuses: the
            # executed grouping is one stage per group
            fusion_groups = tuple(
                (name,) for name in plan.program.stage_names)
            reason = reason or "explicit single-device program route"

        result = self._tagged(result, problem.tag)
        stage_fingerprints = tuple(
            f"{cstage.name}:{fingerprint}"
            for cstage in plan.stages
            for fingerprint in cstage.fingerprints)
        return Solution(
            result=result,
            compiled=plan,
            fingerprint=plan.fingerprint,
            provenance=Provenance(
                mode_requested=mode_requested or policy.mode,
                executor=self.name,
                engine=plan.engine,
                devices=devices_used,
                reason=reason,
                delegate=mode,
                boundary=plan.boundary,
                backend=plan.backend,
                stage_fingerprints=stage_fingerprints,
                fusion_groups=fusion_groups),
            tag=problem.tag)


class ExecutorRegistry:
    """Mode-name → executor-factory table of one session.

    Factories are zero-argument callables returning a
    :class:`SessionExecutor`; ``baseline:<name>`` modes resolve dynamically
    through :mod:`repro.baselines.registry` and need no registration.
    ``"auto"`` is not an executor — the session resolves it to ``single`` or
    ``sharded`` with its scheduler before reaching the registry.
    """

    def __init__(self, factories: Optional[Dict[str, Callable[[], SessionExecutor]]] = None) -> None:
        self._factories: Dict[str, Callable[[], SessionExecutor]] = dict(factories or {})

    def register(self, mode: str, factory: Callable[[], SessionExecutor], *,
                 replace: bool = False) -> None:
        require(isinstance(mode, str) and mode not in ("", "auto"),
                "mode must be a non-empty string other than 'auto'")
        require(not mode.startswith(BASELINE_MODE_PREFIX),
                f"'{BASELINE_MODE_PREFIX}*' modes resolve through the "
                f"baseline registry and cannot be overridden here")
        if not replace and mode in self._factories:
            raise ValidationError(f"mode {mode!r} already registered "
                                  f"(pass replace=True to override)")
        self._factories[mode] = factory

    def create(self, mode: str) -> SessionExecutor:
        kind, baseline = split_mode(mode)
        if kind == "baseline":
            return BaselineSessionExecutor(baseline)
        factory = self._factories.get(mode)
        if factory is None:
            raise ValidationError(
                f"unknown solve mode {mode!r}; available: {self.available()}")
        return factory()

    def available(self) -> List[str]:
        return sorted(self._factories) + ["auto", f"{BASELINE_MODE_PREFIX}<name>"]

    def copy(self) -> "ExecutorRegistry":
        return ExecutorRegistry(self._factories)


def default_registry() -> ExecutorRegistry:
    """A fresh registry holding the built-in execution modes."""
    registry = ExecutorRegistry()
    registry.register("single", SingleDeviceSessionExecutor)
    registry.register("sharded", ShardedSessionExecutor)
    registry.register("served", ServedSessionExecutor)
    registry.register("program", ProgramSessionExecutor)
    return registry

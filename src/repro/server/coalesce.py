"""Fingerprint-coalescing micro-batcher.

The paper's economics are "compile once, sweep many": the more requests that
share one compile fingerprint inside a dispatch, the further the (cached)
compile cost amortises and the fewer cache lookups the hot path pays.  The
:class:`Coalescer` buys that grouping with a bounded amount of latency: it
waits for the first queued request, then keeps collecting for a short time
window (cut short by the tightest request deadline and a size cap), and
groups whatever arrived by compile fingerprint.  Each group becomes one
:class:`MicroBatch`, which the dispatcher hands to the session's batch engine — so a
micro-batch compiles its plan exactly once no matter how many requests it
carries.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import global_registry
from repro.server.queue import QueuedRequest, RequestQueue
from repro.util.validation import require, require_positive_int


def _coalesce_errors():
    """Counter of faults the collection loop degraded around (fetched per
    use: tests reset the global registry).  The degradation is deliberate
    — popped requests are always dispatched, never dropped — but the
    swallowed fault must not stay invisible."""
    return global_registry().counter(
        "server.coalesce_errors",
        "faults the coalescer degraded around instead of dropping requests")

__all__ = ["MicroBatch", "Coalescer", "coalesce"]


@dataclass(frozen=True)
class MicroBatch:
    """Requests sharing one compile fingerprint, dispatched together.

    ``window_start``/``window_end`` bracket the collection cycle that
    gathered the batch (``time.perf_counter`` values); the tracing layer
    records them as the batch's coalesce-window span.  Batches built
    directly through :func:`coalesce` carry ``0.0``/``0.0``.
    """

    fingerprint: str
    items: Tuple[QueuedRequest, ...]
    window_start: float = 0.0
    window_end: float = 0.0

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def earliest_deadline(self) -> Optional[float]:
        deadlines = [i.deadline for i in self.items if i.deadline is not None]
        return min(deadlines) if deadlines else None


def coalesce(items: Sequence[QueuedRequest],
             max_batch_size: Optional[int] = None,
             window_start: float = 0.0,
             window_end: float = 0.0) -> List[MicroBatch]:
    """Group ``items`` by fingerprint, preserving arrival order.

    Groups are emitted in order of their first arrival; a group larger than
    ``max_batch_size`` is split into consecutive chunks so one hot
    fingerprint cannot monopolise a dispatch.  ``window_start`` /
    ``window_end`` (``perf_counter`` values) are stamped onto every batch
    for the tracing layer.
    """
    groups: Dict[str, List[QueuedRequest]] = {}
    for item in items:
        groups.setdefault(item.fingerprint, []).append(item)
    batches: List[MicroBatch] = []
    for fingerprint, members in groups.items():
        if max_batch_size is None:
            chunks = [members]
        else:
            require_positive_int(max_batch_size, "max_batch_size")
            chunks = [members[i:i + max_batch_size]
                      for i in range(0, len(members), max_batch_size)]
        batches.extend(
            MicroBatch(fingerprint, tuple(chunk),
                       window_start=window_start, window_end=window_end)
            for chunk in chunks)
    return batches


class Coalescer:
    """Time/size-windowed collector turning a request stream into micro-batches.

    Parameters
    ----------
    window_seconds:
        How long to keep collecting after the first request of a cycle.
        The window is shortened when a collected request's deadline leaves
        less slack than the window itself — coalescing must never be the
        reason a deadline is missed.
    max_batch_size:
        Cap on requests collected per cycle (and per micro-batch).  A full
        window dispatches immediately; later arrivals start the next cycle.
    """

    def __init__(self, window_seconds: float = 0.002,
                 max_batch_size: int = 16) -> None:
        require(window_seconds >= 0.0, "window_seconds must be non-negative")
        require_positive_int(max_batch_size, "max_batch_size")
        self.window_seconds = window_seconds
        self.max_batch_size = max_batch_size
        #: *dispatching* collection cycles (>= 1 request gathered) / requests
        #: collected — the telemetry layer derives the coalescing ratio from
        #: these.  Windows that gather nothing (EOF on a closed queue) never
        #: count, so an idle server cannot drag the ratio toward 0.
        self.cycles = 0
        self.collected = 0

    async def collect(self, queue: RequestQueue
                      ) -> Optional[List[MicroBatch]]:
        """One collection cycle; ``None`` when the queue reached EOF.

        Once a request has been popped from the queue it is *always*
        returned in some batch — a fault anywhere in the window loop or the
        grouping degrades to dispatching what was gathered (worst case as
        singleton batches), never to dropping futures.
        """
        first = await queue.get()
        if first is None:
            return None
        window_open = time.perf_counter()
        gathered: List[QueuedRequest] = [first]
        try:
            window_end = window_open + self.window_seconds
            while len(gathered) < self.max_batch_size:
                now = time.perf_counter()
                remaining = window_end - now
                for item in gathered:
                    if item.deadline is not None:
                        # leave half the slack for the solve itself
                        slack = (item.deadline - now) / 2.0
                        remaining = min(remaining, slack)
                if remaining <= 0:
                    break
                try:
                    item = await queue.get(timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if item is None:
                    break  # closed mid-window: dispatch what we have
                gathered.append(item)
        except Exception:  # lint: allow-broad-except — dispatch, never drop
            # dispatch what was gathered rather than lose it
            _coalesce_errors().inc()
        if gathered:
            # The ratio's contract — requests per *non-empty* dispatch
            # window — is encoded here rather than implied: today the EOF
            # early-return above means `gathered` is never empty at this
            # point, but an in-window change (e.g. dropping expired items
            # before dispatch) must not start counting empty windows and
            # dilute an idle server's ratio toward 0.
            self.cycles += 1
            self.collected += len(gathered)
        window_close = time.perf_counter()
        try:
            return coalesce(gathered, self.max_batch_size,
                            window_start=window_open,
                            window_end=window_close)
        except Exception:  # lint: allow-broad-except — degrade to singletons
            _coalesce_errors().inc()
            return [MicroBatch(item.fingerprint, (item,),
                               window_start=window_open,
                               window_end=window_close)
                    for item in gathered]

    @property
    def coalescing_ratio(self) -> float:
        """Requests collected per *non-empty* dispatch cycle (1.0 = no
        coalescing won; 0.0 only before the first dispatch)."""
        return self.collected / self.cycles if self.cycles else 0.0

"""Device-pool scheduler: route each micro-batch to the right executor.

Given a compiled plan and the pool's current free devices, the scheduler
answers two questions with the *existing* analytical model (no new cost
model is introduced):

* **single or sharded?**  The per-sweep roofline time of the plan
  (``plan.estimate.t_total``) is compared against the modelled
  communication-avoiding round — per-shard compute shrinking with the
  device count versus the interconnect cost of the partition's real halo
  geometry, amortised over ``halo_depth`` sweeps per exchange and
  overlapped with interior compute
  (:func:`repro.engine.sharded.model_round`, exactly the timeline the
  :class:`~repro.engine.sharded.ShardedExecutor` bills at run time).  Small
  grids are latency-bound and stay on one device; large grids clear the
  NVLink latency and shard.
* **how many devices, how deep a halo?**  Every free power-of-two count is
  evaluated at every feasible ``halo_depth`` up to ``max_halo_depth``; the
  best modelled speedup wins, provided it beats ``min_speedup`` and the
  exposed-exchange share of the round stays under ``max_halo_fraction``.

Occupancy is enforced by the :class:`repro.tcu.occupancy.OccupancyLedger`:
:meth:`DevicePoolScheduler.route` decides and leases in one step, and the
lease protocol guarantees in-use devices never exceed the pool size.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.morphing import MorphConfig
from repro.core.pipeline import CompiledStencil
from repro.obs.metrics import global_registry
from repro.stencils.partition import GridPartition
from repro.tcu.occupancy import DeviceLease, OccupancyLedger
from repro.tcu.spec import MultiDeviceSpec
from repro.util.validation import ValidationError, require, require_positive_int

__all__ = ["RouteCancelledError", "RoutingDecision", "DevicePoolScheduler"]


def _infeasible_partitions():
    """The global-registry counter of sharding candidates the partition
    geometry rejected (fetched per use: tests reset the registry)."""
    return global_registry().counter(
        "scheduler.infeasible_partitions",
        "sharding candidates rejected by partition geometry")


class RouteCancelledError(RuntimeError):
    """Raised by :meth:`DevicePoolScheduler.route` when its ``cancel`` event
    is set while waiting for a free device.  The caller owns the batch whose
    routing was abandoned and decides how to fail it."""


@dataclass(frozen=True)
class RoutingDecision:
    """Where one micro-batch executes, and the model's reasons."""

    executor: str                 # "single" | "sharded"
    devices: int
    reason: str
    sweep_seconds: float          # modelled single-device sweep (roofline)
    modelled_speedup: float       # sharded speedup at `devices` (1.0 single)
    halo_fraction: float          # modelled exposed-exchange share of a round
    halo_depth: int = 1           # communication-avoiding depth to run at
    overlap: bool = True          # overlap exchanges with interior compute

    @property
    def sharded(self) -> bool:
        return self.executor == "sharded"


def _shardable(compiled: CompiledStencil) -> bool:
    """Whether the sharded executor supports this plan's layout at all."""
    config = compiled.plan.config
    pattern = compiled.pattern
    return MorphConfig.from_r1_r2(pattern.ndim, config.r1, config.r2) == config


class DevicePoolScheduler:
    """Pick executors for compiled plans over a shared pool of devices.

    Parameters
    ----------
    pool:
        The cluster, as a :class:`MultiDeviceSpec` or a bare device count
        (N simulated A100s on NVLink).
    min_speedup:
        Modelled sharded speedup required before leaving the single-device
        path (sharding has real costs — shard compiles, halo exchanges — so
        a marginal win is not worth them).
    max_halo_fraction:
        Upper bound on the modelled *exposed* exchange share of a round's
        wall time (exchange time the compute/comm overlap cannot hide);
        past it the decomposition is communication-dominated and stays
        single.
    halo_depth:
        Communication-avoiding depth to route at, or ``None`` (default) to
        search every feasible depth up to ``max_halo_depth`` per candidate
        device count and take the cheapest modelled round.
    max_halo_depth:
        Search ceiling for the automatic depth choice — deep halos trade
        redundant compute for latency, and past a few steps the redundant
        work always dominates, so an unbounded search would only waste
        partition builds.
    overlap:
        Whether routed runs (and their cost model) overlap halo exchange
        with interior compute.
    route_retries:
        How many failed optimistic multi-device leases :meth:`route`
        tolerates before degrading to the always-satisfiable single-device
        route.  Bounds the decide/try_acquire loop: contention flapping the
        free count must not spin the router hot.
    """

    def __init__(self, pool: Union[MultiDeviceSpec, int] = 1, *,
                 min_speedup: float = 1.25,
                 max_halo_fraction: float = 0.25,
                 halo_depth: Optional[int] = None,
                 max_halo_depth: int = 4,
                 overlap: bool = True,
                 ledger: Optional[OccupancyLedger] = None,
                 route_retries: int = 8) -> None:
        if isinstance(pool, (int, np.integer)):
            require_positive_int(int(pool), "pool device count")
            pool = MultiDeviceSpec(device_count=int(pool))
        require(isinstance(pool, MultiDeviceSpec),
                f"pool must be a MultiDeviceSpec or a device count, "
                f"got {type(pool).__name__}")
        require(min_speedup >= 1.0, "min_speedup must be >= 1.0")
        require(0.0 <= max_halo_fraction <= 1.0,
                "max_halo_fraction must be in [0, 1]")
        if halo_depth is not None:
            require_positive_int(halo_depth, "halo_depth")
        require_positive_int(max_halo_depth, "max_halo_depth")
        require_positive_int(route_retries, "route_retries")
        self.pool = pool
        self.min_speedup = min_speedup
        self.max_halo_fraction = max_halo_fraction
        self.halo_depth = halo_depth
        self.max_halo_depth = max_halo_depth
        self.overlap = bool(overlap)
        self.route_retries = route_retries
        self.ledger = ledger if ledger is not None \
            else OccupancyLedger(pool.device_count)

    # ------------------------------------------------------------------ #
    # decision model
    # ------------------------------------------------------------------ #
    def _sharded_estimate(self, compiled: CompiledStencil, devices: int
                          ) -> Optional[Tuple[float, float, int]]:
        """``(modelled speedup, halo fraction, halo depth)`` of a
        ``devices``-way shard at its best communication-avoiding depth.

        Prices the steady-state round with
        :func:`repro.engine.sharded.model_round` — the same partition
        geometry, interconnect model, exchange amortisation and overlap the
        sharded executor bills at run time — and returns ``None`` when the
        grid cannot be tiled into that many shards.  The depth search walks
        1..``max_halo_depth`` (clamped to what the geometry supports) and
        keeps the cheapest amortised sweep; with a fixed ``halo_depth``
        configured, only that depth (clamped) is priced.
        """
        from repro.engine.sharded import model_round

        sweep = compiled.plan.estimate.t_total
        align = compiled.plan.config.r
        radius = compiled.pattern.radius
        try:
            feasible = GridPartition.max_halo_depth(
                compiled.grid_shape, radius, devices, align=align,
                boundary=compiled.boundary)
        except ValidationError:
            # the geometry cannot host this shard count at all — a
            # modelling fact, not a fault, but counted so a pool that
            # keeps proposing infeasible candidates stays visible
            _infeasible_partitions().inc()
            return None
        if self.halo_depth is not None:
            depths = [min(self.halo_depth, feasible)]
        else:
            depths = range(1, min(self.max_halo_depth, feasible) + 1)
        itemsize = compiled.plan.dtype.itemsize
        best: Optional[Tuple[float, float, int]] = None
        for depth in depths:
            try:
                # boundary-aware: periodic wrap adds real interconnect
                # messages at the global edges, and the decision must bill
                # what the sharded executor will bill
                partition = GridPartition.build(
                    compiled.grid_shape, radius, devices, align=align,
                    boundary=compiled.boundary, halo_depth=depth)
            except ValidationError:
                _infeasible_partitions().inc()
                continue
            if partition.n_shards > devices or partition.n_shards < 2:
                return None
            round_model = model_round(partition, self.pool, itemsize, sweep,
                                      overlap=self.overlap)
            speedup = sweep / round_model.per_sweep_seconds \
                if round_model.per_sweep_seconds > 0 else 0.0
            if best is None or speedup > best[0]:
                best = (speedup, round_model.halo_fraction, depth)
        return best

    def decide(self, compiled: CompiledStencil, iterations: int,
               free_devices: Optional[int] = None) -> RoutingDecision:
        """Routing decision for one plan given the pool's free devices."""
        require_positive_int(iterations, "iterations")
        free = self.ledger.free if free_devices is None else free_devices
        free = max(0, min(free, self.pool.device_count))
        sweep = compiled.plan.estimate.t_total

        def single(reason: str) -> RoutingDecision:
            return RoutingDecision(
                executor="single", devices=1, reason=reason,
                sweep_seconds=sweep, modelled_speedup=1.0, halo_fraction=0.0)

        if free < 2:
            return single("pool busy: fewer than 2 devices free")
        if iterations % compiled.temporal_fusion != 0:
            return single("iterations not divisible by the temporal-fusion "
                          "factor (leftover sweeps are single-device)")
        if not _shardable(compiled):
            return single("layout not expressible as (r1, r2); sharded "
                          "execution unsupported")

        best: Optional[RoutingDecision] = None
        devices = 2
        while devices <= free:
            estimate = self._sharded_estimate(compiled, devices)
            if estimate is not None:
                speedup, halo_fraction, halo_depth = estimate
                if (halo_fraction <= self.max_halo_fraction
                        and (best is None
                             or speedup > best.modelled_speedup)):
                    best = RoutingDecision(
                        executor="sharded", devices=devices,
                        reason=f"modelled {speedup:.2f}x on {devices} "
                               f"devices (halo depth {halo_depth})",
                        sweep_seconds=sweep, modelled_speedup=speedup,
                        halo_fraction=halo_fraction, halo_depth=halo_depth,
                        overlap=self.overlap)
            devices *= 2
        if best is None or best.modelled_speedup < self.min_speedup:
            return single("latency-bound: modelled sharded speedup below "
                          f"{self.min_speedup:.2f}x threshold")
        return best

    def decide_program(self, plan: "Any", steps: int,
                       free_devices: Optional[int] = None) -> RoutingDecision:
        """Routing decision for a compiled stencil *program*
        (:class:`repro.programs.ProgramPlan`).

        Prices the sharded round schedule with
        :func:`repro.programs.executor.model_program` — the same partition
        geometry, interconnect model and overlap arithmetic as
        :meth:`decide` — and applies the identical ``min_speedup`` /
        ``max_halo_fraction`` gates.  The halo depth is not searched here:
        a program's depth is its fusion-group span (consecutive equal-radius
        stages under one exchange), clamped by the geometry.
        """
        from repro.programs.executor import model_program

        require_positive_int(steps, "steps")
        free = self.ledger.free if free_devices is None else free_devices
        free = max(0, min(free, self.pool.device_count))
        step_seconds = plan.single_step_seconds

        def single(reason: str) -> RoutingDecision:
            return RoutingDecision(
                executor="single", devices=1, reason=reason,
                sweep_seconds=step_seconds, modelled_speedup=1.0,
                halo_fraction=0.0)

        if free < 2:
            return single("pool busy: fewer than 2 devices free")

        best: Optional[RoutingDecision] = None
        devices = 2
        while devices <= free:
            spec = self.pool.with_overrides(
                device=plan.stages[0].compiled[0].spec, device_count=devices)
            model = model_program(plan, devices=devices, steps=steps,
                                  fuse=True, overlap=self.overlap, spec=spec)
            if model.sharded_seconds is not None:
                speedup = model.single_seconds / model.sharded_seconds \
                    if model.sharded_seconds > 0 else 0.0
                halo_fraction = model.exposed_seconds / model.sharded_seconds \
                    if model.sharded_seconds > 0 else 0.0
                if (halo_fraction <= self.max_halo_fraction
                        and (best is None
                             or speedup > best.modelled_speedup)):
                    best = RoutingDecision(
                        executor="sharded", devices=devices,
                        reason=f"modelled {speedup:.2f}x on {devices} "
                               f"devices ({len(model.groups)} fused "
                               f"group(s)/step, depth {model.halo_depth})",
                        sweep_seconds=step_seconds,
                        modelled_speedup=speedup,
                        halo_fraction=halo_fraction,
                        halo_depth=model.halo_depth,
                        overlap=self.overlap)
            elif best is None:
                # remember why sharding is off the table (chain/radius/
                # geometry); larger counts cannot fix a structural reason
                return single(model.reason)
            devices *= 2
        if best is None or best.modelled_speedup < self.min_speedup:
            return single("latency-bound: modelled sharded speedup below "
                          f"{self.min_speedup:.2f}x threshold")
        return best

    def spec_for_program(self, decision: RoutingDecision,
                         plan: "Any") -> MultiDeviceSpec:
        """The cluster slice a sharded program runs on — ``decision.devices``
        copies of the device the program's stages were compiled for, joined
        by the pool's interconnect (the program analogue of
        :meth:`spec_for`)."""
        return self.pool.with_overrides(
            device=plan.stages[0].compiled[0].spec,
            device_count=decision.devices)

    # ------------------------------------------------------------------ #
    # lease integration
    # ------------------------------------------------------------------ #
    def _lease_single(self, cancel: Optional[threading.Event],
                      poll_seconds: float) -> DeviceLease:
        """Block for one device; abort when ``cancel`` is set.

        A free device always wins over a set cancel event (the acquire is
        attempted before every cancellation check), so work keeps flowing
        whenever the pool can actually serve it.
        """
        while True:
            try:
                return self.ledger.acquire(
                    1, timeout=poll_seconds if cancel is not None else None)
            except TimeoutError:
                if cancel is not None and cancel.is_set():
                    raise RouteCancelledError(
                        "routing cancelled while waiting for a free device"
                    ) from None

    def route(self, compiled: CompiledStencil, iterations: int, *,
              cancel: Optional[threading.Event] = None,
              poll_seconds: float = 0.05
              ) -> Tuple[RoutingDecision, DeviceLease]:
        """Decide against the live free count and lease atomically.

        The free count can shrink between the decision and the lease (other
        worker threads grab devices); when the optimistic lease fails the
        decision is recomputed against the new free count, degrading toward
        the always-satisfiable single-device route rather than blocking on
        devices that may never free up together.

        The retry loop is bounded by ``route_retries``: under heavy
        contention the free count can flap (another worker releases and a
        third grabs between every decide and try_acquire), and an unbounded
        loop would spin hot without ever making progress.  After the budget
        is spent the router stops chasing a multi-device lease and takes
        the single-device route.

        ``cancel`` (a :class:`threading.Event`) makes the device wait
        abortable: with every pool device leased elsewhere, the final
        single-device acquire would otherwise block forever — a server
        shutting down mid-wait sets the event and :meth:`route` raises
        :class:`RouteCancelledError` within ``poll_seconds`` instead of
        deadlocking the shutdown against a lease that will never be
        released.
        """
        for _ in range(self.route_retries):
            decision = self.decide(compiled, iterations,
                                   free_devices=self.ledger.free)
            if decision.devices == 1:
                return decision, self._lease_single(cancel, poll_seconds)
            lease = self.ledger.try_acquire(decision.devices)
            if lease is not None:
                return decision, lease
        decision = RoutingDecision(
            executor="single", devices=1,
            reason=f"pool contention: {self.route_retries} optimistic "
                   f"multi-device leases failed; degrading to single",
            sweep_seconds=compiled.plan.estimate.t_total,
            modelled_speedup=1.0, halo_fraction=0.0)
        return decision, self._lease_single(cancel, poll_seconds)

    @contextlib.contextmanager
    def leased(self, decision: RoutingDecision
               ) -> Iterator[DeviceLease]:
        """Context manager leasing ``decision.devices`` for a run."""
        lease = self.ledger.acquire(decision.devices)
        try:
            yield lease
        finally:
            self.ledger.release(lease)

    def spec_for(self, decision: RoutingDecision,
                 compiled: CompiledStencil) -> MultiDeviceSpec:
        """The cluster slice a sharded run executes on: ``decision.devices``
        copies of the *compiled plan's* device (so per-shard fingerprints
        match the plan, as the sharded executor requires), joined by the
        pool's interconnect."""
        return self.pool.with_overrides(device=compiled.spec,
                                        device_count=decision.devices)

"""The synchronous :class:`StencilServer` facade over the serving pipeline.

One object owns the whole online path::

    submit_problem() ──> RequestQueue ──> Coalescer ──> DevicePoolScheduler ──> session
      (admission)          (bounded)     (fingerprint     (single / sharded,     (solve_batch /
                                          micro-batches)   occupancy ledger)      sharded engine)

The server is a thin adapter over a :class:`repro.StencilSession`: admission,
coalescing and scheduling live here, but every micro-batch ultimately
executes through the session's engine plumbing (and the session's compile
cache), so served and direct solves share one code path.  A standalone
``StencilServer(devices=4)`` builds a private session;
:meth:`repro.StencilSession.server` hands the server an existing one.

Callers stay synchronous: :meth:`StencilServer.submit_problem` returns a
:class:`SubmitHandle` immediately (or raises a typed admission error), and
``handle.result()`` blocks for that request alone.  Internally an asyncio
event loop on a daemon thread runs the dispatcher, and micro-batches execute
on a thread pool sized to the device pool — the same "asyncio front, thread
workers back" split a real serving process would use, since the simulated
sweeps are numpy-bound and release the GIL.

Results are bit-identical to sequential single-device solves: coalescing
only changes *when* plans compile (once per fingerprint, through the shared
:class:`~repro.service.cache.CompileCache`), never what executes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Union

from repro.core.pipeline import StencilRunResult
from repro.obs.metrics import global_registry
from repro.obs.trace import NULL_TRACER
from repro.server.coalesce import Coalescer, MicroBatch
from repro.server.queue import (
    DeadlineExceededError,
    LintRejectedError,
    QueuedRequest,
    RequestQueue,
    ServerClosedError,
    ServerError,
)
from repro.server.scheduler import RouteCancelledError
from repro.server.telemetry import ServerTelemetry
from repro.service.cache import CompileCache, rebrand
from repro.session.problem import Problem, SolvePolicy
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import MultiDeviceSpec
from repro.util.deprecation import warn_legacy
from repro.util.validation import require, require_positive_int

__all__ = ["ServerConfig", "ServerResult", "SubmitHandle", "StencilServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving pipeline (defaults suit the test workloads).

    Attributes
    ----------
    queue_bound:
        Admission-control bound; submissions beyond it raise
        :class:`~repro.server.queue.QueueFullError`.
    window_seconds / max_batch_size:
        The coalescer's collection window and per-dispatch size cap.
    max_workers:
        Thread-pool width for concurrent micro-batch execution; defaults to
        the device-pool size (extra workers would only queue on the ledger).
    default_deadline_seconds:
        Deadline applied to submissions that do not set their own
        (``None`` = no deadline).
    min_speedup / max_halo_fraction / halo_depth / overlap:
        The scheduler's sharding thresholds and communication-avoiding
        knobs (see :class:`~repro.server.scheduler.DevicePoolScheduler`);
        ``halo_depth=None`` searches for the cheapest modelled depth per
        routing decision.
    cache_capacity:
        Capacity of the server-owned compile cache when none is injected.
    lint_admission:
        Opt-in pre-flight gate: run the Tier-1 diagnostics
        (:func:`repro.lint.check_problem`) on every submission and reject
        requests carrying ``error``-severity findings with
        :class:`~repro.server.queue.LintRejectedError` *before* they take
        a queue slot.  Rejections increment the ``lint.rejected`` counter
        in the global :class:`~repro.obs.MetricsRegistry`.
    """

    queue_bound: int = 128
    window_seconds: float = 0.002
    max_batch_size: int = 16
    max_workers: Optional[int] = None
    default_deadline_seconds: Optional[float] = None
    min_speedup: float = 1.25
    max_halo_fraction: float = 0.25
    halo_depth: Optional[int] = None
    overlap: bool = True
    cache_capacity: int = 128
    latency_window: int = 2048
    lint_admission: bool = False


@dataclass(frozen=True)
class ServerResult:
    """What a resolved :class:`SubmitHandle` yields."""

    run: StencilRunResult
    tag: Optional[str]
    fingerprint: str
    executor: str           # "single" | "sharded"
    devices: int
    batch_size: int         # live requests in the dispatched micro-batch
    queue_wait_seconds: float
    service_seconds: float  # submit -> result, the client-visible latency
    #: trace id of the request's span tree when the server's session traces
    #: (empty otherwise) — resolve it with ``tracer.spans(trace_id)``
    trace_id: str = ""

    @property
    def output(self):
        return self.run.output

    @property
    def coalesced(self) -> bool:
        return self.batch_size > 1


class SubmitHandle:
    """Synchronous handle to one in-flight request."""

    def __init__(self, item: QueuedRequest) -> None:
        self._item = item

    @property
    def fingerprint(self) -> str:
        return self._item.fingerprint

    @property
    def tag(self) -> Optional[str]:
        return self._item.tag

    def done(self) -> bool:
        return self._item.future.done()

    def result(self, timeout: Optional[float] = None) -> ServerResult:
        """Block until the request resolves; re-raises typed failures."""
        return self._item.future.result(timeout)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        return self._item.future.exception(timeout)


class StencilServer:
    """Online stencil-solving server over a pool of simulated devices.

    Usage::

        with StencilServer(devices=4) as server:
            handles = [server.submit_problem(Problem(pattern, grid, 8,
                                                     tag=str(i)))
                       for i, grid in enumerate(grids)]
            outputs = [h.result().output for h in handles]
            print(server.metrics()["coalescing"]["ratio"])

    Parameters
    ----------
    devices:
        The device pool: a :class:`repro.tcu.spec.MultiDeviceSpec` or a bare
        device count (N simulated A100s on NVLink).
    cache:
        Optional shared :class:`~repro.service.cache.CompileCache` (e.g. one
        with disk persistence); the server's session creates a private one
        otherwise.
    config:
        A :class:`ServerConfig`; defaults are reasonable for tests/examples.
    session:
        The :class:`repro.StencilSession` whose cache, pool and engines the
        server adapts.  When omitted (the standalone construction path) a
        private session is built from ``devices`` / ``cache`` / ``config``;
        :meth:`repro.StencilSession.server` always passes its own.
        ``devices`` and ``cache`` are session properties and may not be
        given alongside one.
    """

    def __init__(self, devices: Union[MultiDeviceSpec, int, None] = None, *,
                 cache: Optional[CompileCache] = None,
                 config: Optional[ServerConfig] = None,
                 session: Optional[Any] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        if session is None:
            from repro.session.session import SessionConfig, StencilSession

            session = StencilSession(SessionConfig(
                devices=devices if devices is not None else 1,
                cache=cache,
                cache_capacity=self.config.cache_capacity,
                min_speedup=self.config.min_speedup,
                max_halo_fraction=self.config.max_halo_fraction,
                halo_depth=self.config.halo_depth,
                overlap=self.config.overlap,
                max_workers=self.config.max_workers))
        else:
            require(devices is None and cache is None,
                    "devices/cache are session properties; pass them through "
                    "the session instead")
        self.session = session
        self.cache = session.cache
        self.scheduler = session.scheduler
        #: the session's tracer (NULL_TRACER when the session does not
        #: trace): every admitted request opens a span on it, and dispatch
        #: workers re-bind that span so engine/cache spans join the trace
        self.tracer = getattr(session, "tracer", NULL_TRACER)
        self.telemetry = ServerTelemetry(self.config.latency_window)
        self.queue = RequestQueue(self.config.queue_bound)
        self.coalescer = Coalescer(self.config.window_seconds,
                                   self.config.max_batch_size)
        workers = self.config.max_workers if self.config.max_workers \
            else self.scheduler.pool.device_count
        require_positive_int(workers, "max_workers")
        self._workers = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="stencil-server")
        #: bounds micro-batches handed to the thread pool: without it the
        #: executor's internal queue would be an unbounded buffer behind the
        #: bounded request queue, and admission control would never trigger
        self._dispatch_slots = asyncio.Semaphore(workers)
        self._pending = 0
        self._pending_cond = threading.Condition()
        self._shutdown_lock = threading.Lock()
        self._closed = False
        #: set on a no-drain shutdown: workers parked in the scheduler
        #: waiting for a device abort their wait instead of deadlocking the
        #: shutdown against a lease that may only be released afterwards
        self._abort_device_wait = threading.Event()

        self._loop = asyncio.new_event_loop()
        self.queue.bind_loop(self._loop)
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), daemon=True,
            name="stencil-server-loop")
        self._thread.start()
        ready.wait()
        self._dispatcher = asyncio.run_coroutine_threadsafe(
            self._dispatch_loop(), self._loop)

    # ------------------------------------------------------------------ #
    # client API (any thread, synchronous)
    # ------------------------------------------------------------------ #
    def submit(self, pattern: StencilPattern, grid: Grid, iterations: int, *,
               tag: Optional[str] = None,
               deadline_seconds: Optional[float] = None,
               **options: Any) -> SubmitHandle:
        """Deprecated shim: build a :class:`~repro.session.Problem` and admit
        it through :meth:`submit_problem`.

        .. deprecated:: 1.1
           Use :meth:`submit_problem` (or
           ``StencilSession.solve(mode="served")`` for a blocking call).
        """
        warn_legacy("StencilServer.submit()",
                    "StencilServer.submit_problem(Problem(...))")
        problem = Problem(pattern=pattern, grid=grid, iterations=iterations,
                          options=dict(options), tag=tag)
        return self.submit_problem(problem, deadline_seconds=deadline_seconds)

    def submit_request(self, request: Problem, *,
                       deadline_seconds: Optional[float] = None
                       ) -> SubmitHandle:
        """Deprecated alias of :meth:`submit_problem`.

        .. deprecated:: 1.1
           The session layer renamed the request vocabulary: servers accept
           :class:`~repro.session.Problem` via :meth:`submit_problem`.
        """
        warn_legacy("StencilServer.submit_request()",
                    "StencilServer.submit_problem()")
        return self.submit_problem(request, deadline_seconds=deadline_seconds)

    def submit_problem(self, problem: Problem, *,
                       deadline_seconds: Optional[float] = None
                       ) -> SubmitHandle:
        """Admit one :class:`~repro.session.Problem`; returns immediately.

        Raises :class:`~repro.server.queue.QueueFullError` (backpressure),
        :class:`~repro.server.queue.DeadlineExceededError` (dead on arrival),
        :class:`~repro.server.queue.LintRejectedError` (error-severity
        pre-flight findings, when ``lint_admission`` is on) or
        :class:`~repro.server.queue.ServerClosedError` — typed, never a
        silent drop.
        """
        request = problem
        require_positive_int(request.iterations, "iterations")
        if deadline_seconds is None:
            deadline_seconds = self.config.default_deadline_seconds
        deadline = None if deadline_seconds is None \
            else time.perf_counter() + float(deadline_seconds)
        compile_request = request.compile_request()
        if self.config.lint_admission:
            self._lint_admission(request, deadline_seconds)
        span = None
        if self.tracer.enabled:
            # Child of the ambient span when the submitter is inside a
            # traced session.solve(mode="served"); a fresh trace root for
            # direct submissions.
            span = self.tracer.begin(
                "request",
                fingerprint=compile_request.fingerprint,
                pattern=request.pattern.name,
                grid_shape=request.grid_shape,
                iterations=request.iterations,
                tag=request.tag)
        item = QueuedRequest(
            request=request,
            compile_request=compile_request,
            future=Future(),
            deadline=deadline,
            span=span)
        self.telemetry.submitted()
        with self._pending_cond:
            self._pending += 1
        try:
            self.queue.offer(item)
        except ServerError as exc:
            self._settle_pending()
            self.telemetry.rejected(type(exc).__name__)
            if span is not None:
                self.tracer.end(span.set(error=type(exc).__name__))
            raise
        item.future.add_done_callback(lambda _: self._settle_pending())
        return SubmitHandle(item)

    def _lint_admission(self, request: Problem,
                        deadline_seconds: Optional[float]) -> None:
        """The opt-in pre-flight gate (``ServerConfig(lint_admission=True)``).

        Runs the Tier-1 diagnostics against the server's own scheduler and
        compile cache — the one compile it may trigger is the same compile
        dispatch would pay — and rejects requests carrying error-severity
        findings *before* they take a queue slot.  Rejections are counted
        by the server telemetry and under ``lint.rejected`` in the global
        metrics registry.
        """
        from repro.lint.domain import check_problem

        report = check_problem(
            request,
            SolvePolicy(mode="auto", deadline_seconds=deadline_seconds),
            scheduler=self.scheduler, cache=self.cache)
        if report.ok:
            return
        global_registry().counter(
            "lint.rejected",
            "submissions rejected by the admission lint gate").inc()
        self.telemetry.submitted()
        self.telemetry.rejected("LintRejectedError")
        raise LintRejectedError(report)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every accepted request has resolved (ok or error)."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._pending_cond:
            while self._pending > 0:
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"drain timed out with {self._pending} requests "
                        f"in flight")
                self._pending_cond.wait(remaining)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the server.  Idempotent.

        ``drain=True`` (default) serves everything already accepted first;
        ``drain=False`` fails still-queued requests with
        :class:`~repro.server.queue.ServerClosedError`.  Micro-batches
        already *running on devices* always finish — work on devices is
        never abandoned — but batches still *waiting* for a device abort
        the wait and fail with the same typed error (the devices they wait
        for may be leased by the very caller shutting the server down, so
        blocking on them would deadlock).
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if drain:
            self.drain(timeout)
        else:
            # release workers parked on a device wait *before* failing the
            # queue: a worker blocked in route() holds a dispatch slot the
            # dispatcher needs to exit, and the device it waits for may be
            # leased by the very caller of this shutdown
            self._abort_device_wait.set()
            for item in self.queue.drain_pending():
                self._resolve_error(
                    item,
                    ServerClosedError("server shut down before dispatch"),
                    "ServerClosedError")
        self._dispatcher.result(timeout=timeout)
        self._workers.shutdown(wait=True)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def metrics(self) -> Dict[str, Any]:
        """Plain-dict snapshot of every serving metric (see
        :class:`~repro.server.telemetry.ServerTelemetry`)."""
        return self.telemetry.snapshot(queue=self.queue, cache=self.cache,
                                       ledger=self.scheduler.ledger)

    @property
    def pending(self) -> int:
        with self._pending_cond:
            return self._pending

    def __enter__(self) -> "StencilServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # dispatcher (server loop thread)
    # ------------------------------------------------------------------ #
    def _run_loop(self, ready: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        ready.set()
        self._loop.run_forever()

    async def _dispatch_loop(self) -> None:
        while True:
            try:
                batches = await self.coalescer.collect(self.queue)
            except Exception:  # lint: allow-broad-except — counted, loop lives
                # collect() only raises before it has popped anything (its
                # post-pop paths degrade internally), so continuing here
                # cannot strand a request's future — count it, keep serving
                self.telemetry.failed("dispatcher_error")
                continue
            if batches is None:
                return  # queue closed and fully drained
            for batch in batches:
                await self._dispatch_slots.acquire()
                future = self._loop.run_in_executor(
                    self._workers, self._execute_batch, batch)
                # done callbacks run on the loop thread, so releasing the
                # slot here is race-free with the acquire above
                future.add_done_callback(
                    lambda _: self._dispatch_slots.release())

    # ------------------------------------------------------------------ #
    # batch execution (thread-pool workers)
    # ------------------------------------------------------------------ #
    def _trace_dispatch(self, item: QueuedRequest, batch: MicroBatch,
                        dispatch_start: float) -> None:
        """Record the pre-execution phases (queue wait, coalesce window)
        of one request retroactively onto its span."""
        span = item.span
        if span is None:
            return
        self.tracer.record("queue_wait", item.enqueued_at, dispatch_start,
                           parent=span)
        if batch.window_start:
            self.tracer.record("coalesce", batch.window_start,
                               batch.window_end, parent=span,
                               batch_size=batch.size,
                               fingerprint=batch.fingerprint)

    def _execute_batch(self, batch: MicroBatch) -> None:
        dispatch_start = time.perf_counter()
        live = []
        for item in batch.items:
            self._trace_dispatch(item, batch, dispatch_start)
            if item.expired(dispatch_start):
                self._resolve_error(
                    item,
                    DeadlineExceededError(
                        f"deadline exceeded after "
                        f"{item.queue_wait_seconds(dispatch_start) * 1e3:.1f}"
                        f" ms in queue"),
                    "DeadlineExceededError")
            else:
                live.append(item)
        if not live:
            return
        tracer = self.tracer
        try:
            # one compile per fingerprint: every path below (the session's
            # batch engine, the sharded executor's per-shard plans, leftover
            # plans) shares it through the session cache.  The worker thread
            # carries no trace context, so the leader's span is re-bound
            # here; the cache's own lookup span joins under it.
            compile_start = time.perf_counter()
            with tracer.activate(live[0].span):
                compiled = self.cache.get_or_compile(live[0].compile_request)
            compile_end = time.perf_counter()
            for item in live[1:]:
                if item.span is not None:
                    # followers share the leader's lookup; give their traces
                    # the same interval so every request stays auditable
                    tracer.record("cache.lookup", compile_start, compile_end,
                                  parent=item.span, shared_with_batch=True,
                                  fingerprint=item.fingerprint)
            route_start = time.perf_counter()
            try:
                decision, lease = self.scheduler.route(
                    compiled, live[0].request.iterations,
                    cancel=self._abort_device_wait)
            except RouteCancelledError:
                for item in live:
                    self._resolve_error(
                        item,
                        ServerClosedError("server shut down while the "
                                          "batch waited for a device"),
                        "ServerClosedError")
                return
            route_end = time.perf_counter()
            for item in live:
                if item.span is not None:
                    tracer.record("route", route_start, route_end,
                                  parent=item.span,
                                  executor=decision.executor,
                                  devices=decision.devices,
                                  halo_depth=decision.halo_depth,
                                  overlap=decision.overlap,
                                  reason=decision.reason)
            self.telemetry.batch_dispatched(
                len(live), decision.executor, decision.devices)
            modelled = 0.0
            try:
                if decision.sharded:
                    spec = self.scheduler.spec_for(decision, compiled)
                    for item in live:
                        request = item.request
                        plan = rebrand(compiled, item.compile_request)
                        with tracer.activate(item.span):
                            if request.iterations % compiled.temporal_fusion \
                                    == 0:
                                run = self.session.execute_sharded_plan(
                                    plan, request.grid, request.iterations,
                                    devices=spec, cache=self.cache,
                                    halo_depth=decision.halo_depth,
                                    overlap=decision.overlap)
                                kind, used = "sharded", decision.devices
                            else:
                                # non-divisible stragglers on a sharded batch
                                # run single-device (leftover sweeps need it
                                # anyway)
                                run = self.session.execute_plan(
                                    plan, request.grid, request.iterations,
                                    cache=self.cache)
                                kind, used = "single", 1
                        modelled += run.elapsed_seconds
                        self._resolve(item, run, kind, used,
                                      len(live), dispatch_start)
                else:
                    # coalesced single-device batches execute as one unit;
                    # the engine's spans land in the leader's trace
                    with tracer.activate(live[0].span):
                        report = self.session.execute_batch(
                            [item.request for item in live],
                            cache=self.cache,
                            compile_requests=[item.compile_request
                                              for item in live])
                    for item, batch_item in zip(live, report.items):
                        modelled += batch_item.result.elapsed_seconds
                        self._resolve(item, batch_item.result, "single", 1,
                                      len(live), dispatch_start)
            finally:
                self.scheduler.ledger.release(lease,
                                              modelled_seconds=modelled)
        except Exception as exc:  # noqa: BLE001  # lint: allow-broad-except — futures carry the failure
            for item in live:
                if not item.future.done():
                    self._resolve_error(item, exc, type(exc).__name__)

    def _resolve(self, item: QueuedRequest, run: StencilRunResult,
                 executor: str, devices: int, batch_size: int,
                 dispatch_start: float) -> None:
        end = time.perf_counter()
        if item.tag is not None and run.tag != item.tag:
            run = replace(run, tag=item.tag)
        span = item.span
        if span is not None:
            span.set(executor=executor, devices=devices,
                     batch_size=batch_size)
            span.add_device_seconds(run.elapsed_seconds)
            self.tracer.end(span)
        result = ServerResult(
            run=run,
            tag=item.tag,
            fingerprint=item.fingerprint,
            executor=executor,
            devices=devices,
            batch_size=batch_size,
            queue_wait_seconds=dispatch_start - item.enqueued_at,
            service_seconds=end - item.enqueued_at,
            trace_id=span.trace_id if span is not None else "")
        item.future.set_result(result)
        self.telemetry.completed(
            queue_wait_seconds=dispatch_start - item.enqueued_at,
            execute_seconds=end - dispatch_start,
            total_seconds=end - item.enqueued_at)

    def _resolve_error(self, item: QueuedRequest, exc: BaseException,
                       reason: str) -> None:
        if not item.future.done():
            item.future.set_exception(exc)
            self.telemetry.failed(reason)
            if item.span is not None:
                self.tracer.end(item.span.set(error=reason))

    def _settle_pending(self) -> None:
        with self._pending_cond:
            self._pending -= 1
            self._pending_cond.notify_all()

"""Online serving subsystem: queue, coalesce, schedule, execute, observe.

PRs 1–2 built the offline halves of a serving deployment — a
fingerprint-keyed :class:`~repro.service.cache.CompileCache` with the
batched solve engine, and an execution-engine layer with single-device and
sharded executors.  This package is the *online* layer that accepts a stream of
requests and drives those halves as fast as the (simulated) hardware allows:

* :mod:`repro.server.queue` — bounded request queue with synchronous
  admission control, per-request deadlines and typed backpressure
  (:class:`QueueFullError`, :class:`DeadlineExceededError`,
  :class:`ServerClosedError` — a request is served or rejected, never
  silently dropped);
* :mod:`repro.server.coalesce` — micro-batcher grouping queued requests by
  compile fingerprint inside a time/size window, so each distinct plan
  compiles once per dispatch and amortises across every request that shares
  it;
* :mod:`repro.server.scheduler` — device-pool scheduler routing each
  micro-batch to the :class:`~repro.engine.single.SingleDeviceExecutor` or
  the :class:`~repro.engine.sharded.ShardedExecutor` with the existing
  perf/scaling model, leasing devices through the
  :class:`~repro.tcu.occupancy.OccupancyLedger` so occupancy can never
  exceed the pool;
* :mod:`repro.server.telemetry` — rolling p50/p95/p99 latency, queue depth,
  coalescing ratio, cache hit rate and per-device utilization, exported as
  one plain dict;
* :mod:`repro.server.facade` — the synchronous :class:`StencilServer`
  (``submit`` / ``drain`` / ``shutdown``, context manager) exported from
  :mod:`repro`.
"""

from repro.server.queue import (
    DeadlineExceededError,
    LintRejectedError,
    QueuedRequest,
    QueueFullError,
    RequestQueue,
    ServerClosedError,
    ServerError,
)
from repro.server.coalesce import Coalescer, MicroBatch, coalesce
from repro.server.scheduler import DevicePoolScheduler, RoutingDecision
from repro.server.telemetry import RollingLatency, ServerTelemetry
from repro.server.facade import (
    ServerConfig,
    ServerResult,
    StencilServer,
    SubmitHandle,
)

__all__ = [
    "ServerError",
    "QueueFullError",
    "DeadlineExceededError",
    "LintRejectedError",
    "ServerClosedError",
    "QueuedRequest",
    "RequestQueue",
    "Coalescer",
    "MicroBatch",
    "coalesce",
    "DevicePoolScheduler",
    "RoutingDecision",
    "RollingLatency",
    "ServerTelemetry",
    "ServerConfig",
    "ServerResult",
    "SubmitHandle",
    "StencilServer",
]

"""Bounded request queue with admission control and typed backpressure.

The online edge of the serving layer: every :meth:`StencilServer.submit`
lands here.  Admission is decided *synchronously on the submitting thread* —
a full queue, an already-expired deadline, or a closed server each raise a
typed :class:`ServerError` subclass immediately, so a caller is never left
holding a request that was silently dropped.  Accepted requests are handed
to the asyncio dispatcher (the coalescer awaits :meth:`RequestQueue.get`)
through a thread-safe deque plus a loop-side wakeup.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

from repro.service.fingerprint import CompileRequest
from repro.session.problem import Problem
from repro.util.validation import require_positive_int

__all__ = [
    "ServerError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "LintRejectedError",
    "QueuedRequest",
    "RequestQueue",
]


class ServerError(RuntimeError):
    """Base class of every typed serving-layer rejection/failure."""


class QueueFullError(ServerError):
    """Submission rejected because the queue is at its bound (backpressure)."""

    def __init__(self, depth: int, bound: int) -> None:
        super().__init__(
            f"request queue full ({depth}/{bound}); retry later or raise "
            f"queue_bound")
        self.depth = depth
        self.bound = bound


class DeadlineExceededError(ServerError):
    """The request's deadline passed before it could be served."""


class ServerClosedError(ServerError):
    """Submission rejected because the server is shutting down."""


class LintRejectedError(ServerError):
    """Submission rejected by the opt-in pre-flight lint gate
    (``ServerConfig(lint_admission=True)``): the request carries
    error-severity diagnostics and would fail — or waste devices — at
    execution time.  :attr:`report` holds the full
    :class:`repro.lint.DiagnosticReport` so the caller can see every
    finding, not just the summary line."""

    def __init__(self, report: Any) -> None:
        errors = getattr(report, "errors", ())
        summary = "; ".join(f"{d.code}: {d.message}" for d in errors)
        super().__init__(
            f"request rejected by admission lint ({len(errors)} error "
            f"finding(s)): {summary}")
        self.report = report


@dataclass
class QueuedRequest:
    """One admitted solve request travelling through the server.

    The compile request (and its fingerprint) is resolved once at admission,
    on the submitting thread, so the coalescer groups by a precomputed key
    and the dispatcher never re-derives it.
    """

    request: Problem
    compile_request: CompileRequest
    future: Future
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: absolute ``time.perf_counter`` deadline; ``None`` = no deadline
    deadline: Optional[float] = None
    #: per-request trace span (a :class:`repro.obs.Span`), opened at
    #: admission when the server's session traces; ``None`` when disabled
    span: Optional[Any] = None

    @property
    def fingerprint(self) -> str:
        return self.compile_request.fingerprint

    @property
    def tag(self) -> Optional[str]:
        return self.request.tag

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline has passed.  A deadline of exactly ``now``
        counts as expired (``>=``), consistent with admission control: a
        zero-slack request can neither be admitted nor served."""
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline

    def queue_wait_seconds(self, now: Optional[float] = None) -> float:
        return (time.perf_counter() if now is None else now) - self.enqueued_at


class RequestQueue:
    """Bounded multi-producer, single-consumer queue bridging sync and async.

    Producers (:meth:`offer`) run on arbitrary caller threads and never
    block: they are admitted or rejected immediately.  The single consumer
    (the coalescer's :meth:`get`) runs on the server's asyncio loop and is
    woken through ``call_soon_threadsafe``.
    """

    def __init__(self, bound: int = 128) -> None:
        require_positive_int(bound, "bound")
        self.bound = bound
        self._items: Deque[QueuedRequest] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._peak_depth = 0
        self._accepted = 0

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the consumer loop (called once the server loop is running)."""
        self._loop = loop
        self._wakeup = asyncio.Event()

    # ------------------------------------------------------------------ #
    # producer side (any thread, synchronous)
    # ------------------------------------------------------------------ #
    def offer(self, item: QueuedRequest) -> None:
        """Admit ``item`` or raise a typed rejection — never drops silently.

        Raises :class:`ServerClosedError` after :meth:`close`,
        :class:`QueueFullError` at the bound, and
        :class:`DeadlineExceededError` for deadlines that have already
        passed (admission control: a dead-on-arrival request must not take
        a queue slot from a live one).
        """
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is shut down; "
                                        "submission rejected")
            if item.expired():
                # checked before the bound: a dead-on-arrival request is
                # refused for its own reason, full queue or not
                raise DeadlineExceededError(
                    "deadline already exceeded at submission")
            if len(self._items) >= self.bound:
                raise QueueFullError(len(self._items), self.bound)
            self._items.append(item)
            self._accepted += 1
            self._peak_depth = max(self._peak_depth, len(self._items))
        self._notify_consumer()

    def close(self) -> None:
        """Stop admitting; the consumer drains what is queued, then sees EOF."""
        with self._lock:
            self._closed = True
        self._notify_consumer()

    def drain_pending(self) -> List[QueuedRequest]:
        """Remove and return everything still queued (abrupt shutdown path)."""
        with self._lock:
            pending = list(self._items)
            self._items.clear()
        return pending

    def _notify_consumer(self) -> None:
        loop, wakeup = self._loop, self._wakeup
        if loop is not None and wakeup is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(wakeup.set)
            except RuntimeError:
                pass  # loop shut down concurrently; nothing left to wake

    # ------------------------------------------------------------------ #
    # consumer side (server loop, async)
    # ------------------------------------------------------------------ #
    async def get(self, timeout: Optional[float] = None
                  ) -> Optional[QueuedRequest]:
        """Pop the next request; ``None`` means closed-and-empty (EOF).

        Raises :class:`asyncio.TimeoutError` when ``timeout`` elapses with
        nothing queued — the coalescer uses that to end its batching window.
        """
        if self._wakeup is None:
            raise RuntimeError("bind_loop() must run before get()")
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            with self._lock:
                if self._items:
                    return self._items.popleft()
                if self._closed:
                    return None
                self._wakeup.clear()
            remaining = None if deadline is None \
                else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(self._wakeup.wait(), remaining)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    @property
    def accepted(self) -> int:
        with self._lock:
            return self._accepted

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

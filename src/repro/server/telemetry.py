"""Serving-layer telemetry: the numbers an operator's dashboard would show.

Everything is exported as a plain dict (:meth:`ServerTelemetry.snapshot`),
so the metrics can be JSON-serialised by the benchmark harness, rendered by
:mod:`repro.analysis.report`, or scraped by whatever sits in front of the
server.  Latency distributions are kept as bounded rolling windows — a
long-lived server must not grow memory with request count — and percentiles
are computed on demand from the window.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Any, Dict, Optional

# RollingLatency now lives in the observability substrate (re-exported here
# for compatibility): the same rolling-percentile window backs the metrics
# registry's histograms and the occupancy ledger's hold-time stats.
from repro.obs.metrics import RollingLatency, global_registry

__all__ = ["RollingLatency", "ServerTelemetry"]


class ServerTelemetry:
    """Thread-safe counters, gauges and latency windows for one server.

    Metrics glossary (the keys of :meth:`snapshot`):

    * ``submitted / completed / failed`` — request outcomes; admission
      rejections are split by reason under ``rejected``, post-admission
      failures under ``failures`` — the two never mix.
    * ``queue`` — live depth, peak depth and the admission bound.
    * ``coalescing`` — dispatched requests vs micro-batches; the ratio is
      requests *per plan dispatch* (1.0 means no sharing was won).
    * ``latency`` — rolling p50/p95/p99 of queue wait, execution, and total
      (submit → result) time.
    * ``routing`` — micro-batches sent to each executor kind.
    * ``cache`` — the compile cache's lifetime counters (hit rate is the
      serving-economics headline).
    * ``devices`` — pool occupancy from the ledger: in-use, peak, and
      per-device busy time.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._started_at = time.perf_counter()
        self._counters: Counter = Counter()
        self._rejections: Counter = Counter()
        self._failures: Counter = Counter()
        self._routing: Counter = Counter()
        self.queue_wait = RollingLatency(latency_window)
        self.execute = RollingLatency(latency_window)
        self.total = RollingLatency(latency_window)
        # Re-register into the process-wide metrics registry (weakref'd: a
        # garbage-collected server drops out of the unified snapshot).
        self.metrics_section = global_registry().register_provider(
            "server", self.snapshot)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def submitted(self) -> None:
        with self._lock:
            self._counters["submitted"] += 1

    def rejected(self, reason: str) -> None:
        with self._lock:
            self._counters["rejected"] += 1
            self._rejections[reason] += 1

    def batch_dispatched(self, size: int, executor: str,
                         devices: int) -> None:
        with self._lock:
            self._counters["batches_dispatched"] += 1
            self._counters["requests_dispatched"] += size
            self._routing[executor] += 1
            self._routing[f"{executor}_device_leases"] += devices

    def completed(self, queue_wait_seconds: float, execute_seconds: float,
                  total_seconds: float) -> None:
        with self._lock:
            self._counters["completed"] += 1
            self.queue_wait.record(max(0.0, queue_wait_seconds))
            self.execute.record(max(0.0, execute_seconds))
            self.total.record(max(0.0, total_seconds))

    def failed(self, reason: str) -> None:
        with self._lock:
            self._counters["failed"] += 1
            self._failures[reason] += 1

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def coalescing_ratio(self) -> float:
        """Requests dispatched per micro-batch (per distinct-plan dispatch)."""
        with self._lock:
            batches = self._counters["batches_dispatched"]
            requests = self._counters["requests_dispatched"]
        return requests / batches if batches else 0.0

    @property
    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started_at

    @property
    def throughput_per_second(self) -> float:
        uptime = self.uptime_seconds
        with self._lock:
            completed = self._counters["completed"]
        return completed / uptime if uptime > 0 else 0.0

    def snapshot(self,
                 queue: Optional[Any] = None,
                 cache: Optional[Any] = None,
                 ledger: Optional[Any] = None) -> Dict[str, Any]:
        """One internally consistent plain-dict export of every metric.

        ``queue``, ``cache`` and ``ledger`` (a
        :class:`repro.server.queue.RequestQueue`, a
        :class:`repro.service.CompileCache` and a
        :class:`repro.tcu.occupancy.OccupancyLedger`) contribute their own
        sections when provided.

        Every derived quantity (``throughput_per_second``,
        ``coalescing.ratio``) is computed from the counters copied under
        *one* lock acquisition — re-reading the live properties afterward
        would let a concurrent completion tear the export (e.g. a
        throughput computed over more completions than the ``completed``
        field reports).
        """
        with self._lock:
            uptime = time.perf_counter() - self._started_at
            counters = dict(self._counters)
            rejections = dict(self._rejections)
            failures = dict(self._failures)
            routing = dict(self._routing)
            latency = {
                "queue_wait": self.queue_wait.as_dict(),
                "execute": self.execute.as_dict(),
                "total": self.total.as_dict(),
            }
        completed = counters.get("completed", 0)
        requests = counters.get("requests_dispatched", 0)
        batches = counters.get("batches_dispatched", 0)
        snapshot: Dict[str, Any] = {
            "uptime_seconds": uptime,
            "submitted": counters.get("submitted", 0),
            "completed": completed,
            "failed": counters.get("failed", 0),
            "rejected": {"total": counters.get("rejected", 0), **rejections},
            "failures": {"total": counters.get("failed", 0), **failures},
            "throughput_per_second": completed / uptime if uptime > 0 else 0.0,
            "coalescing": {
                "requests_dispatched": requests,
                "batches_dispatched": batches,
                "ratio": requests / batches if batches else 0.0,
            },
            "routing": routing,
            "latency": latency,
        }
        if queue is not None:
            snapshot["queue"] = {
                "depth": queue.depth,
                "peak_depth": queue.peak_depth,
                "bound": queue.bound,
                "accepted": queue.accepted,
            }
        if cache is not None:
            snapshot["cache"] = cache.snapshot_stats().as_dict()
        if ledger is not None:
            snapshot["devices"] = ledger.snapshot()
        return snapshot

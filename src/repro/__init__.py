"""SparStencil reproduction.

A Python reproduction of *SparStencil: Retargeting Sparse Tensor Cores to
Scientific Stencil Computations via Structured Sparsity Transformation*
(SC'25).  The package contains:

* :mod:`repro.stencils` — stencil patterns, grids, golden references and the
  benchmark catalog;
* :mod:`repro.tcu` — a functional + cost model of an A100-class GPU with
  dense and 2:4-sparse Tensor Cores;
* :mod:`repro.core` — the paper's contribution: Adaptive Layout Morphing,
  Structured Sparsity Conversion and Automatic Kernel Generation;
* :mod:`repro.baselines` — cuDNN / AMOS / Brick / DRStencil / TCStencil /
  ConvStencil comparators on the same simulated device;
* :mod:`repro.analysis` — metrics, sparsity/utilisation/overhead analysis and
  the per-figure experiment support.

Quickstart
----------
>>> from repro import StencilPattern, make_grid, compile_stencil, run_stencil
>>> heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1])
>>> grid = make_grid((64, 64), kind="gaussian")
>>> compiled = compile_stencil(heat, grid.shape)
>>> result = run_stencil(compiled, grid, iterations=4)
>>> result.output.shape
(64, 64)
"""

from repro.stencils import (
    StencilPattern,
    StencilKind,
    Grid,
    make_grid,
    apply_stencil_reference,
    run_stencil_iterations,
    table2_benchmarks,
    get_benchmark,
    full_catalog,
    catalog_by_domain,
)
from repro.tcu import (
    DataType,
    FragmentShape,
    GPUSpec,
    A100_SPEC,
    SPARSE_FRAGMENTS,
    DENSE_FRAGMENTS,
)
from repro.core import (
    MorphConfig,
    morph_stencil,
    convert_to_24,
    search_layout,
    generate_kernel,
    render_cuda_source,
    compile_stencil,
    run_stencil,
    SparStencilCompiler,
)
from repro.core.pipeline import sparstencil_solve
from repro.baselines import get_baseline, available_baselines, all_methods
from repro.analysis import compare_methods

__version__ = "1.0.0"

__all__ = [
    "StencilPattern",
    "StencilKind",
    "Grid",
    "make_grid",
    "apply_stencil_reference",
    "run_stencil_iterations",
    "table2_benchmarks",
    "get_benchmark",
    "full_catalog",
    "catalog_by_domain",
    "DataType",
    "FragmentShape",
    "GPUSpec",
    "A100_SPEC",
    "SPARSE_FRAGMENTS",
    "DENSE_FRAGMENTS",
    "MorphConfig",
    "morph_stencil",
    "convert_to_24",
    "search_layout",
    "generate_kernel",
    "render_cuda_source",
    "compile_stencil",
    "run_stencil",
    "sparstencil_solve",
    "SparStencilCompiler",
    "get_baseline",
    "available_baselines",
    "all_methods",
    "compare_methods",
    "__version__",
]

"""SparStencil reproduction.

A Python reproduction of *SparStencil: Retargeting Sparse Tensor Cores to
Scientific Stencil Computations via Structured Sparsity Transformation*
(SC'25).  The package contains:

* :mod:`repro.stencils` — stencil patterns, grids, boundary conditions
  (``dirichlet`` / ``periodic`` / ``reflect`` / ``neumann(flux=...)``),
  golden references and the benchmark catalog;
* :mod:`repro.tcu` — a functional + cost model of an A100-class GPU with
  dense and 2:4-sparse Tensor Cores;
* :mod:`repro.core` — the paper's contribution: Adaptive Layout Morphing,
  Structured Sparsity Conversion and Automatic Kernel Generation;
* :mod:`repro.baselines` — cuDNN / AMOS / Brick / DRStencil / TCStencil /
  ConvStencil comparators on the same simulated device;
* :mod:`repro.analysis` — metrics, sparsity/utilisation/overhead analysis and
  the per-figure experiment support;
* :mod:`repro.service` — the serving layer: an LRU compilation cache keyed by
  canonical compile fingerprints, plus the batched solve engine that
  compiles each distinct plan once and sweeps every request;
* :mod:`repro.server` — the online layer: a bounded request queue with
  backpressure and deadlines, a fingerprint-coalescing micro-batcher, a
  device-pool scheduler and the synchronous :class:`StencilServer` facade;
* :mod:`repro.session` — the unified front door: a :class:`StencilSession`
  that takes a typed :class:`Problem` plus a :class:`SolvePolicy`
  (``auto | single | sharded | served | baseline:<name>``) and returns a
  uniform :class:`Solution` with provenance of which engine actually ran;
* :mod:`repro.programs` — multi-stage stencil programs: a
  :class:`StencilProgram` DAG of named stages compiled stage-by-stage
  through the cache into one program fingerprint, executed with one
  boundary fill per stage and cross-stage fused halo exchanges when
  sharded (``Problem(program=...)`` routes here);
* :mod:`repro.lint` — two-tier static analysis: Tier-1 domain pre-flight
  diagnostics (``session.check(problem)``, ``program.lint()``, the opt-in
  :class:`StencilServer` admission gate) and a Tier-2 AST linter enforcing
  the repo's own invariants (``python -m repro.lint src/``), both speaking
  one :class:`Diagnostic` vocabulary of ``SPxxx`` codes;
* :mod:`repro.obs` — observability: a structured :class:`Tracer` whose spans
  follow a request end to end (queue wait, coalescing, routing, compiles,
  per-round sweeps and halo exchanges), a process-wide
  :class:`MetricsRegistry` unifying server/cache/device metrics, and JSONL /
  Chrome trace-event exporters (load the latter in Perfetto).

Quickstart
----------
>>> from repro import Problem, StencilPattern, StencilSession, make_grid
>>> heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1])
>>> grid = make_grid((64, 64), kind="gaussian")
>>> session = StencilSession()
>>> solution = session.solve(Problem(heat, grid, iterations=4))
>>> solution.output.shape
(64, 64)
>>> solution.provenance.executor
'single'

Repeated solves hit the session's compilation cache — a warm hit skips
layout morphing, sparsity conversion and the layout search entirely:

>>> again = session.solve(Problem(heat, grid, iterations=4))   # cache hit
>>> session.cache.stats.hits, session.cache.stats.misses
(1, 1)

The pre-session entry points (``run_stencil``, ``sparstencil_solve``,
``solve_many``, ``solve_sharded``, ``StencilServer.submit``) remain as
deprecation-warning shims delegating to the default session; the README's
"Session API" section has the migration table.
"""

from repro.stencils import (
    StencilPattern,
    StencilKind,
    BoundaryCondition,
    BOUNDARY_CONDITIONS,
    apply_boundary,
    boundary_flux,
    boundary_kind,
    neumann,
    normalize_boundary,
    Grid,
    GridPartition,
    make_grid,
    apply_stencil_reference,
    run_stencil_iterations,
    table2_benchmarks,
    get_benchmark,
    full_catalog,
    catalog_by_domain,
)
from repro.tcu import (
    DataType,
    FragmentShape,
    GPUSpec,
    MultiDeviceSpec,
    A100_SPEC,
    SPARSE_FRAGMENTS,
    DENSE_FRAGMENTS,
    multi_a100,
)
from repro.core import (
    MorphConfig,
    morph_stencil,
    convert_to_24,
    search_layout,
    search_layout_many,
    generate_kernel,
    render_cuda_source,
    compile_stencil,
    run_stencil,
    SparStencilCompiler,
    StencilBackend,
    register_backend,
    get_backend,
    resolve_backend,
    registered_backends,
    available_backends,
)
from repro.core.pipeline import sparstencil_solve
from repro.service import (
    CompileCache,
    CompileRequest,
    SolveRequest,
    BatchReport,
    solve_many,
    run_stencil_batch,
    solve_sharded,
)
from repro.server import (
    StencilServer,
    ServerConfig,
    ServerResult,
    QueueFullError,
    DeadlineExceededError,
    LintRejectedError,
    ServerClosedError,
)
from repro.lint import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    check_problem,
    lint_program,
    rule_table,
)
from repro.engine import (
    SweepExecutor,
    SingleDeviceExecutor,
    ShardedExecutor,
    ShardedRunResult,
)
from repro.baselines import get_baseline, available_baselines, all_methods
from repro.analysis import (
    cache_amortization,
    compare_methods,
    program_fusion_summary,
    sharded_scaling,
)
from repro.programs import (
    STATE,
    ProgramPlan,
    ProgramRunner,
    ProgramStage,
    ShardedProgramRunner,
    StencilProgram,
    compile_program,
    model_program,
    run_program_reference,
)
from repro.session import (
    Problem,
    SolvePolicy,
    Provenance,
    Solution,
    ExecutorRegistry,
    SessionConfig,
    StencilSession,
    default_session,
)
from repro.obs import (
    Span,
    Tracer,
    NULL_TRACER,
    current_span,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)

__version__ = "1.2.0"

__all__ = [
    "StencilPattern",
    "StencilKind",
    "BoundaryCondition",
    "BOUNDARY_CONDITIONS",
    "apply_boundary",
    "boundary_flux",
    "boundary_kind",
    "neumann",
    "normalize_boundary",
    "Grid",
    "GridPartition",
    "make_grid",
    "apply_stencil_reference",
    "run_stencil_iterations",
    "table2_benchmarks",
    "get_benchmark",
    "full_catalog",
    "catalog_by_domain",
    "DataType",
    "FragmentShape",
    "GPUSpec",
    "MultiDeviceSpec",
    "A100_SPEC",
    "multi_a100",
    "SPARSE_FRAGMENTS",
    "DENSE_FRAGMENTS",
    "MorphConfig",
    "morph_stencil",
    "convert_to_24",
    "search_layout",
    "generate_kernel",
    "render_cuda_source",
    "compile_stencil",
    "run_stencil",
    "sparstencil_solve",
    "SparStencilCompiler",
    "search_layout_many",
    "StencilBackend",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "registered_backends",
    "available_backends",
    "CompileCache",
    "CompileRequest",
    "SolveRequest",
    "BatchReport",
    "solve_many",
    "run_stencil_batch",
    "solve_sharded",
    "StencilServer",
    "ServerConfig",
    "ServerResult",
    "QueueFullError",
    "DeadlineExceededError",
    "LintRejectedError",
    "ServerClosedError",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "check_problem",
    "lint_program",
    "rule_table",
    "SweepExecutor",
    "SingleDeviceExecutor",
    "ShardedExecutor",
    "ShardedRunResult",
    "get_baseline",
    "available_baselines",
    "all_methods",
    "cache_amortization",
    "compare_methods",
    "program_fusion_summary",
    "sharded_scaling",
    "STATE",
    "ProgramStage",
    "StencilProgram",
    "ProgramPlan",
    "ProgramRunner",
    "ShardedProgramRunner",
    "compile_program",
    "model_program",
    "run_program_reference",
    "Problem",
    "SolvePolicy",
    "Provenance",
    "Solution",
    "ExecutorRegistry",
    "SessionConfig",
    "StencilSession",
    "default_session",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_span",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "__version__",
]

"""Shared utilities for the SparStencil reproduction.

The helpers here are intentionally small and dependency free (numpy only):
validation of user input, lightweight timing, deterministic RNG handling and
a couple of array-shape helpers used across the substrates.
"""

from repro.util.validation import (
    require,
    require_positive_int,
    require_in,
    require_array,
    require_dtype,
    ValidationError,
)
from repro.util.timing import Timer, StageTimer
from repro.util.arrays import (
    ceil_div,
    pad_to_multiple,
    as_contiguous,
    sliding_windows_1d,
    block_view_2d,
)
from repro.util.rng import default_rng
from repro.util.parallel import default_workers, parallel_map

__all__ = [
    "require",
    "require_positive_int",
    "require_in",
    "require_array",
    "require_dtype",
    "ValidationError",
    "Timer",
    "StageTimer",
    "ceil_div",
    "pad_to_multiple",
    "as_contiguous",
    "sliding_windows_1d",
    "block_view_2d",
    "default_rng",
    "default_workers",
    "parallel_map",
]

"""Input validation helpers.

All public entry points of the library validate their arguments through the
functions in this module so that error messages are uniform and the failure
mode is an explicit :class:`ValidationError` rather than a numpy broadcast
surprise deep inside a transformation.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "require",
    "require_positive_int",
    "require_non_negative_int",
    "require_in",
    "require_array",
    "require_dtype",
    "require_odd",
]


class ValidationError(ValueError):
    """Raised when a public API receives an argument it cannot work with."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValidationError(message)


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return int(value)


def require_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return int(value)


def require_odd(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive odd integer (stencil diameters)."""
    ivalue = require_positive_int(value, name)
    if ivalue % 2 == 0:
        raise ValidationError(f"{name} must be odd, got {ivalue}")
    return ivalue


def require_in(value: Any, options: Iterable[Any], name: str) -> Any:
    """Validate that ``value`` is one of ``options``."""
    opts = list(options)
    if value not in opts:
        raise ValidationError(f"{name} must be one of {opts!r}, got {value!r}")
    return value


def require_array(
    value: Any,
    name: str,
    *,
    ndim: int | None = None,
    min_shape: Sequence[int] | None = None,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate its dimensionality/shape."""
    arr = np.asarray(value)
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if min_shape is not None:
        if arr.ndim != len(min_shape):
            raise ValidationError(
                f"{name} must have ndim={len(min_shape)}, got ndim={arr.ndim}"
            )
        for axis, (actual, minimum) in enumerate(zip(arr.shape, min_shape)):
            if actual < minimum:
                raise ValidationError(
                    f"{name} axis {axis} must have size >= {minimum}, got {actual}"
                )
    return arr


def require_dtype(value: np.ndarray, dtypes: Iterable[Any], name: str) -> np.ndarray:
    """Validate that ``value`` has one of the allowed dtypes."""
    allowed = [np.dtype(d) for d in dtypes]
    if value.dtype not in allowed:
        raise ValidationError(
            f"{name} must have dtype in {[str(d) for d in allowed]}, got {value.dtype}"
        )
    return value

"""Small thread-pool helpers shared by the layout search and solve service.

The compile pipeline is pure Python/numpy, so independent jobs parallelise
well on threads (numpy releases the GIL in the hot loops).  One shared
worker heuristic and fan-out keeps the callers from drifting apart.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["default_workers", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers(jobs: int) -> int:
    """Worker count for ``jobs`` independent tasks: leave one core for the
    caller, never exceed the job count, always at least one."""
    return min(max(jobs, 1), max(1, (os.cpu_count() or 2) - 1))


def parallel_map(fn: Callable[[T], R], items: Sequence[T],
                 max_workers: Optional[int] = None) -> List[R]:
    """Apply ``fn`` to every item, in order, on a bounded thread pool.

    Falls back to a plain loop for a single item or a single worker; the
    first exception propagates (matching the sequential behaviour).
    """
    items = list(items)
    if not items:
        return []
    if max_workers is None:
        max_workers = default_workers(len(items))
    if max_workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

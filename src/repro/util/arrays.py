"""Array-shape helpers shared across the substrates.

These follow the numpy performance idioms from the HPC guides: favour
views / ``as_strided``-free reshapes over Python loops, keep arrays
C-contiguous before handing them to the MMA models, and pre-allocate outputs.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_positive_int, require_non_negative_int

__all__ = [
    "ceil_div",
    "pad_to_multiple",
    "as_contiguous",
    "sliding_windows_1d",
    "block_view_2d",
]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    require_non_negative_int(a, "a")
    require_positive_int(b, "b")
    return -(-a // b)


def pad_to_multiple(array: np.ndarray, multiple: int, axis: int = -1) -> np.ndarray:
    """Zero-pad ``array`` along ``axis`` so its size is a multiple of ``multiple``.

    Returns the original array when no padding is needed (no copy).
    """
    require_positive_int(multiple, "multiple")
    size = array.shape[axis]
    target = ceil_div(size, multiple) * multiple
    if target == size:
        return array
    pad_width = [(0, 0)] * array.ndim
    pad_width[axis if axis >= 0 else array.ndim + axis] = (0, target - size)
    return np.pad(array, pad_width, mode="constant")


def as_contiguous(array: np.ndarray, dtype=None) -> np.ndarray:
    """Return a C-contiguous version of ``array`` (no copy when already so)."""
    return np.ascontiguousarray(array, dtype=dtype)


def sliding_windows_1d(array: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """Return overlapping windows of ``array`` as rows of a 2-D array.

    Uses :func:`numpy.lib.stride_tricks.sliding_window_view` (a view) and only
    copies when a non-unit stride forces it.
    """
    require_positive_int(window, "window")
    require_positive_int(stride, "stride")
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got ndim={array.ndim}")
    if array.shape[0] < window:
        return np.empty((0, window), dtype=array.dtype)
    view = np.lib.stride_tricks.sliding_window_view(array, window)
    return view[::stride]


def block_view_2d(array: np.ndarray, block_rows: int, block_cols: int) -> np.ndarray:
    """Return a 4-D view ``(n_block_rows, n_block_cols, block_rows, block_cols)``.

    The array extents must be exact multiples of the block sizes.
    """
    require_positive_int(block_rows, "block_rows")
    require_positive_int(block_cols, "block_cols")
    rows, cols = array.shape
    if rows % block_rows or cols % block_cols:
        raise ValueError(
            f"array shape {array.shape} is not divisible into "
            f"{block_rows}x{block_cols} blocks"
        )
    reshaped = array.reshape(rows // block_rows, block_rows, cols // block_cols, block_cols)
    return reshaped.swapaxes(1, 2)

"""Deterministic random number generation.

Benchmarks and examples must be reproducible run to run, so every workload
generator takes a seed and obtains its generator through :func:`default_rng`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "DEFAULT_SEED"]

#: Seed used when callers do not provide one (keeps benches reproducible).
DEFAULT_SEED = 20250617


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)

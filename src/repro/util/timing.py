"""Lightweight wall-clock timing helpers.

The simulated GPU reports *modelled* time; these timers measure the *host*
cost of the transformation itself (used by the preprocessing-overhead
analysis that reproduces Figure 8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager

__all__ = ["Timer", "StageTimer"]


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Accumulates named stage timings (transformation / metadata / LUT ...)."""

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        return sum(self.stages.values())

    def fractions(self) -> Dict[str, float]:
        """Return each stage's share of the total (0 when nothing was timed)."""
        total = self.total()
        if total <= 0.0:
            return {name: 0.0 for name in self.stages}
        return {name: value / total for name, value in self.stages.items()}

"""Deprecation plumbing for the legacy (pre-session) API surface.

Every legacy entry point that now delegates to the session layer funnels its
warning through :func:`warn_legacy`, so the message format (and the pointer
to the README migration table) stays uniform.  ``stacklevel`` is chosen so
the warning is attributed to the *caller* of the shim — the test suite's
warning filter turns repro-internal DeprecationWarnings into errors, which
guarantees the package never calls its own shims.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy"]


def warn_legacy(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard legacy-API DeprecationWarning.

    ``stacklevel=3`` attributes the warning to the shim's caller when called
    directly from the shim body (warn_legacy → shim → caller); shims with a
    deeper frame chain (dataclass ``__post_init__``) pass their own.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        f"(see the 'Session API' migration table in the README)",
        DeprecationWarning, stacklevel=stacklevel)

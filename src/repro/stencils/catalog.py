"""Benchmark catalog.

Two kernel collections are defined here:

* :func:`table2_benchmarks` — the eight benchmark kernels of Table 2 of the
  paper (Heat-1D, 1D5P, Heat-2D, Box-2D9P, Star-2D13P, Box-2D49P, Heat-3D,
  Box-3D27P) together with the paper's problem sizes and thread-block shapes.
  Benchmarks in this repository run on a simulated GPU, so each
  :class:`BenchmarkConfig` also carries a scaled-down ``sim_grid`` /
  ``sim_iterations`` actually executed; the paper-sized configuration is kept
  so the cost model can be evaluated at full scale.

* :func:`full_catalog` — the 79-kernel suite spanning 9 application domains
  used by Figure 10.  The paper does not list the individual kernels, so the
  suite is generated from the domain constructors in
  :mod:`repro.stencils.domains`, matching the paper's described diversity
  (PDE solvers, fluid dynamics, LBM, phase field, geophysics, ...) and its
  kernel count exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.stencils import domains as dom
from repro.stencils.pattern import StencilPattern
from repro.util.validation import ValidationError, require

__all__ = [
    "BenchmarkConfig",
    "table2_benchmarks",
    "get_benchmark",
    "full_catalog",
    "catalog_by_domain",
    "DOMAINS",
]

#: The nine application domains of Figure 10.
DOMAINS: Tuple[str, ...] = (
    "pde_solvers",
    "heat_diffusion",
    "fluid_dynamics",
    "lattice_boltzmann",
    "phase_field",
    "geophysics_seismic",
    "weather_climate",
    "electromagnetics",
    "image_ml",
)


@dataclass(frozen=True)
class BenchmarkConfig:
    """One row of Table 2 (plus the scaled simulation configuration).

    Attributes
    ----------
    name:
        Kernel name as it appears in the paper.
    pattern:
        The stencil pattern.
    problem_size:
        Paper problem size.  For 1D kernels this is ``(N, T)``; for 2D,
        ``(N, N, T)``; for 3D, ``(N, N, N, T)`` where ``T`` is the iteration
        count — mirroring how Table 2 folds iterations into the size column.
    block:
        CUDA thread-block shape from Table 2 (used by the cost model to set
        tile sizes).
    sim_grid:
        Grid extents actually executed by the simulator (scaled down).
    sim_iterations:
        Iterations actually executed by the simulator.
    boundary:
        Boundary condition the benchmark is timed under.  The Table-2
        configurations all use the paper's fixed-halo ``"dirichlet"``
        setup; :meth:`with_boundary` derives the ``"periodic"`` /
        ``"reflect"`` variants the boundary-condition goldens freeze.
    """

    name: str
    pattern: StencilPattern
    problem_size: Tuple[int, ...]
    block: Tuple[int, ...]
    sim_grid: Tuple[int, ...]
    sim_iterations: int = 2
    boundary: str = "dirichlet"

    def with_boundary(self, boundary: str) -> "BenchmarkConfig":
        """The same benchmark timed under a different boundary condition."""
        from dataclasses import replace

        from repro.stencils.boundary import normalize_boundary

        return replace(self, boundary=normalize_boundary(boundary))

    @property
    def paper_grid(self) -> Tuple[int, ...]:
        """Paper grid extents (problem size without the iteration count)."""
        return self.problem_size[:-1]

    @property
    def paper_iterations(self) -> int:
        return int(self.problem_size[-1])


def _star2d13p() -> StencilPattern:
    """Star-2D13P: radius-2 star in 2D (13 points) with Jacobi-ish weights."""
    pattern = dom.high_order_star(2, 6, name="star-2d13p")
    return pattern


def table2_benchmarks() -> List[BenchmarkConfig]:
    """The eight Table-2 benchmark kernels with paper and simulation sizes."""
    return [
        BenchmarkConfig(
            name="Heat-1D",
            pattern=dom.heat_1d(),
            problem_size=(10_240_000, 10_000),
            block=(1024,),
            sim_grid=(16_384,),
        ),
        BenchmarkConfig(
            name="1D5P",
            pattern=dom.high_order_star(1, 4, name="1d5p"),
            problem_size=(10_240_000, 10_000),
            block=(1024,),
            sim_grid=(16_384,),
        ),
        BenchmarkConfig(
            name="Heat-2D",
            pattern=dom.heat_2d(),
            problem_size=(10_240, 10_240, 10_240),
            block=(32, 64),
            sim_grid=(256, 256),
        ),
        BenchmarkConfig(
            name="Box-2D9P",
            pattern=dom.box_average(2, 1, name="box-2d9p"),
            problem_size=(10_240, 10_240, 10_240),
            block=(32, 64),
            sim_grid=(256, 256),
        ),
        BenchmarkConfig(
            name="Star-2D13P",
            pattern=_star2d13p(),
            problem_size=(10_240, 10_240, 10_240),
            block=(32, 64),
            sim_grid=(256, 256),
        ),
        BenchmarkConfig(
            name="Box-2D49P",
            pattern=dom.box_average(2, 3, name="box-2d49p"),
            problem_size=(10_240, 10_240, 10_240),
            block=(32, 64),
            sim_grid=(256, 256),
        ),
        BenchmarkConfig(
            name="Heat-3D",
            pattern=dom.heat_3d(),
            problem_size=(1024, 1024, 1024, 1024),
            block=(8, 64),
            sim_grid=(48, 48, 48),
        ),
        BenchmarkConfig(
            name="Box-3D27P",
            pattern=dom.lbm_d3q27().with_weights([1.0 / 27.0] * 27),
            problem_size=(1024, 1024, 1024, 1024),
            block=(8, 64),
            sim_grid=(48, 48, 48),
        ),
    ]


def get_benchmark(name: str) -> BenchmarkConfig:
    """Return a Table-2 benchmark by (case-insensitive) name."""
    for config in table2_benchmarks():
        if config.name.lower() == name.lower():
            return config
    known = [c.name for c in table2_benchmarks()]
    raise ValidationError(f"unknown benchmark {name!r}; known benchmarks: {known}")


# --------------------------------------------------------------------------- #
# The 79-kernel, 9-domain suite (Figure 10)
# --------------------------------------------------------------------------- #
def _pde_solver_kernels() -> List[StencilPattern]:
    kernels = [
        dom.poisson_jacobi_2d(),
        dom.poisson_jacobi_3d(),
        dom.biharmonic_2d(),
        dom.box_average(2, 1, name="box-2d9p"),
        dom.box_average(2, 2, name="box-2d25p"),
        dom.box_average(2, 3, name="box-2d49p"),
        dom.box_average(3, 1, name="box-3d27p"),
        dom.high_order_star(2, 6, name="star-2d13p"),
        dom.high_order_star(2, 8, name="star-2d17p"),
    ]
    return kernels


def _heat_diffusion_kernels() -> List[StencilPattern]:
    kernels = [
        dom.heat_1d(),
        dom.heat_2d(),
        dom.heat_3d(),
        dom.anisotropic_diffusion_2d(),
        dom.heat_1d(alpha=0.25),
        dom.heat_2d(alpha=0.2),
        dom.high_order_star(1, 4, name="heat-1d-o4"),
        dom.high_order_star(1, 8, name="heat-1d-o8"),
        dom.high_order_star(3, 4, name="heat-3d-o4"),
    ]
    kernels[4] = dom.tagged(
        kernels[4].with_weights(kernels[4].weights), "heat_diffusion")
    # give the alpha variants distinct names so the catalog has unique entries
    kernels[4] = _renamed(kernels[4], "heat-1d-fast")
    kernels[5] = _renamed(kernels[5], "heat-2d-fast")
    for k in (kernels[6], kernels[7], kernels[8]):
        k.metadata["domain"] = "heat_diffusion"
    return kernels


def _fluid_dynamics_kernels() -> List[StencilPattern]:
    return [
        dom.advection_diffusion_2d(),
        dom.advection_diffusion_2d(velocity=(0.2, 0.6)),
        dom.upwind_advection_1d(),
        dom.vorticity_2d(),
        dom.pressure_poisson_3d(),
        dom.advection_diffusion_2d(velocity=(0.8, 0.1), alpha=0.02),
        dom.box_average(2, 2, name="les-filter-2d25p"),
        dom.high_order_star(2, 8, name="ns-highorder-2d"),
        dom.high_order_star(3, 2, name="ns-viscous-3d"),
    ][0:9]


def _lbm_kernels() -> List[StencilPattern]:
    kernels = [
        dom.lbm_d2q9(),
        dom.lbm_d3q19(),
        dom.lbm_d3q27(),
        dom.box_average(2, 1, name="lbm-bgk-2d"),
        dom.box_average(3, 1, name="lbm-bgk-3d"),
        dom.lbm_d2q9().with_weights(np.full(9, 1.0 / 9.0)),
        dom.gaussian_blur_2d(radius=1, sigma=0.8, name="lbm-regularized-2d"),
        dom.high_order_star(2, 2, name="lbm-mrt-2d"),
    ]
    kernels[5] = _renamed(kernels[5], "lbm-d2q9-uniform")
    for k in kernels:
        k.metadata["domain"] = "lattice_boltzmann"
    return kernels


def _phase_field_kernels() -> List[StencilPattern]:
    return [
        dom.allen_cahn_2d(),
        dom.allen_cahn_2d(mobility=0.2),
        dom.cahn_hilliard_2d(),
        dom.phase_field_crystal_2d(),
        dom.box_average(2, 2, name="pf-interface-2d"),
        dom.high_order_star(2, 4, name="pf-gradient-2d"),
        dom.box_average(3, 1, name="pf-3d27p"),
        dom.high_order_star(3, 2, name="pf-laplacian-3d"),
    ]


def _geophysics_kernels() -> List[StencilPattern]:
    return [
        dom.acoustic_wave(1, 8, name="acoustic-1d-o8"),
        dom.acoustic_wave(2, 4, name="acoustic-2d-o4"),
        dom.acoustic_wave(2, 8, name="acoustic-2d-o8"),
        dom.acoustic_wave(3, 2, name="acoustic-3d-o2"),
        dom.acoustic_wave(3, 4, name="acoustic-3d-o4"),
        dom.acoustic_wave(3, 8, name="acoustic-3d-o8"),
        dom.elastic_wave_2d(),
        dom.gaussian_blur_2d(radius=2, sigma=1.5, name="seismic-smoother-2d"),
        dom.box_average(2, 3, name="migration-filter-2d"),
    ]


def _weather_kernels() -> List[StencilPattern]:
    return [
        dom.shallow_water_2d(),
        dom.smagorinsky_filter_2d(),
        dom.advection_diffusion_2d(velocity=(0.3, 0.3), alpha=0.1),
        dom.box_average(2, 2, name="wrf-filter-2d25p"),
        dom.high_order_star(2, 6, name="wrf-advection-2d"),
        dom.heat_3d(alpha=0.02),
        dom.box_average(3, 1, name="climate-filter-3d"),
        dom.gaussian_blur_2d(radius=3, sigma=2.0, name="analysis-smoother-2d"),
        dom.high_order_star(3, 4, name="gcm-dynamics-3d"),
    ]


def _em_kernels() -> List[StencilPattern]:
    return [
        dom.fdtd_curl_2d(),
        dom.fdtd_3d(),
        dom.high_order_star(2, 2, name="fdtd-2d-o2"),
        dom.high_order_star(2, 4, name="fdtd-2d-o4"),
        dom.high_order_star(3, 2, name="fdtd-3d-o2"),
        dom.box_average(2, 1, name="em-averaging-2d"),
        dom.gaussian_blur_2d(radius=1, sigma=1.2, name="em-pml-filter"),
        dom.high_order_star(1, 2, name="transmission-line-1d"),
        dom.box_average(3, 1, name="em-subcell-3d"),
    ]


def _image_ml_kernels() -> List[StencilPattern]:
    return [
        dom.gaussian_blur_2d(radius=1),
        dom.gaussian_blur_2d(radius=2),
        dom.gaussian_blur_2d(radius=3),
        dom.sobel_2d(),
        dom.laplacian_of_gaussian_2d(),
        dom.box_average(2, 1, name="box-filter-3x3"),
        dom.box_average(2, 2, name="box-filter-5x5"),
        dom.box_average(2, 3, name="box-filter-7x7"),
        dom.high_order_star(2, 2, name="sharpen-2d"),
    ]


def _renamed(pattern: StencilPattern, name: str) -> StencilPattern:
    clone = StencilPattern(
        name=name,
        ndim=pattern.ndim,
        offsets=pattern.offsets,
        weights=pattern.weights,
        kind=pattern.kind,
        metadata=dict(pattern.metadata),
    )
    return clone


_DOMAIN_BUILDERS = {
    "pde_solvers": _pde_solver_kernels,
    "heat_diffusion": _heat_diffusion_kernels,
    "fluid_dynamics": _fluid_dynamics_kernels,
    "lattice_boltzmann": _lbm_kernels,
    "phase_field": _phase_field_kernels,
    "geophysics_seismic": _geophysics_kernels,
    "weather_climate": _weather_kernels,
    "electromagnetics": _em_kernels,
    "image_ml": _image_ml_kernels,
}


def catalog_by_domain() -> Dict[str, List[StencilPattern]]:
    """Return the 79-kernel suite grouped by application domain.

    Kernel names are made unique by prefixing the domain, and each pattern's
    ``metadata["domain"]`` is forced to its catalog domain (a few constructors
    are shared between domains).
    """
    grouped: Dict[str, List[StencilPattern]] = {}
    for domain in DOMAINS:
        kernels = _DOMAIN_BUILDERS[domain]()
        unique: List[StencilPattern] = []
        seen: set[str] = set()
        for kernel in kernels:
            name = f"{domain}/{kernel.name}"
            suffix = 2
            while name in seen:
                name = f"{domain}/{kernel.name}-v{suffix}"
                suffix += 1
            seen.add(name)
            entry = _renamed(kernel, name)
            entry.metadata["domain"] = domain
            unique.append(entry)
        grouped[domain] = unique
    total = sum(len(v) for v in grouped.values())
    require(total == 79, f"catalog must contain 79 kernels, got {total}")
    return grouped


def full_catalog() -> List[StencilPattern]:
    """Return the flat list of all 79 catalog kernels (Figure 10 workload)."""
    grouped = catalog_by_domain()
    flat: List[StencilPattern] = []
    for domain in DOMAINS:
        flat.extend(grouped[domain])
    return flat

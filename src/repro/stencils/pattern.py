"""Stencil pattern definitions.

A :class:`StencilPattern` is the symbolic description of a stencil kernel: the
set of neighbour offsets that contribute to each updated grid point together
with their weights.  Patterns are the input to every later stage — the golden
reference, the layout-morphing pipeline and all baselines consume the same
object, which is what makes the end-to-end equality tests meaningful.

The paper classifies kernels as *star* (taps only along the axes) or *box*
(every tap inside the ``k × k`` neighbourhood); both are supported, plus
arbitrary custom tap sets, in 1, 2 or 3 dimensions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.util.validation import (
    ValidationError,
    require,
    require_in,
    require_odd,
    require_positive_int,
)

__all__ = ["StencilKind", "StencilPattern"]


class StencilKind(str, enum.Enum):
    """Structural classification of a stencil pattern."""

    STAR = "star"
    BOX = "box"
    CUSTOM = "custom"


def _star_offsets(ndim: int, radius: int) -> list[tuple[int, ...]]:
    """Offsets of a star stencil: centre plus taps along each axis."""
    offsets: list[tuple[int, ...]] = [tuple([0] * ndim)]
    for axis in range(ndim):
        for distance in range(1, radius + 1):
            for sign in (-1, 1):
                offset = [0] * ndim
                offset[axis] = sign * distance
                offsets.append(tuple(offset))
    return offsets


def _box_offsets(ndim: int, radius: int) -> list[tuple[int, ...]]:
    """Offsets of a box stencil: the full ``(2r+1)^ndim`` neighbourhood."""
    axes = [range(-radius, radius + 1)] * ndim
    mesh = np.meshgrid(*axes, indexing="ij")
    stacked = np.stack([m.ravel() for m in mesh], axis=1)
    return [tuple(int(v) for v in row) for row in stacked]


@dataclass(frozen=True)
class StencilPattern:
    """A stencil kernel: neighbour offsets and their weights.

    Parameters
    ----------
    name:
        Human readable identifier (e.g. ``"heat-2d"``, ``"box-2d49p"``).
    ndim:
        Spatial dimensionality of the grid the stencil updates (1, 2 or 3).
    offsets:
        Sequence of integer offset tuples, one per tap, each of length ``ndim``.
    weights:
        One weight per tap, same order as ``offsets``.
    kind:
        Structural classification; purely informational but kept because the
        evaluation section of the paper slices results by it.
    """

    name: str
    ndim: int
    offsets: Tuple[Tuple[int, ...], ...]
    weights: Tuple[float, ...]
    kind: StencilKind = StencilKind.CUSTOM
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        require_positive_int(self.ndim, "ndim")
        require_in(self.ndim, (1, 2, 3), "ndim")
        require(len(self.offsets) > 0, "a stencil needs at least one tap")
        require(
            len(self.offsets) == len(self.weights),
            f"offsets ({len(self.offsets)}) and weights ({len(self.weights)}) "
            "must have the same length",
        )
        seen: set[tuple[int, ...]] = set()
        for off in self.offsets:
            require(
                len(off) == self.ndim,
                f"offset {off!r} does not match ndim={self.ndim}",
            )
            require(off not in seen, f"duplicate offset {off!r}")
            seen.add(off)
        object.__setattr__(
            self, "offsets", tuple(tuple(int(v) for v in off) for off in self.offsets)
        )
        object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def star(ndim: int, radius: int, weights: Sequence[float] | None = None,
             name: str | None = None) -> "StencilPattern":
        """Create a star stencil of the given radius.

        The tap order is centre first, then per axis increasing distance with
        the negative direction before the positive one.  When ``weights`` is
        omitted a normalised Jacobi-style weighting is used (centre weight
        0.5, the rest split evenly) so examples produce stable iterations.
        """
        require_positive_int(radius, "radius")
        offsets = _star_offsets(ndim, radius)
        if weights is None:
            neighbour = 0.5 / (len(offsets) - 1) if len(offsets) > 1 else 0.0
            weights = [0.5] + [neighbour] * (len(offsets) - 1)
        require(
            len(weights) == len(offsets),
            f"expected {len(offsets)} weights for a star stencil of radius "
            f"{radius} in {ndim}D, got {len(weights)}",
        )
        return StencilPattern(
            name=name or f"star-{ndim}d-r{radius}",
            ndim=ndim,
            offsets=tuple(offsets),
            weights=tuple(weights),
            kind=StencilKind.STAR,
        )

    @staticmethod
    def box(ndim: int, radius: int, weights: Sequence[float] | None = None,
            name: str | None = None) -> "StencilPattern":
        """Create a box stencil covering the full ``(2r+1)^ndim`` neighbourhood."""
        require_positive_int(radius, "radius")
        offsets = _box_offsets(ndim, radius)
        if weights is None:
            weights = [1.0 / len(offsets)] * len(offsets)
        require(
            len(weights) == len(offsets),
            f"expected {len(offsets)} weights for a box stencil of radius "
            f"{radius} in {ndim}D, got {len(weights)}",
        )
        return StencilPattern(
            name=name or f"box-{ndim}d-r{radius}",
            ndim=ndim,
            offsets=tuple(offsets),
            weights=tuple(weights),
            kind=StencilKind.BOX,
        )

    @staticmethod
    def from_dense(kernel: np.ndarray, name: str = "custom",
                   keep_zeros: bool = False) -> "StencilPattern":
        """Build a pattern from a dense odd-sized kernel array.

        Zero weights are dropped by default (they carry no computation); pass
        ``keep_zeros=True`` to keep the full box footprint.
        """
        kernel = np.asarray(kernel, dtype=np.float64)
        require_in(kernel.ndim, (1, 2, 3), "kernel.ndim")
        for size in kernel.shape:
            require_odd(size, "kernel extent")
        radius = tuple(s // 2 for s in kernel.shape)
        offsets: list[tuple[int, ...]] = []
        weights: list[float] = []
        for index in np.ndindex(kernel.shape):
            value = float(kernel[index])
            if value == 0.0 and not keep_zeros:
                continue
            offsets.append(tuple(int(i - r) for i, r in zip(index, radius)))
            weights.append(value)
        require(len(offsets) > 0, "kernel has no nonzero taps")
        return StencilPattern(
            name=name,
            ndim=kernel.ndim,
            offsets=tuple(offsets),
            weights=tuple(weights),
            kind=StencilKind.CUSTOM,
        )

    # ------------------------------------------------------------------ #
    # derived properties
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> int:
        """Number of taps (the "points" column of Table 2)."""
        return len(self.offsets)

    @property
    def radius(self) -> int:
        """Maximum absolute offset along any axis."""
        return int(max(max(abs(v) for v in off) for off in self.offsets))

    @property
    def diameter(self) -> int:
        """Kernel extent ``k = 2 * radius + 1`` (the ``k`` of the paper)."""
        return 2 * self.radius + 1

    @property
    def footprint_shape(self) -> Tuple[int, ...]:
        """Shape of the dense bounding box of the taps (``k`` along each axis)."""
        return tuple([self.diameter] * self.ndim)

    def to_dense(self, dtype=np.float64) -> np.ndarray:
        """Return the dense ``k^ndim`` kernel array with weights in place."""
        kernel = np.zeros(self.footprint_shape, dtype=dtype)
        radius = self.radius
        for off, weight in zip(self.offsets, self.weights):
            index = tuple(o + radius for o in off)
            kernel[index] = weight
        return kernel

    def weight_vector(self, dtype=np.float64) -> np.ndarray:
        """Row-major flattening of :meth:`to_dense` (the paper's kernel vector)."""
        return self.to_dense(dtype=dtype).ravel()

    def classify(self) -> StencilKind:
        """Re-derive the structural kind from the offsets (ignoring ``kind``)."""
        radius = self.radius
        offsets = set(self.offsets)
        star = set(_star_offsets(self.ndim, radius))
        box = set(_box_offsets(self.ndim, radius))
        if offsets == box:
            return StencilKind.BOX
        if offsets == star:
            return StencilKind.STAR
        return StencilKind.CUSTOM

    def normalized(self) -> "StencilPattern":
        """Return a copy whose weights sum to one (useful for stable iteration)."""
        total = float(sum(self.weights))
        if total == 0.0:
            raise ValidationError("cannot normalise a pattern whose weights sum to 0")
        return StencilPattern(
            name=self.name,
            ndim=self.ndim,
            offsets=self.offsets,
            weights=tuple(w / total for w in self.weights),
            kind=self.kind,
            metadata=dict(self.metadata),
        )

    def with_weights(self, weights: Iterable[float]) -> "StencilPattern":
        """Return a copy with replaced weights (same offsets and order)."""
        return StencilPattern(
            name=self.name,
            ndim=self.ndim,
            offsets=self.offsets,
            weights=tuple(float(w) for w in weights),
            kind=self.kind,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StencilPattern(name={self.name!r}, ndim={self.ndim}, "
            f"points={self.points}, radius={self.radius}, kind={self.kind.value})"
        )

"""Domain-specific stencil kernel constructors.

The paper evaluates 79 real-world kernels drawn from 9 application domains
(PDE solvers, fluid dynamics, lattice Boltzmann methods, phase field models,
geophysical simulations, ...).  This module provides constructors for the
kernels of each domain with physically-motivated weights; the catalog module
assembles them into the 79-kernel suite.

Every constructor returns a :class:`repro.stencils.pattern.StencilPattern`
whose ``metadata["domain"]`` records the application domain.
"""

from __future__ import annotations

import numpy as np

from repro.stencils.pattern import StencilKind, StencilPattern
from repro.util.validation import require_in, require_positive_int

__all__ = [
    "heat_1d",
    "heat_2d",
    "heat_3d",
    "poisson_jacobi_2d",
    "biharmonic_2d",
    "high_order_star",
    "box_average",
    "advection_diffusion_2d",
    "upwind_advection_1d",
    "vorticity_2d",
    "lbm_d2q9",
    "lbm_d3q19",
    "lbm_d3q27",
    "cahn_hilliard_2d",
    "allen_cahn_2d",
    "acoustic_wave",
    "elastic_wave_2d",
    "shallow_water_2d",
    "fdtd_curl_2d",
    "fdtd_3d",
    "gaussian_blur_2d",
    "sobel_2d",
    "laplacian_of_gaussian_2d",
    "tagged",
]


def tagged(pattern: StencilPattern, domain: str, description: str = "") -> StencilPattern:
    """Attach domain metadata to a pattern (returned pattern is the same object)."""
    pattern.metadata["domain"] = domain
    if description:
        pattern.metadata["description"] = description
    return pattern


# --------------------------------------------------------------------------- #
# Heat / diffusion
# --------------------------------------------------------------------------- #
def heat_1d(alpha: float = 0.1) -> StencilPattern:
    """Classic 3-point explicit heat equation update in 1D."""
    weights = [1.0 - 2.0 * alpha, alpha, alpha]
    return tagged(
        StencilPattern.star(1, 1, weights=weights, name="heat-1d"),
        "heat_diffusion", "explicit 1D heat equation (3 points)",
    )


def heat_2d(alpha: float = 0.1) -> StencilPattern:
    """5-point explicit heat equation update in 2D."""
    weights = [1.0 - 4.0 * alpha] + [alpha] * 4
    return tagged(
        StencilPattern.star(2, 1, weights=weights, name="heat-2d"),
        "heat_diffusion", "explicit 2D heat equation (5 points)",
    )


def heat_3d(alpha: float = 0.05) -> StencilPattern:
    """7-point explicit heat equation update in 3D."""
    weights = [1.0 - 6.0 * alpha] + [alpha] * 6
    return tagged(
        StencilPattern.star(3, 1, weights=weights, name="heat-3d"),
        "heat_diffusion", "explicit 3D heat equation (7 points)",
    )


def anisotropic_diffusion_2d(ax: float = 0.15, ay: float = 0.05) -> StencilPattern:
    """Anisotropic 5-point diffusion: different conductivities per axis."""
    weights = [1.0 - 2.0 * (ax + ay), ax, ax, ay, ay]
    return tagged(
        StencilPattern.star(2, 1, weights=weights, name="aniso-diffusion-2d"),
        "heat_diffusion", "anisotropic 2D diffusion",
    )


# --------------------------------------------------------------------------- #
# PDE solvers
# --------------------------------------------------------------------------- #
def poisson_jacobi_2d() -> StencilPattern:
    """Jacobi smoother for the 2D Poisson equation."""
    weights = [0.0, 0.25, 0.25, 0.25, 0.25]
    return tagged(
        StencilPattern.star(2, 1, weights=weights, name="poisson-jacobi-2d"),
        "pde_solvers", "Jacobi iteration for 2D Poisson",
    )


def poisson_jacobi_3d() -> StencilPattern:
    """Jacobi smoother for the 3D Poisson equation."""
    weights = [0.0] + [1.0 / 6.0] * 6
    return tagged(
        StencilPattern.star(3, 1, weights=weights, name="poisson-jacobi-3d"),
        "pde_solvers", "Jacobi iteration for 3D Poisson",
    )


def biharmonic_2d() -> StencilPattern:
    """13-point biharmonic operator (fourth-order PDE), a 2D star of radius 2."""
    kernel = np.zeros((5, 5))
    kernel[2, 2] = 20.0
    for d in (1, -1):
        kernel[2 + d, 2] = -8.0
        kernel[2, 2 + d] = -8.0
        kernel[2 + 2 * d, 2] = 1.0
        kernel[2, 2 + 2 * d] = 1.0
    kernel[1, 1] = kernel[1, 3] = kernel[3, 1] = kernel[3, 3] = 2.0
    kernel /= 64.0
    return tagged(
        StencilPattern.from_dense(kernel, name="biharmonic-2d"),
        "pde_solvers", "13-point biharmonic operator",
    )


def high_order_star(ndim: int, order: int, name: str | None = None) -> StencilPattern:
    """Central finite-difference Laplacian of accuracy ``order`` (star stencil).

    ``order`` must be even; the stencil radius is ``order // 2``.  Coefficients
    are the standard central-difference Laplacian coefficients, summed across
    axes for the centre tap.
    """
    require_in(ndim, (1, 2, 3), "ndim")
    require_positive_int(order, "order")
    if order % 2:
        raise ValueError(f"order must be even, got {order}")
    radius = order // 2
    # 1D second-derivative central coefficients for common radii.
    coeffs_by_radius = {
        1: [1.0, -2.0, 1.0],
        2: [-1 / 12, 4 / 3, -5 / 2, 4 / 3, -1 / 12],
        3: [1 / 90, -3 / 20, 3 / 2, -49 / 18, 3 / 2, -3 / 20, 1 / 90],
        4: [-1 / 560, 8 / 315, -1 / 5, 8 / 5, -205 / 72, 8 / 5, -1 / 5, 8 / 315, -1 / 560],
    }
    if radius not in coeffs_by_radius:
        raise ValueError(f"unsupported order {order} (radius {radius})")
    coeffs = coeffs_by_radius[radius]
    centre = coeffs[radius] * ndim
    offsets = [tuple([0] * ndim)]
    weights = [centre]
    for axis in range(ndim):
        for distance in range(1, radius + 1):
            for sign in (-1, 1):
                off = [0] * ndim
                off[axis] = sign * distance
                offsets.append(tuple(off))
                weights.append(coeffs[radius + sign * distance])
    pattern = StencilPattern(
        name=name or f"laplacian-{ndim}d-o{order}",
        ndim=ndim,
        offsets=tuple(offsets),
        weights=tuple(weights),
        kind=StencilKind.STAR,
    )
    return tagged(pattern, "pde_solvers", f"order-{order} Laplacian in {ndim}D")


def box_average(ndim: int, radius: int, name: str | None = None) -> StencilPattern:
    """Uniform box average (the Box-2D9P / Box-2D49P / Box-3D27P family)."""
    pattern = StencilPattern.box(ndim, radius, name=name)
    return tagged(pattern, "pde_solvers", f"uniform box average radius {radius}")


# --------------------------------------------------------------------------- #
# Fluid dynamics
# --------------------------------------------------------------------------- #
def advection_diffusion_2d(velocity=(0.5, 0.25), alpha: float = 0.05) -> StencilPattern:
    """First-order upwind advection plus diffusion on a 2D grid (5 points)."""
    vx, vy = velocity
    weights = [
        1.0 - 4.0 * alpha - abs(vx) - abs(vy),  # centre
        alpha + max(vx, 0.0),   # (-1, 0)
        alpha + max(-vx, 0.0),  # (+1, 0)
        alpha + max(vy, 0.0),   # (0, -1)
        alpha + max(-vy, 0.0),  # (0, +1)
    ]
    return tagged(
        StencilPattern.star(2, 1, weights=weights, name="advection-diffusion-2d"),
        "fluid_dynamics", "upwind advection-diffusion",
    )


def upwind_advection_1d(courant: float = 0.4) -> StencilPattern:
    """First-order upwind advection in 1D (2 active taps in a 3-point footprint)."""
    pattern = StencilPattern(
        name="upwind-1d",
        ndim=1,
        offsets=((0,), (-1,)),
        weights=(1.0 - courant, courant),
        kind=StencilKind.CUSTOM,
    )
    return tagged(pattern, "fluid_dynamics", "first-order upwind advection")


def vorticity_2d() -> StencilPattern:
    """Vorticity-streamfunction update: 9-point box with central-difference mix."""
    kernel = np.array(
        [
            [0.05, 0.2, 0.05],
            [0.2, 0.0, 0.2],
            [0.05, 0.2, 0.05],
        ]
    )
    return tagged(
        StencilPattern.from_dense(kernel, name="vorticity-2d", keep_zeros=True),
        "fluid_dynamics", "vorticity transport smoother",
    )


def pressure_poisson_3d() -> StencilPattern:
    """Pressure-Poisson projection step in 3D incompressible flow solvers."""
    weights = [0.0] + [1.0 / 6.0] * 6
    pattern = StencilPattern.star(3, 1, weights=weights, name="pressure-poisson-3d")
    return tagged(pattern, "fluid_dynamics", "pressure projection Jacobi sweep")


# --------------------------------------------------------------------------- #
# Lattice Boltzmann
# --------------------------------------------------------------------------- #
def lbm_d2q9() -> StencilPattern:
    """D2Q9 lattice Boltzmann streaming+collision collapsed to one 9-point box."""
    w_centre, w_axis, w_diag = 4.0 / 9.0, 1.0 / 9.0, 1.0 / 36.0
    kernel = np.array(
        [
            [w_diag, w_axis, w_diag],
            [w_axis, w_centre, w_axis],
            [w_diag, w_axis, w_diag],
        ]
    )
    return tagged(
        StencilPattern.from_dense(kernel, name="lbm-d2q9"),
        "lattice_boltzmann", "D2Q9 equilibrium-weighted neighbourhood",
    )


def lbm_d3q19() -> StencilPattern:
    """D3Q19 lattice: centre + 6 axis + 12 edge neighbours (19 points)."""
    offsets = [(0, 0, 0)]
    weights = [1.0 / 3.0]
    for axis in range(3):
        for sign in (-1, 1):
            off = [0, 0, 0]
            off[axis] = sign
            offsets.append(tuple(off))
            weights.append(1.0 / 18.0)
    for a in range(3):
        for b in range(a + 1, 3):
            for sa in (-1, 1):
                for sb in (-1, 1):
                    off = [0, 0, 0]
                    off[a], off[b] = sa, sb
                    offsets.append(tuple(off))
                    weights.append(1.0 / 36.0)
    pattern = StencilPattern(
        name="lbm-d3q19", ndim=3, offsets=tuple(offsets), weights=tuple(weights),
        kind=StencilKind.CUSTOM,
    )
    return tagged(pattern, "lattice_boltzmann", "D3Q19 equilibrium weights")


def lbm_d3q27() -> StencilPattern:
    """D3Q27 lattice: the full 3x3x3 box with equilibrium weights."""
    kernel = np.zeros((3, 3, 3))
    for index in np.ndindex(3, 3, 3):
        offset = tuple(i - 1 for i in index)
        order = sum(abs(o) for o in offset)
        kernel[index] = {0: 8.0 / 27.0, 1: 2.0 / 27.0, 2: 1.0 / 54.0, 3: 1.0 / 216.0}[order]
    return tagged(
        StencilPattern.from_dense(kernel, name="lbm-d3q27"),
        "lattice_boltzmann", "D3Q27 equilibrium weights",
    )


# --------------------------------------------------------------------------- #
# Phase field
# --------------------------------------------------------------------------- #
def allen_cahn_2d(mobility: float = 0.1) -> StencilPattern:
    """Allen-Cahn explicit update: a weighted 5-point Laplacian."""
    weights = [1.0 - 4.0 * mobility] + [mobility] * 4
    pattern = StencilPattern.star(2, 1, weights=weights, name="allen-cahn-2d")
    return tagged(pattern, "phase_field", "Allen-Cahn explicit sweep")


def cahn_hilliard_2d() -> StencilPattern:
    """Cahn-Hilliard: biharmonic-dominated 13-point radius-2 star pattern."""
    kernel = np.zeros((5, 5))
    kernel[2, 2] = 1.0 - 20.0 * 0.01
    for d in (1, -1):
        kernel[2 + d, 2] = 8.0 * 0.01
        kernel[2, 2 + d] = 8.0 * 0.01
        kernel[2 + 2 * d, 2] = -1.0 * 0.01
        kernel[2, 2 + 2 * d] = -1.0 * 0.01
    return tagged(
        StencilPattern.from_dense(kernel, name="cahn-hilliard-2d"),
        "phase_field", "Cahn-Hilliard explicit sweep",
    )


def phase_field_crystal_2d() -> StencilPattern:
    """Phase-field-crystal smoother: a dense 5x5 box with radially decaying weights."""
    kernel = np.zeros((5, 5))
    for index in np.ndindex(5, 5):
        r2 = (index[0] - 2) ** 2 + (index[1] - 2) ** 2
        kernel[index] = np.exp(-0.5 * r2)
    kernel /= kernel.sum()
    return tagged(
        StencilPattern.from_dense(kernel, name="phase-field-crystal-2d"),
        "phase_field", "phase-field-crystal 25-point smoother",
    )


# --------------------------------------------------------------------------- #
# Geophysics / seismic
# --------------------------------------------------------------------------- #
def acoustic_wave(ndim: int, order: int, name: str | None = None) -> StencilPattern:
    """High-order acoustic wave propagation kernel (star of radius ``order/2``)."""
    pattern = high_order_star(ndim, order, name=name or f"acoustic-{ndim}d-o{order}")
    pattern.metadata["domain"] = "geophysics_seismic"
    pattern.metadata["description"] = f"order-{order} acoustic wave stencil"
    return pattern


def elastic_wave_2d() -> StencilPattern:
    """Elastic wave cross-derivative kernel (9-point box, anti-symmetric corners)."""
    kernel = np.array(
        [
            [0.25, 0.0, -0.25],
            [0.0, 1.0, 0.0],
            [-0.25, 0.0, 0.25],
        ]
    )
    return tagged(
        StencilPattern.from_dense(kernel, name="elastic-wave-2d", keep_zeros=True),
        "geophysics_seismic", "elastic wave cross-derivative term",
    )


# --------------------------------------------------------------------------- #
# Weather / climate
# --------------------------------------------------------------------------- #
def shallow_water_2d() -> StencilPattern:
    """Shallow-water height update: centred 5-point divergence-like stencil."""
    weights = [0.6, 0.1, 0.1, 0.1, 0.1]
    pattern = StencilPattern.star(2, 1, weights=weights, name="shallow-water-2d")
    return tagged(pattern, "weather_climate", "shallow-water height update")


def smagorinsky_filter_2d() -> StencilPattern:
    """Horizontal diffusion / Smagorinsky-style filter (9-point box)."""
    kernel = np.array(
        [
            [1.0, 2.0, 1.0],
            [2.0, 4.0, 2.0],
            [1.0, 2.0, 1.0],
        ]
    ) / 16.0
    return tagged(
        StencilPattern.from_dense(kernel, name="smagorinsky-2d"),
        "weather_climate", "horizontal diffusion filter",
    )


# --------------------------------------------------------------------------- #
# Electromagnetics (FDTD)
# --------------------------------------------------------------------------- #
def fdtd_curl_2d() -> StencilPattern:
    """2D FDTD curl update collapsed onto a single field (4 active taps)."""
    pattern = StencilPattern(
        name="fdtd-curl-2d",
        ndim=2,
        offsets=((0, 0), (-1, 0), (0, -1), (-1, -1)),
        weights=(1.0, -0.5, -0.5, 0.25),
        kind=StencilKind.CUSTOM,
    )
    return tagged(pattern, "electromagnetics", "2D FDTD curl update")


def fdtd_3d() -> StencilPattern:
    """3D FDTD-style 7-point update."""
    weights = [0.4] + [0.1] * 6
    pattern = StencilPattern.star(3, 1, weights=weights, name="fdtd-3d")
    return tagged(pattern, "electromagnetics", "3D FDTD field update")


# --------------------------------------------------------------------------- #
# Image processing / ML-adjacent
# --------------------------------------------------------------------------- #
def gaussian_blur_2d(radius: int = 1, sigma: float = 1.0,
                     name: str | None = None) -> StencilPattern:
    """Separable Gaussian blur materialised as a dense box kernel."""
    require_positive_int(radius, "radius")
    axis = np.arange(-radius, radius + 1, dtype=np.float64)
    one_d = np.exp(-0.5 * (axis / sigma) ** 2)
    kernel = np.outer(one_d, one_d)
    kernel /= kernel.sum()
    return tagged(
        StencilPattern.from_dense(kernel, name=name or f"gaussian-blur-r{radius}"),
        "image_ml", f"Gaussian blur radius {radius}",
    )


def sobel_2d() -> StencilPattern:
    """Sobel horizontal-gradient kernel (6 active taps of a 3x3 box)."""
    kernel = np.array(
        [
            [-1.0, 0.0, 1.0],
            [-2.0, 0.0, 2.0],
            [-1.0, 0.0, 1.0],
        ]
    ) / 8.0
    return tagged(
        StencilPattern.from_dense(kernel, name="sobel-2d", keep_zeros=True),
        "image_ml", "Sobel gradient",
    )


def laplacian_of_gaussian_2d() -> StencilPattern:
    """5x5 Laplacian-of-Gaussian edge detector."""
    kernel = np.array(
        [
            [0, 0, 1, 0, 0],
            [0, 1, 2, 1, 0],
            [1, 2, -16, 2, 1],
            [0, 1, 2, 1, 0],
            [0, 0, 1, 0, 0],
        ],
        dtype=np.float64,
    ) / 16.0
    return tagged(
        StencilPattern.from_dense(kernel, name="log-2d"),
        "image_ml", "Laplacian of Gaussian",
    )

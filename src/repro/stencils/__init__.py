"""Stencil substrate: patterns, grids, golden reference implementations and the
benchmark catalog (Table 2 kernels and the 79-kernel / 9-domain suite).
"""

from repro.stencils.pattern import StencilPattern, StencilKind
from repro.stencils.boundary import (
    BoundaryCondition,
    BOUNDARY_CONDITIONS,
    apply_boundary,
    boundary_flux,
    boundary_kind,
    neumann,
    normalize_boundary,
)
from repro.stencils.grid import Grid, make_grid
from repro.stencils.partition import GridPartition, Shard, plan_shard_grid, split_extent
from repro.stencils.reference import (
    apply_stencil_reference,
    run_stencil_iterations,
    stencil_flops,
)
from repro.stencils.catalog import (
    BenchmarkConfig,
    table2_benchmarks,
    get_benchmark,
    full_catalog,
    catalog_by_domain,
    DOMAINS,
)

__all__ = [
    "StencilPattern",
    "StencilKind",
    "BoundaryCondition",
    "BOUNDARY_CONDITIONS",
    "apply_boundary",
    "boundary_flux",
    "boundary_kind",
    "neumann",
    "normalize_boundary",
    "Grid",
    "make_grid",
    "GridPartition",
    "Shard",
    "plan_shard_grid",
    "split_extent",
    "apply_stencil_reference",
    "run_stencil_iterations",
    "stencil_flops",
    "BenchmarkConfig",
    "table2_benchmarks",
    "get_benchmark",
    "full_catalog",
    "catalog_by_domain",
    "DOMAINS",
]

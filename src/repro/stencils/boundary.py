"""Boundary conditions: the halo-refresh vocabulary shared by every engine.

A Jacobi-style sweep updates the grid *interior*; what happens to the
radius-wide halo ring between sweeps is the boundary condition:

* ``dirichlet`` — the halo is held fixed at its initial values (the paper's
  benchmark setup, and the historical behaviour of every execution path);
* ``periodic`` — the interior tiles the space: each halo cell is refreshed
  from the interior cell one period away, so a sweep sees a wrap-around
  domain (the ``sa2d_mpi`` wrap exchange, applied globally);
* ``reflect`` — each halo cell mirrors the interior cell the same distance
  inside the boundary (edge-inclusive, ``np.pad(mode="symmetric")``), the
  standard ghost-cell approximation of a zero-flux Neumann wall;
* ``neumann(flux=...)`` — the prescribed-gradient generalisation of
  ``reflect``: each halo cell is the mirror value **plus** ``flux`` times
  the cell-centre separation from its mirror source (unit grid spacing), so
  the outward normal derivative across both walls equals ``flux``.
  ``neumann(flux=0.0)`` *is* ``reflect`` and normalises to it, keeping the
  zero-flux fingerprint stable.  The family is open (any finite flux), so
  it is validated by parsing rather than membership in
  :data:`BOUNDARY_CONDITIONS`.

:func:`apply_boundary` is the single implementation every layer shares: the
golden numpy reference, the single-device executor (after each sweep) and
the sharded executor (on the assembled output; *between* sweeps the
:class:`repro.stencils.partition.GridPartition` realises the same semantics
distributively through its halo exchange).  The fill is applied axis by
axis in increasing order, each strip spanning the full extent of the other
axes (halos included) — exactly the stacked-1D geometry of the partition's
dimension-ordered exchange, which is what keeps sharded output bit-identical
to single-device output for every boundary condition.
"""

from __future__ import annotations

import re
from enum import Enum
from typing import Tuple, Union

import numpy as np

from repro.util.validation import require, require_positive_int

__all__ = [
    "BoundaryCondition",
    "BOUNDARY_CONDITIONS",
    "DIRICHLET",
    "PERIODIC",
    "REFLECT",
    "NEUMANN",
    "neumann",
    "neumann_bias",
    "boundary_kind",
    "boundary_flux",
    "normalize_boundary",
    "apply_boundary",
    "axis_slice",
]


class BoundaryCondition(str, Enum):
    """The boundary-condition vocabulary (members compare equal to their
    lowercase string values, so plain strings work everywhere)."""

    DIRICHLET = "dirichlet"
    PERIODIC = "periodic"
    REFLECT = "reflect"


DIRICHLET = BoundaryCondition.DIRICHLET.value
PERIODIC = BoundaryCondition.PERIODIC.value
REFLECT = BoundaryCondition.REFLECT.value

#: Kind name of the parameterised prescribed-gradient family; the canonical
#: *condition* strings are ``neumann(flux=<repr>)`` (zero flux normalises to
#: ``reflect``), so ``NEUMANN`` itself never appears as a canonical name.
NEUMANN = "neumann"

#: Canonical closed-form names, in documentation order.  ``neumann(flux=...)``
#: is an open family on top of these (any finite flux), validated by parsing.
BOUNDARY_CONDITIONS: Tuple[str, ...] = (DIRICHLET, PERIODIC, REFLECT)

#: ``neumann``, ``neumann(0.25)``, ``neumann(flux=0.25)`` — whitespace-tolerant.
_NEUMANN_RE = re.compile(
    r"^neumann\s*(?:\(\s*(?:flux\s*=\s*)?([^)]+?)\s*\))?$")


def neumann(flux: float = 0.0) -> str:
    """Canonical condition string for a prescribed-gradient wall.

    ``neumann(0.0)`` returns ``"reflect"`` (the zero-flux wall already has a
    name, and collapsing onto it keeps fingerprints of the two spellings
    identical); any other finite flux yields ``f"neumann(flux={flux!r})"``,
    whose ``repr`` round-trips exactly — the string is fingerprint-safe.
    """
    value = float(flux)
    require(np.isfinite(value), f"neumann flux must be finite, got {flux!r}")
    if value == 0.0:
        return REFLECT
    return f"neumann(flux={value!r})"


def normalize_boundary(value: Union[str, BoundaryCondition, None]) -> str:
    """Canonical lowercase name of a boundary condition.

    Accepts a :class:`BoundaryCondition` member, any casing of a closed-form
    name, the ``neumann`` family (``"neumann"``, ``"neumann(0.25)"``,
    ``"neumann(flux=0.25)"``) or ``None`` (= the default, ``"dirichlet"``).
    Raises :class:`~repro.util.validation.ValidationError` for anything else.
    """
    if value is None:
        return DIRICHLET
    if isinstance(value, BoundaryCondition):
        return value.value
    require(isinstance(value, str),
            f"boundary condition must be a string or BoundaryCondition, "
            f"got {type(value).__name__}")
    name = value.strip().lower()
    if name in BOUNDARY_CONDITIONS:
        return name
    match = _NEUMANN_RE.match(name)
    require(match is not None,
            f"boundary condition must be one of {BOUNDARY_CONDITIONS} or "
            f"'neumann(flux=<float>)', got {value!r}")
    flux_text = match.group(1)
    if flux_text is None:
        return REFLECT  # bare "neumann" = zero flux = reflect
    try:
        flux = float(flux_text)
    except ValueError:
        require(False, f"neumann flux must be a float literal, "
                       f"got {flux_text!r} in {value!r}")
    return neumann(flux)


def boundary_kind(value: Union[str, BoundaryCondition, None]) -> str:
    """The family of a condition: closed-form name, or ``"neumann"``."""
    name = normalize_boundary(value)
    return NEUMANN if name.startswith(NEUMANN) else name


def boundary_flux(value: Union[str, BoundaryCondition, None]) -> float:
    """Prescribed outward-gradient of a condition (``0.0`` unless neumann)."""
    name = normalize_boundary(value)
    match = _NEUMANN_RE.match(name)
    if match is None or match.group(1) is None:
        return 0.0
    return float(match.group(1))


def apply_boundary(data: np.ndarray, radius: int,
                   boundary: Union[str, BoundaryCondition, None]) -> np.ndarray:
    """Refresh the ``radius``-wide halo ring of ``data`` in place.

    ``dirichlet`` is a no-op (the halo stays whatever it is).  For
    ``periodic``, ``reflect`` and ``neumann(flux=...)`` the fill runs axis by
    axis in increasing order, each strip spanning the full extent of every
    other axis — corner cells therefore receive their diagonal values through
    two stacked copies, matching the partition layer's dimension-ordered halo
    exchange bit for bit.  Reads touch only interior cells along the filled
    axis, so the result is a pure function of the interior values.

    A neumann fill is the reflect mirror plus ``flux`` times the cell-centre
    separation between the ghost cell and its mirror source (unit spacing):
    ``2*(radius - g) - 1`` spacings for low-halo index ``g`` and ``2*q + 1``
    for high-halo offset ``q``, the affine bias that makes the outward
    normal derivative equal ``flux`` on both walls.

    Returns ``data`` (the same array) for call-chaining convenience.
    """
    boundary = normalize_boundary(boundary)
    if boundary == DIRICHLET:
        return data
    flux = boundary_flux(boundary)
    require_positive_int(radius, "radius")
    for size in data.shape:
        interior = int(size) - 2 * radius
        require(interior >= radius,
                f"grid extent {size} leaves a {interior}-cell interior, "
                f"shorter than the stencil radius {radius} — {boundary} "
                f"halos would need cells beyond the opposite boundary")
    for axis in range(data.ndim):
        n = data.shape[axis] - 2 * radius
        low = axis_slice(data.ndim, axis, 0, radius)
        high = axis_slice(data.ndim, axis, n + radius, n + 2 * radius)
        if boundary == PERIODIC:
            # halo cell j steps outside <- interior cell one period away
            data[low] = data[axis_slice(data.ndim, axis, n, n + radius)]
            data[high] = data[axis_slice(data.ndim, axis, radius, 2 * radius)]
        else:  # reflect/neumann: ghost i steps outside <- interior i inside
            data[low] = np.flip(
                data[axis_slice(data.ndim, axis, radius, 2 * radius)],
                axis=axis)
            data[high] = np.flip(
                data[axis_slice(data.ndim, axis, n, n + radius)], axis=axis)
            if flux != 0.0:
                data[low] += neumann_bias(data.ndim, axis, radius, flux,
                                          side="low")
                data[high] += neumann_bias(data.ndim, axis, radius, flux,
                                           side="high")
    return data


def neumann_bias(ndim: int, axis: int, width: int, flux: float,
                 *, side: str) -> np.ndarray:
    """The affine ghost-fill bias of a neumann wall, broadcast-shaped.

    Returns a float64 array of shape ``1 × ... × width × ... × 1`` (``width``
    along ``axis``) holding ``flux * separation`` per ghost cell, where the
    separation is the cell-centre distance to the mirror source: ``2*q + 1``
    spacings for offset ``q`` outward on the ``"high"`` face and its flip on
    the ``"low"`` face.  Shared by the global fill above and the partition's
    mirror exchange ops so both add bit-identical biases.
    """
    require(side in ("low", "high"), f"side must be low/high, got {side!r}")
    separations = 2.0 * np.arange(width, dtype=np.float64) + 1.0
    if side == "low":
        separations = separations[::-1]
    shape = [1] * ndim
    shape[axis] = width
    return (flux * separations).reshape(shape)


def axis_slice(ndim: int, axis: int, start: int, stop: int) -> Tuple[slice, ...]:
    """Full-extent slices except ``[start, stop)`` along ``axis``.

    Shared by the global fill above and the partition layer's halo exchange
    (:meth:`repro.stencils.partition.GridPartition.exchange_halos`) — the
    bit-identity contract between the two depends on both slicing the same
    strips.
    """
    slices = [slice(None)] * ndim
    slices[axis] = slice(start, stop)
    return tuple(slices)

"""Boundary conditions: the halo-refresh vocabulary shared by every engine.

A Jacobi-style sweep updates the grid *interior*; what happens to the
radius-wide halo ring between sweeps is the boundary condition:

* ``dirichlet`` — the halo is held fixed at its initial values (the paper's
  benchmark setup, and the historical behaviour of every execution path);
* ``periodic`` — the interior tiles the space: each halo cell is refreshed
  from the interior cell one period away, so a sweep sees a wrap-around
  domain (the ``sa2d_mpi`` wrap exchange, applied globally);
* ``reflect`` — each halo cell mirrors the interior cell the same distance
  inside the boundary (edge-inclusive, ``np.pad(mode="symmetric")``), the
  standard ghost-cell approximation of a zero-flux Neumann wall.

:func:`apply_boundary` is the single implementation every layer shares: the
golden numpy reference, the single-device executor (after each sweep) and
the sharded executor (on the assembled output; *between* sweeps the
:class:`repro.stencils.partition.GridPartition` realises the same semantics
distributively through its halo exchange).  The fill is applied axis by
axis in increasing order, each strip spanning the full extent of the other
axes (halos included) — exactly the stacked-1D geometry of the partition's
dimension-ordered exchange, which is what keeps sharded output bit-identical
to single-device output for every boundary condition.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple, Union

import numpy as np

from repro.util.validation import require, require_in, require_positive_int

__all__ = [
    "BoundaryCondition",
    "BOUNDARY_CONDITIONS",
    "DIRICHLET",
    "PERIODIC",
    "REFLECT",
    "normalize_boundary",
    "apply_boundary",
    "axis_slice",
]


class BoundaryCondition(str, Enum):
    """The boundary-condition vocabulary (members compare equal to their
    lowercase string values, so plain strings work everywhere)."""

    DIRICHLET = "dirichlet"
    PERIODIC = "periodic"
    REFLECT = "reflect"


DIRICHLET = BoundaryCondition.DIRICHLET.value
PERIODIC = BoundaryCondition.PERIODIC.value
REFLECT = BoundaryCondition.REFLECT.value

#: Canonical names, in documentation order.
BOUNDARY_CONDITIONS: Tuple[str, ...] = (DIRICHLET, PERIODIC, REFLECT)


def normalize_boundary(value: Union[str, BoundaryCondition, None]) -> str:
    """Canonical lowercase name of a boundary condition.

    Accepts a :class:`BoundaryCondition` member, any casing of its name, or
    ``None`` (= the default, ``"dirichlet"``).  Raises
    :class:`~repro.util.validation.ValidationError` for anything else.
    """
    if value is None:
        return DIRICHLET
    if isinstance(value, BoundaryCondition):
        return value.value
    require(isinstance(value, str),
            f"boundary condition must be a string or BoundaryCondition, "
            f"got {type(value).__name__}")
    name = value.strip().lower()
    require_in(name, BOUNDARY_CONDITIONS, "boundary condition")
    return name


def apply_boundary(data: np.ndarray, radius: int,
                   boundary: Union[str, BoundaryCondition, None]) -> np.ndarray:
    """Refresh the ``radius``-wide halo ring of ``data`` in place.

    ``dirichlet`` is a no-op (the halo stays whatever it is).  For
    ``periodic`` and ``reflect`` the fill runs axis by axis in increasing
    order, each strip spanning the full extent of every other axis — corner
    cells therefore receive their diagonal values through two stacked
    copies, matching the partition layer's dimension-ordered halo exchange
    bit for bit.  Reads touch only interior cells along the filled axis, so
    the result is a pure function of the interior values.

    Returns ``data`` (the same array) for call-chaining convenience.
    """
    boundary = normalize_boundary(boundary)
    if boundary == DIRICHLET:
        return data
    require_positive_int(radius, "radius")
    for size in data.shape:
        interior = int(size) - 2 * radius
        require(interior >= radius,
                f"grid extent {size} leaves a {interior}-cell interior, "
                f"shorter than the stencil radius {radius} — {boundary} "
                f"halos would need cells beyond the opposite boundary")
    for axis in range(data.ndim):
        n = data.shape[axis] - 2 * radius
        low = axis_slice(data.ndim, axis, 0, radius)
        high = axis_slice(data.ndim, axis, n + radius, n + 2 * radius)
        if boundary == PERIODIC:
            # halo cell j steps outside <- interior cell one period away
            data[low] = data[axis_slice(data.ndim, axis, n, n + radius)]
            data[high] = data[axis_slice(data.ndim, axis, radius, 2 * radius)]
        else:  # reflect: ghost cell i steps outside <- interior i steps inside
            data[low] = np.flip(
                data[axis_slice(data.ndim, axis, radius, 2 * radius)],
                axis=axis)
            data[high] = np.flip(
                data[axis_slice(data.ndim, axis, n, n + radius)], axis=axis)
    return data


def axis_slice(ndim: int, axis: int, start: int, stop: int) -> Tuple[slice, ...]:
    """Full-extent slices except ``[start, stop)`` along ``axis``.

    Shared by the global fill above and the partition layer's halo exchange
    (:meth:`repro.stencils.partition.GridPartition.exchange_halos`) — the
    bit-identity contract between the two depends on both slicing the same
    strips.
    """
    slices = [slice(None)] * ndim
    slices[axis] = slice(start, stop)
    return tuple(slices)

"""Domain decomposition for sharded multi-device execution.

A :class:`GridPartition` tiles a grid's *output* region into a Cartesian grid
of shards.  Each shard owns one contiguous output box plus a ghost region of
input cells around it, so a stencil sweep over the shard's subgrid computes
the shard's outputs from purely local data — the classic MPI-style
decomposition (pascal's ``sa2d_mpi``/``grid2d`` stacked halo exchange;
xdsl's ``distribute-stencil{strategy=2d-grid}`` lowering).

Ghost widths are *per face*.  A face between two distinct shards (including
the periodic wrap between the two edge shards of an axis) is an **exchanged
face** and carries a deep ghost region of ``radius + (halo_depth-1) * step``
cells; with ``halo_depth = k`` one halo exchange validates ``k`` consecutive
sweeps — the intervening sweeps recompute the ghost zone redundantly on
shrinking windows (communication-avoiding execution).  A face at a global
edge under ``dirichlet``/``reflect``, or a periodic wrap onto the shard
itself (single shard on the axis), is a **boundary face**: it keeps the
classic ``radius``-wide ghost ring, refreshed locally every sweep exactly
like :func:`repro.stencils.boundary.apply_boundary`.

Three invariants make sharded execution bit-identical to a single-device
sweep:

* shard boundaries are *aligned* to the layout-morphing tile extents ``r``,
  so every global output tile belongs wholly to one shard and the
  shard-local tiling reproduces the global tiling column for column;
* the deep-halo shrink ``step`` along each axis is the smallest multiple of
  the tile extent that covers the stencil radius, so every redundant-compute
  window origin stays congruent to the global tiling (a window shifted by a
  non-tile-multiple computes different floating-point associations);
* halo refresh is pure copying — ghost cells are overwritten with the
  neighbouring shards' freshly computed interiors (dimension-ordered, so
  corner cells propagate through two copies exactly like stacked 1D
  exchanges).

The partition carries the grid's boundary condition
(:mod:`repro.stencils.boundary`) and realises it distributively at the
global edges: under ``dirichlet`` the global halo stays fixed; under
``periodic`` the exchange wraps around — the shard at the low edge of an
axis receives from the shard at the high edge (possibly itself when the
axis has a single shard); under ``reflect`` each edge shard mirrors its own
first/last interior cells into the out-facing halo, and ``neumann(flux=...)``
adds the same affine bias (:func:`~repro.stencils.boundary.neumann_bias`) to
the mirrored strip.  All of them run inside the same dimension-ordered
stages, so the stacked-corner property (and with it bit-identity to the
single-device :func:`~repro.stencils.boundary.apply_boundary` fill) holds
for every condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stencils.boundary import (
    DIRICHLET,
    NEUMANN,
    PERIODIC,
    REFLECT,
    axis_slice as _axis_slice,
    boundary_flux,
    boundary_kind,
    neumann_bias,
    normalize_boundary,
)
from repro.util.arrays import ceil_div
from repro.util.validation import require, require_positive_int

__all__ = ["Shard", "GridPartition", "split_extent", "plan_shard_grid",
           "halo_steps"]


def split_extent(extent: int, count: int, align: int = 1,
                 minimum: int = 1) -> Tuple[int, ...]:
    """Split ``extent`` into ``count`` contiguous chunk lengths.

    Every chunk except the last is a multiple of ``align`` (the tile-alignment
    invariant above); all chunks are at least ``max(minimum, 1)`` long (the
    halo-exchange requirement: a chunk shorter than the ghost width would
    need halo data from beyond its immediate neighbour).  Raises when
    ``extent`` cannot accommodate that many chunks.
    """
    require_positive_int(extent, "extent")
    require_positive_int(count, "count")
    require_positive_int(align, "align")
    minimum = max(int(minimum), 1)
    if count == 1:
        require(extent >= minimum, f"extent {extent} shorter than minimum chunk "
                                   f"{minimum}")
        return (extent,)

    blocks = extent // align
    remainder = extent - blocks * align
    base, extra = divmod(blocks, count)
    chunks = [(base + (1 if i < extra else 0)) * align for i in range(count)]
    chunks[-1] += remainder
    require(all(c >= minimum for c in chunks),
            f"cannot split extent {extent} into {count} chunks of at least "
            f"{minimum} cells with alignment {align} — use fewer shards or a "
            f"shallower halo")
    return tuple(chunks)


def plan_shard_grid(out_shape: Sequence[int], n_shards: int) -> Tuple[int, ...]:
    """Factor ``n_shards`` over the grid axes, longest extents first.

    Deterministic greedy factorisation minimising the shard *surface* (and
    with it the halo traffic): each prime factor of ``n_shards`` (largest
    first) divides the axis whose per-shard extent is currently the largest
    — 4 shards on a square 2D grid become a 2x2 shard grid, while a long 1D
    grid takes all shards on its only axis.
    """
    out_shape = tuple(int(s) for s in out_shape)
    require_positive_int(n_shards, "n_shards")
    for s in out_shape:
        require_positive_int(s, "output extent")
    counts = [1] * len(out_shape)

    def prime_factors(n: int) -> List[int]:
        factors, p = [], 2
        while p * p <= n:
            while n % p == 0:
                factors.append(p)
                n //= p
            p += 1
        if n > 1:
            factors.append(n)
        return sorted(factors, reverse=True)

    for factor in prime_factors(n_shards):
        axis = max(range(len(out_shape)),
                   key=lambda ax: (out_shape[ax] / counts[ax], -ax))
        counts[axis] *= factor
    return tuple(counts)


def halo_steps(radius: int, align: Sequence[int]) -> Tuple[int, ...]:
    """Per-axis deep-halo shrink step: the smallest multiple of the tile
    alignment that covers the stencil radius.

    Redundant-compute windows shrink by one step per sweep, so the window
    origin stays congruent to the global layout tiling (the bit-identity
    requirement); with unit alignment the step degenerates to the paper's
    ``radius`` and ``halo_depth = k`` gives the classic ``k * radius`` ghost
    width.
    """
    require_positive_int(radius, "radius")
    return tuple(ceil_div(radius, int(a)) * int(a) for a in align)


@dataclass(frozen=True)
class Shard:
    """One shard of a partition: an output box plus its halo bookkeeping.

    ``out_start``/``out_stop`` are in *output* coordinates: output point ``j``
    along an axis reads input cells ``[j, j + 2*radius]`` and lands on grid
    cell ``j + radius``.  ``lo_ghost``/``hi_ghost`` are the per-axis ghost
    widths of the shard-local array (``radius`` on boundary faces, the deep
    width on exchanged faces; both default to ``radius`` for the classic
    ``halo_depth=1`` geometry).
    """

    index: Tuple[int, ...]
    out_start: Tuple[int, ...]
    out_stop: Tuple[int, ...]
    radius: int
    lo_ghost: Optional[Tuple[int, ...]] = None
    hi_ghost: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        ndim = len(self.out_start)
        if self.lo_ghost is None:
            object.__setattr__(self, "lo_ghost", (self.radius,) * ndim)
        if self.hi_ghost is None:
            object.__setattr__(self, "hi_ghost", (self.radius,) * ndim)

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.out_start, self.out_stop))

    @property
    def subgrid_shape(self) -> Tuple[int, ...]:
        """Extents of the shard-local array (outputs plus both ghosts)."""
        return tuple(s + lo + hi for s, lo, hi in
                     zip(self.out_shape, self.lo_ghost, self.hi_ghost))

    @property
    def virtual_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Global grid coordinates the shard-local array covers.

        Deep periodic wrap ghosts extend *beyond* the physical grid (negative
        or ``>= extent`` coordinates denote periodic images); see
        :meth:`GridPartition.extract` for the wrap-aware mapping.
        """
        return tuple((a + self.radius - lo, b + self.radius + hi)
                     for a, b, lo, hi in zip(self.out_start, self.out_stop,
                                             self.lo_ghost, self.hi_ghost))

    @property
    def subgrid_slices(self) -> Tuple[slice, ...]:
        """Where the shard-local array sits inside the global grid (only
        valid when every ghost stays inside the physical grid — always true
        for ``halo_depth=1`` and for dirichlet/reflect partitions)."""
        return tuple(slice(a, b) for a, b in self.virtual_ranges)

    @property
    def interior_local(self) -> Tuple[slice, ...]:
        """The shard's owned outputs, in shard-local coordinates."""
        return tuple(slice(lo, lo + s)
                     for lo, s in zip(self.lo_ghost, self.out_shape))

    @property
    def interior_global(self) -> Tuple[slice, ...]:
        """The shard's owned outputs, in global grid coordinates."""
        return tuple(slice(a + self.radius, b + self.radius)
                     for a, b in zip(self.out_start, self.out_stop))


@dataclass(frozen=True)
class _ExchangeOp:
    """One precomputed halo-refresh copy (the per-sweep hot loop runs these
    without touching ``np.ravel_multi_index`` or rebuilding slices)."""

    kind: str                      # "copy" | "mirror"
    dst: int                       # flat shard index receiving the strip
    dst_slices: Tuple[slice, ...]
    src: int                       # flat shard index supplying the strip
    src_slices: Tuple[slice, ...]
    axis: int
    remote_elements: int           # elements billed as interconnect traffic
    local: bool                    # True for mirror fills and self copies
    bias: Optional[np.ndarray] = None  # neumann affine term added post-flip


@dataclass(frozen=True)
class GridPartition:
    """A Cartesian decomposition of one grid for a stencil of ``radius``.

    ``halo_depth`` is the communication-avoiding depth ``k``: exchanged faces
    carry ``radius + (k-1)*step`` ghost cells and one
    :meth:`exchange_halos` validates ``k`` consecutive sweeps.  ``halo_step``
    is the per-axis window shrink per sweep (see :func:`halo_steps`).
    """

    grid_shape: Tuple[int, ...]
    radius: int
    shard_grid: Tuple[int, ...]
    shards: Tuple[Shard, ...]  #: row-major over ``shard_grid``
    boundary: str = DIRICHLET
    halo_depth: int = 1
    halo_step: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.halo_step is None:
            object.__setattr__(self, "halo_step",
                               (self.radius,) * len(self.grid_shape))

    @staticmethod
    def build(grid_shape: Sequence[int], radius: int,
              shard_grid: Sequence[int] | int,
              align: Sequence[int] | None = None,
              boundary: str = DIRICHLET,
              halo_depth: int = 1) -> "GridPartition":
        """Partition ``grid_shape`` for a stencil of ``radius``.

        Parameters
        ----------
        shard_grid:
            Shards per axis, or a total shard count to be factored over the
            axes by :func:`plan_shard_grid`.
        align:
            Optional per-axis chunk alignment (the layout tile extents ``r``);
            required for bit-identical sharded execution.
        boundary:
            Boundary condition the exchange realises at the global edges
            (``"dirichlet"`` / ``"periodic"`` / ``"reflect"``).
        halo_depth:
            Deep-halo depth ``k``; raises when the geometry cannot support
            it (use :meth:`max_halo_depth` to clamp first).
        """
        grid_shape = tuple(int(s) for s in grid_shape)
        require_positive_int(radius, "radius")
        require_positive_int(halo_depth, "halo_depth")
        out_shape = tuple(s - 2 * radius for s in grid_shape)
        require(all(s > 0 for s in out_shape),
                f"grid {grid_shape} too small for stencil radius {radius}")
        if isinstance(shard_grid, (int, np.integer)):
            shard_grid = plan_shard_grid(out_shape, int(shard_grid))
        shard_grid = tuple(int(c) for c in shard_grid)
        require(len(shard_grid) == len(grid_shape),
                f"shard grid {shard_grid} has {len(shard_grid)} axes for a "
                f"{len(grid_shape)}D grid")
        if align is None:
            align = (1,) * len(grid_shape)
        align = tuple(int(a) for a in align)
        require(len(align) == len(grid_shape),
                f"align {align} has {len(align)} axes for a "
                f"{len(grid_shape)}D grid")
        boundary = normalize_boundary(boundary)

        step = halo_steps(radius, align)
        deep = tuple(radius + (halo_depth - 1) * s for s in step)
        if halo_depth > 1:
            for ax, count in enumerate(shard_grid):
                if count > 1 and boundary == PERIODIC:
                    require(out_shape[ax] % align[ax] == 0,
                            f"deep halos need the output extent "
                            f"{out_shape[ax]} on periodic axis {ax} to be a "
                            f"multiple of the tile alignment {align[ax]} "
                            f"(wrap-image windows must stay tile-congruent)")

        # exchanged faces need the neighbour to own at least the deep ghost
        # width; single-shard axes only ever fill radius-wide boundary faces
        chunks = [split_extent(out, count, align=a,
                               minimum=deep[ax] if count > 1 else radius)
                  for ax, (out, count, a)
                  in enumerate(zip(out_shape, shard_grid, align))]
        starts = [np.concatenate(([0], np.cumsum(c)[:-1])).astype(int)
                  for c in chunks]

        def face_width(axis: int, index: Tuple[int, ...], direction: int) -> int:
            """Ghost width of one face: deep when a *different* shard
            supplies it, radius for boundary faces and self-wraps."""
            count = shard_grid[axis]
            pos = index[axis] + direction
            if 0 <= pos < count:
                return deep[axis]
            if boundary == PERIODIC and count > 1:
                return deep[axis]   # wrap partner is a distinct shard
            return radius           # fixed / mirrored / self-wrap ring

        shards = []
        for index in np.ndindex(*shard_grid):
            index = tuple(index)
            out_start = tuple(int(starts[ax][i]) for ax, i in enumerate(index))
            out_stop = tuple(int(starts[ax][i] + chunks[ax][i])
                             for ax, i in enumerate(index))
            lo = tuple(face_width(ax, index, -1) for ax in range(len(index)))
            hi = tuple(face_width(ax, index, +1) for ax in range(len(index)))
            shards.append(Shard(index=index, out_start=out_start,
                                out_stop=out_stop, radius=radius,
                                lo_ghost=lo, hi_ghost=hi))
        return GridPartition(grid_shape=grid_shape, radius=radius,
                             shard_grid=shard_grid, shards=tuple(shards),
                             boundary=boundary, halo_depth=halo_depth,
                             halo_step=step)

    @staticmethod
    def max_halo_depth(grid_shape: Sequence[int], radius: int,
                       shard_grid: Sequence[int] | int,
                       align: Sequence[int] | None = None,
                       boundary: str = DIRICHLET) -> int:
        """Deepest ``halo_depth`` this geometry supports.

        Three constraints bound the depth: every shard on a multi-shard axis
        must own at least the deep ghost width (it supplies that many cells
        to its neighbours), windows must shrink in tile-congruent steps, and
        periodic wrap images must land on tile-congruent origins (otherwise
        redundant recompute of the wrapped cells would diverge bitwise from
        the owner's compute).  Returns at least 1 (the classic geometry) —
        infeasible *partitions* still raise from :meth:`build`.
        """
        grid_shape = tuple(int(s) for s in grid_shape)
        require_positive_int(radius, "radius")
        out_shape = tuple(s - 2 * radius for s in grid_shape)
        require(all(s > 0 for s in out_shape),
                f"grid {grid_shape} too small for stencil radius {radius}")
        if isinstance(shard_grid, (int, np.integer)):
            shard_grid = plan_shard_grid(out_shape, int(shard_grid))
        shard_grid = tuple(int(c) for c in shard_grid)
        if align is None:
            align = (1,) * len(grid_shape)
        align = tuple(int(a) for a in align)
        boundary = normalize_boundary(boundary)

        step = halo_steps(radius, align)
        depth = None
        for ax, count in enumerate(shard_grid):
            if count <= 1:
                continue
            if boundary == PERIODIC and out_shape[ax] % align[ax] != 0:
                return 1
            chunks = split_extent(out_shape[ax], count, align=align[ax],
                                  minimum=radius)
            # radius + (k-1)*step <= smallest chunk
            k_ax = 1 + (min(chunks) - radius) // step[ax]
            depth = k_ax if depth is None else min(depth, k_ax)
        return max(1, depth) if depth is not None else 1

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @cached_property
    def _flat_strides(self) -> Tuple[int, ...]:
        """Row-major strides of ``shard_grid`` — the precomputed
        neighbour -> flat-index lookup (replaces per-strip
        ``np.ravel_multi_index`` calls in the exchange hot loop)."""
        strides = []
        acc = 1
        for count in reversed(self.shard_grid):
            strides.append(acc)
            acc *= count
        return tuple(reversed(strides))

    def flat_index(self, index: Sequence[int]) -> int:
        """Flat (row-major) position of a shard-grid index."""
        return int(sum(i * s for i, s in zip(index, self._flat_strides)))

    def shard_at(self, index: Sequence[int]) -> Shard:
        return self.shards[self.flat_index(tuple(index))]

    def neighbors(self, shard: Shard) -> Dict[Tuple[int, int], Shard]:
        """Adjacent shards keyed by ``(axis, direction)`` with direction ±1.

        Pure grid adjacency — periodic wrap partners are *not* included
        here; :meth:`halo_source` resolves the shard that actually supplies
        a given halo under the partition's boundary condition.
        """
        found = {}
        for axis in range(self.ndim):
            for direction in (-1, +1):
                pos = shard.index[axis] + direction
                if 0 <= pos < self.shard_grid[axis]:
                    index = list(shard.index)
                    index[axis] = pos
                    found[(axis, direction)] = self.shard_at(index)
        return found

    def halo_source(self, shard: Shard, axis: int,
                    direction: int) -> Optional[Shard]:
        """The shard supplying ``shard``'s ``(axis, direction)`` halo.

        An in-range neighbour always supplies.  Across the global edge the
        answer depends on the boundary condition: ``periodic`` wraps to the
        shard at the opposite end of the axis (the shard itself when the
        axis has a single shard); ``dirichlet`` and ``reflect`` have no
        supplying shard there (the halo is fixed, or mirrored locally by
        :meth:`exchange_halos`).
        """
        pos = shard.index[axis] + direction
        count = self.shard_grid[axis]
        if not (0 <= pos < count):
            if self.boundary != PERIODIC:
                return None
            pos %= count
        index = list(shard.index)
        index[axis] = pos
        return self.shards[self.flat_index(
            tuple(pos if ax == axis else i
                  for ax, i in enumerate(shard.index)))]

    def exchanged_faces(self, shard: Shard) -> Tuple[Tuple[int, int], ...]:
        """``(axis, direction)`` faces supplied by a *different* shard —
        the faces that carry deep ghosts and define the rim region."""
        faces = []
        for axis in range(self.ndim):
            for direction in (-1, +1):
                source = self.halo_source(shard, axis, direction)
                if source is not None and source.index != shard.index:
                    faces.append((axis, direction))
        return tuple(faces)

    # ------------------------------------------------------------------ #
    # redundant-compute windows
    # ------------------------------------------------------------------ #
    def window(self, shard: Shard, mult: int) -> Tuple[slice, ...]:
        """Shard-local slices of the sweep window ``mult`` steps before the
        next exchange.

        The window's *computed* region is the owned interior extended by
        ``mult * halo_step`` into every exchanged face's ghost zone (the
        redundant ghost-zone compute that buys ``mult`` more sweeps without
        communication), plus the ``radius``-wide input ring the stencil
        reads.  ``mult = 0`` with ``halo_depth = 1`` is the whole local
        array — the classic geometry.
        """
        require(0 <= mult < self.halo_depth,
                f"window mult {mult} out of range for halo depth "
                f"{self.halo_depth}")
        slices = []
        for axis in range(self.ndim):
            lo_ext = self._face_extension(shard, axis, -1, mult)
            hi_ext = self._face_extension(shard, axis, +1, mult)
            lo = shard.lo_ghost[axis]
            out = shard.out_shape[axis]
            slices.append(slice(lo - lo_ext - self.radius,
                                lo + out + hi_ext + self.radius))
        return tuple(slices)

    def window_out_shape(self, shard: Shard, mult: int) -> Tuple[int, ...]:
        """Computed-output extents of :meth:`window` (window minus the ring)."""
        return tuple((s.stop - s.start) - 2 * self.radius
                     for s in self.window(shard, mult))

    def window_writeback(self, shard: Shard, mult: int) -> Tuple[slice, ...]:
        """Shard-local slices the window's computed outputs land in."""
        return tuple(slice(w.start + self.radius, w.stop - self.radius)
                     for w in self.window(shard, mult))

    def _face_extension(self, shard: Shard, axis: int, direction: int,
                        mult: int) -> int:
        source = self.halo_source(shard, axis, direction)
        if source is None or source.index == shard.index:
            return 0
        return mult * self.halo_step[axis]

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #
    def extract(self, data: np.ndarray) -> List[np.ndarray]:
        """Copy each shard's subgrid (interior + ghosts) out of ``data``.

        Deep periodic wrap ghosts cover virtual coordinates beyond the
        physical grid; they are filled from the periodic interior image
        (``data``'s own boundary ring already matches the first ``radius``
        image cells, so the mapping is exact for any ghost width).
        """
        require(tuple(data.shape) == self.grid_shape,
                f"data shape {tuple(data.shape)} does not match the partition "
                f"grid {self.grid_shape}")
        locals_ = []
        for shard in self.shards:
            ranges = shard.virtual_ranges
            if all(0 <= a and b <= n
                   for (a, b), n in zip(ranges, self.grid_shape)):
                # always copy: subgrids of neighbouring shards overlap, so a
                # view would alias neighbours' interiors and corrupt the sweep
                locals_.append(np.array(data[shard.subgrid_slices],
                                        dtype=np.float64, order="C",
                                        copy=True))
                continue
            indices = []
            for (a, b), n in zip(ranges, self.grid_shape):
                coords = np.arange(a, b)
                interior = n - 2 * self.radius
                wrapped = self.radius + (coords - self.radius) % interior
                indices.append(np.where((coords >= 0) & (coords < n),
                                        coords, wrapped))
            locals_.append(np.array(data[np.ix_(*indices)], dtype=np.float64,
                                    order="C", copy=True))
        return locals_

    def assemble(self, locals_: Sequence[np.ndarray],
                 base: np.ndarray) -> np.ndarray:
        """Write every shard's interior back into a copy of ``base``.

        ``base`` supplies the global boundary ring — under Dirichlet that is
        the final answer (the ring is held constant, exactly like the
        single-device executor); under ``periodic`` / ``reflect`` the
        executor refreshes the assembled ring from the interior with
        :func:`repro.stencils.boundary.apply_boundary` afterwards.
        """
        require(len(locals_) == self.n_shards,
                f"{len(locals_)} local arrays for {self.n_shards} shards")
        out = np.array(base, dtype=np.float64, copy=True)
        for shard, local in zip(self.shards, locals_):
            out[shard.interior_global] = local[shard.interior_local]
        return out

    @cached_property
    def _exchange_ops(self) -> Tuple[_ExchangeOp, ...]:
        """The full halo refresh as a precomputed op list.

        Axes appear in increasing order and every strip spans the full local
        extent of all *other* axes (ghosts included), so corner cells receive
        diagonal neighbours' values through two copies — the stacked exchange
        of ``sa2d_mpi``.  Within one axis stage, reads touch only interior
        cells along that axis and writes touch only ghost slabs, so the stage
        order inside an axis does not matter.  Precomputing the list removes
        all index arithmetic (flat-index lookups, slice construction) from
        the per-exchange hot loop.
        """
        ops: List[_ExchangeOp] = []
        for axis in range(self.ndim):
            for flat, shard in enumerate(self.shards):
                out_len = shard.out_shape[axis]
                lo = shard.lo_ghost[axis]
                local_len = lo + out_len + shard.hi_ghost[axis]
                for direction in (-1, +1):
                    width = shard.lo_ghost[axis] if direction < 0 \
                        else shard.hi_ghost[axis]
                    if direction < 0:
                        dst = _axis_slice(self.ndim, axis, 0, width)
                    else:
                        dst = _axis_slice(self.ndim, axis,
                                          local_len - width, local_len)
                    neighbor = self.halo_source(shard, axis, direction)
                    if neighbor is None:
                        if boundary_kind(self.boundary) in (REFLECT, NEUMANN):
                            # mirror own interior into the out-facing halo,
                            # plus the affine flux bias for a neumann wall
                            flux = boundary_flux(self.boundary)
                            if direction < 0:
                                src = _axis_slice(self.ndim, axis,
                                                  lo, lo + width)
                                side = "low"
                            else:
                                src = _axis_slice(
                                    self.ndim, axis,
                                    lo + out_len - width, lo + out_len)
                                side = "high"
                            bias = None
                            if flux != 0.0:
                                bias = neumann_bias(self.ndim, axis, width,
                                                    flux, side=side)
                            ops.append(_ExchangeOp(
                                kind="mirror", dst=flat, dst_slices=dst,
                                src=flat, src_slices=src, axis=axis,
                                remote_elements=0, local=True, bias=bias))
                        continue  # dirichlet: halo stays fixed
                    src_flat = self.flat_index(neighbor.index)
                    n_lo = neighbor.lo_ghost[axis]
                    n_len = neighbor.out_shape[axis]
                    if direction < 0:
                        # neighbour's last `width` interior cells -> low halo
                        src = _axis_slice(self.ndim, axis,
                                          n_lo + n_len - width, n_lo + n_len)
                    else:
                        # neighbour's first `width` interior cells -> high halo
                        src = _axis_slice(self.ndim, axis, n_lo, n_lo + width)
                    remote = src_flat != flat
                    strip = list(shard.subgrid_shape)
                    strip[axis] = width
                    ops.append(_ExchangeOp(
                        kind="copy", dst=flat, dst_slices=dst,
                        src=src_flat, src_slices=src, axis=axis,
                        remote_elements=int(np.prod(strip)) if remote else 0,
                        local=not remote))
        return tuple(ops)

    @cached_property
    def _local_refresh_ops(self) -> Tuple[_ExchangeOp, ...]:
        """The boundary-face subset of :attr:`_exchange_ops` — reflect
        mirrors and periodic self-wrap copies, the per-sweep refresh that
        keeps non-exchange sweeps bit-identical to the single-device
        :func:`~repro.stencils.boundary.apply_boundary` fill."""
        return tuple(op for op in self._exchange_ops if op.local)

    def _run_ops(self, locals_: Sequence[np.ndarray],
                 ops: Sequence[_ExchangeOp]) -> int:
        elements = 0
        for op in ops:
            if op.kind == "mirror":
                strip = np.flip(locals_[op.src][op.src_slices], axis=op.axis)
                if op.bias is not None:
                    strip = strip + op.bias
                locals_[op.dst][op.dst_slices] = strip
            else:
                locals_[op.dst][op.dst_slices] = \
                    locals_[op.src][op.src_slices]
            elements += op.remote_elements
        return elements

    def exchange_halos(self, locals_: Sequence[np.ndarray]) -> int:
        """Refresh every shard's ghost cells under the boundary condition.

        Runs the precomputed stacked exchange (see :attr:`_exchange_ops`):
        exchanged faces receive their full deep ghost width from the
        supplying shard, boundary faces follow :attr:`boundary` —
        ``dirichlet`` holds the out-facing halo fixed, ``periodic``
        exchanges across the edge with the wrap-around shard (the same copy
        geometry as an interior exchange) and ``reflect`` /
        ``neumann(flux=...)`` mirror the shard's own first/last ``radius``
        interior cells into the halo (plus the affine flux bias).  The
        stages mirror :func:`repro.stencils.boundary.apply_boundary`
        exactly, which keeps sharded sweeps bit-identical to single-device
        ones.

        Returns the number of grid *elements* copied between distinct shards
        (the executor converts this to bytes/time with the device data type);
        local mirror fills and single-shard wrap copies are free.
        """
        require(len(locals_) == self.n_shards,
                f"{len(locals_)} local arrays for {self.n_shards} shards")
        return self._run_ops(locals_, self._exchange_ops)

    def refresh_local_boundaries(self, locals_: Sequence[np.ndarray]) -> None:
        """Refresh only the locally supplied faces (reflect mirrors and
        periodic self-wraps) — the between-sweep fill inside a deep-halo
        round, where exchanged faces live off redundant compute instead."""
        require(len(locals_) == self.n_shards,
                f"{len(locals_)} local arrays for {self.n_shards} shards")
        self._run_ops(locals_, self._local_refresh_ops)

    def received_elements_per_shard(self) -> Tuple[int, ...]:
        """Elements each shard receives in one full halo exchange.

        Strips span the shard's full extent along every non-exchange axis
        (ghosts included) — the same geometry :meth:`exchange_halos` copies —
        so the executor's interconnect model and the byte counter can never
        drift apart.
        """
        totals = [0] * self.n_shards
        for op in self._exchange_ops:
            totals[op.dst] += op.remote_elements
        return tuple(totals)

    def halo_elements_per_exchange(self) -> int:
        """Elements one full halo exchange moves (constant across sweeps)."""
        return sum(self.received_elements_per_shard())

    def messages_per_shard(self) -> Tuple[int, ...]:
        """Halo messages each shard receives per exchange: one per
        ``(axis, direction)`` whose supplying shard is a *different* shard
        (periodic wrap partners included; self-wraps and reflect mirrors are
        local copies, not messages)."""
        totals = [0] * self.n_shards
        for op in self._exchange_ops:
            if op.remote_elements > 0:
                totals[op.dst] += 1
        return tuple(totals)

"""Domain decomposition for sharded multi-device execution.

A :class:`GridPartition` tiles a grid's *output* region into a Cartesian grid
of shards.  Each shard owns one contiguous output box plus a radius-wide halo
of input cells around it, so a stencil sweep over the shard's subgrid
computes exactly the shard's outputs from purely local data — the classic
MPI-style decomposition (pascal's ``sa2d_mpi``/``grid2d`` stacked halo
exchange; xdsl's ``distribute-stencil{strategy=2d-grid}`` lowering).

Two invariants make sharded execution bit-identical to a single-device sweep:

* shard boundaries may be *aligned* to the layout-morphing tile extents
  ``r``, so every global output tile belongs wholly to one shard and the
  shard-local tiling reproduces the global tiling column for column;
* halo refresh is pure copying — after every sweep, each shard's halo cells
  are overwritten with the neighbouring shards' freshly computed interiors
  (dimension-ordered, so corner cells propagate through two copies exactly
  like stacked 1D exchanges).

The partition carries the grid's boundary condition
(:mod:`repro.stencils.boundary`) and realises it distributively at the
global edges: under ``dirichlet`` the global halo stays fixed; under
``periodic`` the exchange wraps around — the shard at the low edge of an
axis receives from the shard at the high edge (possibly itself when the
axis has a single shard); under ``reflect`` each edge shard mirrors its own
first/last interior cells into the out-facing halo.  All three run inside
the same dimension-ordered stages, so the stacked-corner property (and with
it bit-identity to the single-device :func:`~repro.stencils.boundary.
apply_boundary` fill) holds for every condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stencils.boundary import (
    DIRICHLET,
    PERIODIC,
    REFLECT,
    axis_slice as _axis_slice,
    normalize_boundary,
)
from repro.util.validation import require, require_positive_int

__all__ = ["Shard", "GridPartition", "split_extent", "plan_shard_grid"]


def split_extent(extent: int, count: int, align: int = 1,
                 minimum: int = 1) -> Tuple[int, ...]:
    """Split ``extent`` into ``count`` contiguous chunk lengths.

    Every chunk except the last is a multiple of ``align`` (the tile-alignment
    invariant above); all chunks are at least ``max(minimum, 1)`` long (the
    halo-exchange requirement: a chunk shorter than the stencil radius would
    need halo data from beyond its immediate neighbour).  Raises when
    ``extent`` cannot accommodate that many chunks.
    """
    require_positive_int(extent, "extent")
    require_positive_int(count, "count")
    require_positive_int(align, "align")
    minimum = max(int(minimum), 1)
    if count == 1:
        require(extent >= minimum, f"extent {extent} shorter than minimum chunk "
                                   f"{minimum}")
        return (extent,)

    blocks = extent // align
    remainder = extent - blocks * align
    base, extra = divmod(blocks, count)
    chunks = [(base + (1 if i < extra else 0)) * align for i in range(count)]
    chunks[-1] += remainder
    require(all(c >= minimum for c in chunks),
            f"cannot split extent {extent} into {count} chunks of at least "
            f"{minimum} cells with alignment {align} — use fewer shards")
    return tuple(chunks)


def plan_shard_grid(out_shape: Sequence[int], n_shards: int) -> Tuple[int, ...]:
    """Factor ``n_shards`` over the grid axes, longest extents first.

    Deterministic greedy factorisation: each prime factor of ``n_shards``
    (largest first) divides the axis whose per-shard extent is currently the
    largest — 4 shards on a square 2D grid become a 2x2 shard grid, while a
    long 1D grid takes all shards on its only axis.
    """
    out_shape = tuple(int(s) for s in out_shape)
    require_positive_int(n_shards, "n_shards")
    for s in out_shape:
        require_positive_int(s, "output extent")
    counts = [1] * len(out_shape)

    def prime_factors(n: int) -> List[int]:
        factors, p = [], 2
        while p * p <= n:
            while n % p == 0:
                factors.append(p)
                n //= p
            p += 1
        if n > 1:
            factors.append(n)
        return sorted(factors, reverse=True)

    for factor in prime_factors(n_shards):
        axis = max(range(len(out_shape)),
                   key=lambda ax: (out_shape[ax] / counts[ax], -ax))
        counts[axis] *= factor
    return tuple(counts)


@dataclass(frozen=True)
class Shard:
    """One shard of a partition: an output box plus its halo bookkeeping.

    ``out_start``/``out_stop`` are in *output* coordinates: output point ``j``
    along an axis reads input cells ``[j, j + 2*radius]`` and lands on grid
    cell ``j + radius``.
    """

    index: Tuple[int, ...]
    out_start: Tuple[int, ...]
    out_stop: Tuple[int, ...]
    radius: int

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.out_start, self.out_stop))

    @property
    def subgrid_shape(self) -> Tuple[int, ...]:
        """Extents of the shard-local array (outputs plus both halos)."""
        return tuple(s + 2 * self.radius for s in self.out_shape)

    @property
    def subgrid_slices(self) -> Tuple[slice, ...]:
        """Where the shard-local array sits inside the global grid."""
        return tuple(slice(a, b + 2 * self.radius)
                     for a, b in zip(self.out_start, self.out_stop))

    @property
    def interior_local(self) -> Tuple[slice, ...]:
        """The shard's owned outputs, in shard-local coordinates."""
        return tuple(slice(self.radius, self.radius + s) for s in self.out_shape)

    @property
    def interior_global(self) -> Tuple[slice, ...]:
        """The shard's owned outputs, in global grid coordinates."""
        return tuple(slice(a + self.radius, b + self.radius)
                     for a, b in zip(self.out_start, self.out_stop))


@dataclass(frozen=True)
class GridPartition:
    """A Cartesian decomposition of one grid for a stencil of ``radius``."""

    grid_shape: Tuple[int, ...]
    radius: int
    shard_grid: Tuple[int, ...]
    shards: Tuple[Shard, ...]  #: row-major over ``shard_grid``
    boundary: str = DIRICHLET

    @staticmethod
    def build(grid_shape: Sequence[int], radius: int,
              shard_grid: Sequence[int] | int,
              align: Sequence[int] | None = None,
              boundary: str = DIRICHLET) -> "GridPartition":
        """Partition ``grid_shape`` for a stencil of ``radius``.

        Parameters
        ----------
        shard_grid:
            Shards per axis, or a total shard count to be factored over the
            axes by :func:`plan_shard_grid`.
        align:
            Optional per-axis chunk alignment (the layout tile extents ``r``);
            required for bit-identical sharded execution.
        boundary:
            Boundary condition the exchange realises at the global edges
            (``"dirichlet"`` / ``"periodic"`` / ``"reflect"``).
        """
        grid_shape = tuple(int(s) for s in grid_shape)
        require_positive_int(radius, "radius")
        out_shape = tuple(s - 2 * radius for s in grid_shape)
        require(all(s > 0 for s in out_shape),
                f"grid {grid_shape} too small for stencil radius {radius}")
        if isinstance(shard_grid, (int, np.integer)):
            shard_grid = plan_shard_grid(out_shape, int(shard_grid))
        shard_grid = tuple(int(c) for c in shard_grid)
        require(len(shard_grid) == len(grid_shape),
                f"shard grid {shard_grid} has {len(shard_grid)} axes for a "
                f"{len(grid_shape)}D grid")
        if align is None:
            align = (1,) * len(grid_shape)
        align = tuple(int(a) for a in align)
        require(len(align) == len(grid_shape),
                f"align {align} has {len(align)} axes for a "
                f"{len(grid_shape)}D grid")

        chunks = [split_extent(out, count, align=a, minimum=radius)
                  for out, count, a in zip(out_shape, shard_grid, align)]
        starts = [np.concatenate(([0], np.cumsum(c)[:-1])).astype(int)
                  for c in chunks]

        shards = []
        for index in np.ndindex(*shard_grid):
            out_start = tuple(int(starts[ax][i]) for ax, i in enumerate(index))
            out_stop = tuple(int(starts[ax][i] + chunks[ax][i])
                             for ax, i in enumerate(index))
            shards.append(Shard(index=tuple(index), out_start=out_start,
                                out_stop=out_stop, radius=radius))
        return GridPartition(grid_shape=grid_shape, radius=radius,
                             shard_grid=shard_grid, shards=tuple(shards),
                             boundary=normalize_boundary(boundary))

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_at(self, index: Sequence[int]) -> Shard:
        flat = int(np.ravel_multi_index(tuple(index), self.shard_grid))
        return self.shards[flat]

    def neighbors(self, shard: Shard) -> Dict[Tuple[int, int], Shard]:
        """Adjacent shards keyed by ``(axis, direction)`` with direction ±1.

        Pure grid adjacency — periodic wrap partners are *not* included
        here; :meth:`halo_source` resolves the shard that actually supplies
        a given halo under the partition's boundary condition.
        """
        found = {}
        for axis in range(self.ndim):
            for direction in (-1, +1):
                pos = shard.index[axis] + direction
                if 0 <= pos < self.shard_grid[axis]:
                    index = list(shard.index)
                    index[axis] = pos
                    found[(axis, direction)] = self.shard_at(index)
        return found

    def halo_source(self, shard: Shard, axis: int,
                    direction: int) -> Optional[Shard]:
        """The shard supplying ``shard``'s ``(axis, direction)`` halo.

        An in-range neighbour always supplies.  Across the global edge the
        answer depends on the boundary condition: ``periodic`` wraps to the
        shard at the opposite end of the axis (the shard itself when the
        axis has a single shard); ``dirichlet`` and ``reflect`` have no
        supplying shard there (the halo is fixed, or mirrored locally by
        :meth:`exchange_halos`).
        """
        pos = shard.index[axis] + direction
        count = self.shard_grid[axis]
        if not (0 <= pos < count):
            if self.boundary != PERIODIC:
                return None
            pos %= count
        index = list(shard.index)
        index[axis] = pos
        return self.shard_at(index)

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #
    def extract(self, data: np.ndarray) -> List[np.ndarray]:
        """Copy each shard's subgrid (interior + halos) out of ``data``."""
        require(tuple(data.shape) == self.grid_shape,
                f"data shape {tuple(data.shape)} does not match the partition "
                f"grid {self.grid_shape}")
        # always copy: subgrids of neighbouring shards overlap by 2*radius,
        # so a view (what ascontiguousarray returns for 1D slabs) would alias
        # neighbours' interiors and corrupt the sweep
        return [np.array(data[shard.subgrid_slices], dtype=np.float64,
                         order="C", copy=True)
                for shard in self.shards]

    def assemble(self, locals_: Sequence[np.ndarray],
                 base: np.ndarray) -> np.ndarray:
        """Write every shard's interior back into a copy of ``base``.

        ``base`` supplies the global boundary ring — under Dirichlet that is
        the final answer (the ring is held constant, exactly like the
        single-device executor); under ``periodic`` / ``reflect`` the
        executor refreshes the assembled ring from the interior with
        :func:`repro.stencils.boundary.apply_boundary` afterwards.
        """
        require(len(locals_) == self.n_shards,
                f"{len(locals_)} local arrays for {self.n_shards} shards")
        out = np.array(base, dtype=np.float64, copy=True)
        for shard, local in zip(self.shards, locals_):
            out[shard.interior_global] = local[shard.interior_local]
        return out

    def exchange_halos(self, locals_: Sequence[np.ndarray]) -> int:
        """Refresh every shard's halo cells under the boundary condition.

        Axes are exchanged in increasing order and every strip spans the full
        local extent of all *other* axes (halos included), so corner cells
        receive diagonal neighbours' values through two copies — the stacked
        exchange of ``sa2d_mpi``.  Within one axis stage, reads touch only
        interior cells along that axis and writes touch only halo slabs, so
        the stage order inside an axis does not matter.

        Global edges follow :attr:`boundary`: ``dirichlet`` holds the
        out-facing halo fixed, ``periodic`` exchanges across the edge with
        the wrap-around shard (the same copy geometry as an interior
        exchange), and ``reflect`` mirrors the shard's own first/last
        ``radius`` interior cells into the halo.  The stages mirror
        :func:`repro.stencils.boundary.apply_boundary` exactly, which keeps
        sharded sweeps bit-identical to single-device ones.

        Returns the number of grid *elements* copied between distinct shards
        (the executor converts this to bytes/time with the device data type);
        local mirror fills and single-shard wrap copies are free.
        """
        require(len(locals_) == self.n_shards,
                f"{len(locals_)} local arrays for {self.n_shards} shards")
        radius = self.radius
        elements = 0
        for axis in range(self.ndim):
            for shard, local in zip(self.shards, locals_):
                out_len = shard.out_shape[axis]
                for direction in (-1, +1):
                    neighbor = self.halo_source(shard, axis, direction)
                    if direction < 0:
                        dst = _axis_slice(self.ndim, axis, 0, radius)
                    else:
                        dst = _axis_slice(self.ndim, axis, out_len + radius,
                                          out_len + 2 * radius)
                    if neighbor is None:
                        if self.boundary == REFLECT:
                            # mirror own interior into the out-facing halo
                            if direction < 0:
                                src = _axis_slice(self.ndim, axis,
                                                  radius, 2 * radius)
                            else:
                                src = _axis_slice(self.ndim, axis,
                                                  out_len, out_len + radius)
                            local[dst] = np.flip(local[src], axis=axis)
                        continue  # dirichlet: halo stays fixed
                    source = locals_[int(np.ravel_multi_index(
                        tuple(neighbor.index), self.shard_grid))]
                    n_len = neighbor.out_shape[axis]
                    if direction < 0:
                        # neighbour's last `radius` interior cells -> low halo
                        src = _axis_slice(self.ndim, axis, n_len, n_len + radius)
                    else:
                        # neighbour's first `radius` interior cells -> high halo
                        src = _axis_slice(self.ndim, axis, radius, 2 * radius)
                    local[dst] = source[src]
                    if neighbor.index != shard.index:
                        elements += int(local[dst].size)
        return elements

    def received_elements_per_shard(self) -> Tuple[int, ...]:
        """Elements each shard receives in one full halo exchange.

        Strips span the shard's full extent along every non-exchange axis
        (halos included) — the same geometry :meth:`exchange_halos` copies —
        so the executor's interconnect model and the byte counter can never
        drift apart.
        """
        totals = []
        for shard in self.shards:
            received = 0
            for axis in range(self.ndim):
                strip = list(shard.subgrid_shape)
                strip[axis] = self.radius
                for direction in (-1, +1):
                    source = self.halo_source(shard, axis, direction)
                    if source is not None and source.index != shard.index:
                        received += int(np.prod(strip))
            totals.append(received)
        return tuple(totals)

    def halo_elements_per_exchange(self) -> int:
        """Elements one full halo exchange moves (constant across sweeps)."""
        return sum(self.received_elements_per_shard())

    def messages_per_shard(self) -> Tuple[int, ...]:
        """Halo messages each shard receives per exchange: one per
        ``(axis, direction)`` whose supplying shard is a *different* shard
        (periodic wrap partners included; self-wraps and reflect mirrors are
        local copies, not messages)."""
        return tuple(
            sum(1 for axis in range(self.ndim) for direction in (-1, +1)
                if (source := self.halo_source(shard, axis, direction))
                is not None and source.index != shard.index)
            for shard in self.shards)



"""Grid containers and workload generators.

A :class:`Grid` wraps the ndarray the stencil sweeps over plus the halo
book-keeping needed to compare "valid"-region outputs across all execution
paths (reference, SparStencil, baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.stencils.boundary import normalize_boundary
from repro.util.rng import default_rng
from repro.util.validation import require, require_in, require_positive_int

__all__ = ["Grid", "make_grid", "interior_shape"]


def interior_shape(shape: Sequence[int], radius: int) -> Tuple[int, ...]:
    """Shape of the valid (interior) output region for a stencil of ``radius``."""
    out = tuple(int(s) - 2 * radius for s in shape)
    require(all(s > 0 for s in out),
            f"grid shape {tuple(shape)} too small for stencil radius {radius}")
    return out


@dataclass
class Grid:
    """A d-dimensional grid of field values.

    Attributes
    ----------
    data:
        The full array including halo cells.
    dtype:
        Element type used by the simulated device (fp16/fp32/fp64).  The host
        copy is kept in float64 for accuracy; ``dtype`` records the precision
        the simulated kernel would use and is consumed by the cost model.
    boundary:
        How halo cells behave between sweeps (see
        :mod:`repro.stencils.boundary`): ``"dirichlet"`` (default — held
        fixed), ``"periodic"`` (wrap-around), ``"reflect"`` (mirrored,
        zero-flux Neumann) or ``"neumann(flux=...)"`` (mirror plus a
        prescribed-gradient bias).  Every execution path consumes this,
        and it enters the canonical compile fingerprint.
    """

    data: np.ndarray
    dtype: np.dtype = np.dtype(np.float32)
    boundary: str = "dirichlet"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.dtype = np.dtype(self.dtype)
        self.boundary = normalize_boundary(self.boundary)
        require_in(self.data.ndim, (1, 2, 3), "grid ndim")

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def interior(self, radius: int) -> np.ndarray:
        """Return a view of the interior region for a stencil of ``radius``."""
        require_positive_int(radius, "radius")
        slices = tuple(slice(radius, s - radius) for s in self.shape)
        return self.data[slices]

    def interior_size(self, radius: int) -> int:
        return int(np.prod(interior_shape(self.shape, radius)))

    def copy(self) -> "Grid":
        return Grid(data=self.data.copy(), dtype=self.dtype,
                    boundary=self.boundary)

    def bytes_per_element(self) -> int:
        return int(self.dtype.itemsize)


def make_grid(
    shape: Sequence[int],
    *,
    kind: str = "random",
    dtype=np.float32,
    seed: int | None = None,
    boundary: str = "dirichlet",
) -> Grid:
    """Create a grid workload.

    Parameters
    ----------
    shape:
        Grid extents including halo cells.
    kind:
        ``"random"`` — uniform values in [0, 1);
        ``"gaussian"`` — a centred Gaussian bump (typical heat/seismic initial
        condition);
        ``"zeros"`` / ``"ones"`` — constant fields;
        ``"ramp"`` — linear ramp along the last axis (easy to eyeball).
    dtype:
        Element type the simulated device kernel would use.
    seed:
        RNG seed for the random workload.
    boundary:
        Boundary condition carried on the grid (``"dirichlet"`` /
        ``"periodic"`` / ``"reflect"`` / ``"neumann(flux=...)"``).
    """
    shape = tuple(require_positive_int(s, "grid extent") for s in shape)
    require_in(len(shape), (1, 2, 3), "grid ndim")
    require_in(kind, ("random", "gaussian", "zeros", "ones", "ramp"), "kind")

    if kind == "random":
        data = default_rng(seed).random(shape)
    elif kind == "zeros":
        data = np.zeros(shape)
    elif kind == "ones":
        data = np.ones(shape)
    elif kind == "ramp":
        ramp = np.linspace(0.0, 1.0, shape[-1])
        data = np.broadcast_to(ramp, shape).copy()
    else:  # gaussian
        axes = [np.linspace(-1.0, 1.0, s) for s in shape]
        mesh = np.meshgrid(*axes, indexing="ij")
        radius_sq = sum(m ** 2 for m in mesh)
        data = np.exp(-4.0 * radius_sq)
    return Grid(data=data, dtype=dtype, boundary=boundary)

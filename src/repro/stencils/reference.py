"""Golden reference stencil implementations.

Every execution path in the repository (SparStencil pipeline and all the
baselines) is validated against :func:`apply_stencil_reference`, which is a
direct, vectorised "valid"-region correlation of the dense kernel with the
grid.  It deliberately avoids any of the transformations under test.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.stencils.boundary import apply_boundary, normalize_boundary
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_positive_int

__all__ = [
    "apply_stencil_reference",
    "run_stencil_iterations",
    "stencil_flops",
    "stencil_points_updated",
]


def apply_stencil_reference(pattern: StencilPattern, data: np.ndarray) -> np.ndarray:
    """Apply ``pattern`` once over ``data`` and return the valid-region output.

    The output shape is ``data.shape - 2*radius`` along each axis, matching
    the interior of :class:`repro.stencils.grid.Grid`.  Implemented via
    ``sliding_window_view`` + ``tensordot`` so there is no Python-level loop
    over grid points (numpy-vectorised per the HPC guide idioms).
    """
    data = np.asarray(data, dtype=np.float64)
    require(data.ndim == pattern.ndim,
            f"grid ndim {data.ndim} does not match pattern ndim {pattern.ndim}")
    k = pattern.diameter
    for size in data.shape:
        require(size >= k, f"grid extent {size} smaller than kernel diameter {k}")
    windows = np.lib.stride_tricks.sliding_window_view(data, (k,) * pattern.ndim)
    kernel = pattern.to_dense()
    # windows has shape out_shape + kernel_shape; contract over the kernel axes.
    return np.tensordot(windows, kernel, axes=pattern.ndim)


def run_stencil_iterations(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    boundary: Optional[str] = None,
) -> np.ndarray:
    """Run ``iterations`` Jacobi-style sweeps and return the final full grid.

    ``boundary`` defaults to the grid's own condition.  Under the default
    Dirichlet condition halo cells are held fixed, which matches how the
    benchmark kernels of the paper are timed: only interior points count as
    "stencils updated".  Under ``"periodic"`` / ``"reflect"`` the halo ring
    is refreshed from the interior before the first sweep (the user's halo
    bytes are derived state there — the domain *is* the interior) and after
    every sweep (:func:`repro.stencils.boundary.apply_boundary`), so the
    final grid's halo is consistent with its final interior.
    """
    require_positive_int(iterations, "iterations")
    boundary = normalize_boundary(
        boundary if boundary is not None
        else getattr(grid, "boundary", None))
    current = grid.data.copy()
    radius = pattern.radius
    interior = tuple(slice(radius, s - radius) for s in current.shape)
    apply_boundary(current, radius, boundary)
    for _ in range(iterations):
        updated = apply_stencil_reference(pattern, current)
        current[interior] = updated
        apply_boundary(current, radius, boundary)
    return current


def stencil_points_updated(pattern: StencilPattern, grid_shape, iterations: int) -> int:
    """Total number of stencil point updates (the numerator of GStencil/s)."""
    radius = pattern.radius
    interior = [int(s) - 2 * radius for s in grid_shape]
    require(all(s > 0 for s in interior),
            f"grid shape {tuple(grid_shape)} too small for radius {radius}")
    return int(np.prod(interior)) * int(iterations)


def stencil_flops(pattern: StencilPattern, grid_shape, iterations: int) -> int:
    """Floating point operations of the direct method (1 mul + 1 add per tap)."""
    return 2 * pattern.points * stencil_points_updated(pattern, grid_shape, iterations)

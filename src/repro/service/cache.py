"""LRU compilation cache with optional on-disk persistence.

The paper's pipeline is "compile once, sweep many times"; this cache makes
the *once* literal across independent solve calls.  Plans are keyed by the
canonical compile fingerprint (:mod:`repro.service.fingerprint`), bounded by
an LRU policy, and optionally persisted to disk so a fresh process starts
warm.  All operations are thread-safe — the batched solve service compiles
distinct plans from a thread pool against a shared cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.pipeline import CompiledStencil
from repro.obs.metrics import global_registry
from repro.obs.trace import span as obs_span
from repro.service.fingerprint import CompileRequest
from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_positive_int

__all__ = ["CacheStats", "CacheEntry", "CompileCache", "rebrand"]


#: Schema version of the persisted-plan payload.  Bumped to 2 when the
#: execution backend joined the payload: version-1 files carry no backend
#: field, so they cannot prove which backend compiled them and are treated
#: as plain misses.  Bumped to 3 with the ``neumann(flux=...)`` boundary
#: family (compile fingerprint payload v4): plans persisted under the old
#: vocabulary are treated as misses rather than trusted across the change.
_PERSIST_PAYLOAD_VERSION = 3


_PIPELINE_VERSION: Optional[str] = None


def _pipeline_version() -> str:
    """Build stamp for persisted plans: package version + a hash of the
    compilation pipeline's source.

    ``__version__`` alone is hand-maintained and rarely bumped, so it cannot
    tell two pipeline builds apart; hashing the source of every module that
    feeds :func:`compile_resolved` (core stages, the device model, the
    pattern definition) makes any code change invalidate persisted plans.
    Computed once per process; on any filesystem hiccup the stamp degrades
    to a unique value, which safely disables disk reuse.
    """
    global _PIPELINE_VERSION
    if _PIPELINE_VERSION is None:
        import repro
        digest = hashlib.sha256()
        try:
            package_dir = Path(repro.__file__).parent
            sources = sorted(
                list((package_dir / "core").glob("*.py"))
                + list((package_dir / "tcu").glob("*.py"))
                + list((package_dir / "util").glob("*.py"))
                + [package_dir / "stencils" / "pattern.py"])
            for source in sources:
                digest.update(source.name.encode())
                digest.update(source.read_bytes())
            stamp = digest.hexdigest()[:16]
        except OSError:
            stamp = f"unhashable-{os.getpid()}-{time.time_ns()}"
        _PIPELINE_VERSION = f"{repro.__version__}+{stamp}"
    return _PIPELINE_VERSION


def rebrand(compiled: CompiledStencil, request: CompileRequest) -> CompiledStencil:
    """Return ``compiled`` carrying the *requester's* pattern identity.

    Fingerprints deliberately ignore cosmetic pattern fields (name, kind,
    metadata, tap order), so a cache hit may have been compiled for a
    semantically equal but differently named pattern.  The plan's operands
    are shared as-is — only the pattern objects are swapped, so launch
    names, summaries and batch items report the identity of the request
    that hit.  Every consumer that serves one plan to many requests (the
    batch service, the online server) funnels through this helper; when the
    requester's pattern already equals the compiled one, ``compiled`` is
    returned unchanged.
    """
    options = request.options
    # equal original patterns imply equal fused patterns (fusion count is
    # fingerprinted), so the common case never materialises effective_pattern
    if compiled.original_pattern == options.pattern:
        return compiled
    plan = replace(compiled.plan, pattern=options.effective_pattern)
    search = compiled.search
    if search is not None:
        search = replace(search, pattern_name=options.effective_pattern.name)
    return replace(compiled,
                   original_pattern=options.pattern,
                   pattern=options.effective_pattern,
                   plan=plan,
                   search=search)


#: Backwards-compatible alias from when the helper was module-private.
_rebrand = rebrand


@dataclass
class CacheStats:
    """Counters a service operator would watch on a dashboard.

    ``compile_seconds`` is host wall time actually spent compiling (misses);
    ``saved_seconds`` sums the recorded compile cost of every hit — the time
    the cache avoided re-spending.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0
    saved_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory or disk (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "compile_seconds": self.compile_seconds,
            "saved_seconds": self.saved_seconds,
        }


@dataclass
class CacheEntry:
    """A cached plan plus the bookkeeping the stats need."""

    compiled: CompiledStencil
    compile_seconds: float
    hits: int = 0
    created_at: float = field(default_factory=time.time)


class CompileCache:
    """LRU-bounded cache of :class:`CompiledStencil` plans.

    Parameters
    ----------
    capacity:
        Maximum number of plans held in memory; the least recently used entry
        is evicted beyond that.
    persist_dir:
        Optional directory for write-through persistence.  Misses check the
        directory before compiling, so a new process (or a plan evicted from
        memory) reloads instead of recompiling; corrupt, unreadable or
        wrong-build files are treated as plain misses.  Unlike the in-memory
        tier, the directory is *not* LRU-bounded — plans accumulate until
        :meth:`clear` is called with ``remove_persisted=True`` (or the
        operator prunes the directory).

        .. warning::
           Plans are stored with :mod:`pickle`, and unpickling executes
           code.  ``persist_dir`` must be a trusted, same-privilege location
           (never a world-writable or untrusted-shared path).
    """

    def __init__(self, capacity: int = 128,
                 persist_dir: Optional[str | Path] = None) -> None:
        require_positive_int(capacity, "capacity")
        self.capacity = capacity
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Per-fingerprint locks so concurrent misses on the *same* plan
        #: compile once while distinct plans compile in parallel.
        self._compile_locks: Dict[str, threading.Lock] = {}
        # Re-register into the process-wide metrics registry (weakref'd: a
        # garbage-collected cache drops out of the unified snapshot).
        self.metrics_section = global_registry().register_provider(
            "cache", self.metrics_snapshot)

    # ------------------------------------------------------------------ #
    # core API
    # ------------------------------------------------------------------ #
    def get_or_compile(self, request: CompileRequest,
                       events: Optional[list] = None) -> CompiledStencil:
        """Return the plan for ``request``, compiling it at most once.

        ``events``, when given, receives one of ``"hit"`` / ``"disk"`` /
        ``"compile"`` per call — a race-free way for callers (the batch
        service) to attribute work to *their* lookups on a shared cache.
        """
        record = events.append if events is not None else lambda event: None
        fingerprint = request.fingerprint
        # Ambient span: joins whatever trace is active (a served request, a
        # session solve); a shared no-op context when none is.
        with obs_span("cache.lookup", fingerprint=fingerprint) as span:
            cached = self._lookup(fingerprint)
            if cached is not None:
                record("hit")
                span.set(outcome="hit")
                return _rebrand(cached, request)

            with self._fingerprint_lock(fingerprint):
                # Re-check: another thread may have compiled while we waited.
                cached = self._lookup(fingerprint)
                if cached is not None:
                    record("hit")
                    span.set(outcome="hit")
                    return _rebrand(cached, request)
                persisted = self._load_persisted(fingerprint,
                                                 request.options.backend)
                if persisted is not None:
                    compiled, compile_seconds = persisted
                    with self._lock:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        self.stats.saved_seconds += compile_seconds
                    self._store(fingerprint,
                                CacheEntry(compiled, compile_seconds))
                    record("disk")
                    span.set(outcome="disk",
                             saved_compile_ms=compile_seconds * 1e3)
                    return _rebrand(compiled, request)
                start = time.perf_counter()
                compiled = request.compile()
                elapsed = time.perf_counter() - start
                with self._lock:
                    self.stats.misses += 1
                    self.stats.compile_seconds += elapsed
                self._store(fingerprint, CacheEntry(compiled, elapsed))
                self._persist(fingerprint, compiled, elapsed)
                record("compile")
                span.set(outcome="compile", compile_ms=elapsed * 1e3)
                return compiled

    def compile(self, pattern: StencilPattern, grid_shape: Tuple[int, ...],
                **compile_kwargs) -> CompiledStencil:
        """Drop-in cached equivalent of :func:`repro.compile_stencil`."""
        return self.get_or_compile(
            CompileRequest.build(pattern, grid_shape, **compile_kwargs))

    def contains(self, request: CompileRequest) -> bool:
        with self._lock:
            return request.fingerprint in self._entries

    def snapshot_stats(self) -> CacheStats:
        """Internally consistent copy of the statistics (taken under the
        cache lock, so concurrent lookups can't tear the counters)."""
        with self._lock:
            return replace(self.stats)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Zero-arg provider the unified metrics registry calls."""
        stats = self.snapshot_stats().as_dict()
        stats["resident_plans"] = len(self)
        stats["capacity"] = self.capacity
        return stats

    def clear(self, remove_persisted: bool = False) -> None:
        """Drop all in-memory entries and reset the statistics.

        Persisted plans are kept by default (a later lookup resurrects them
        as disk hits); pass ``remove_persisted=True`` to delete them too.

        The per-fingerprint compile-lock table deliberately survives a
        clear: a :meth:`get_or_compile` may be holding (or about to acquire)
        one of those locks mid-compile, and replacing the table would let a
        racing miss on the same fingerprint take a *fresh* lock and compile
        the same plan twice (double-counting stats).  The table is bounded
        by normal eviction pruning; at worst a clear strands ~``capacity``
        idle locks until their fingerprints are evicted again.
        """
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
        if remove_persisted and self.persist_dir is not None:
            for path in self.persist_dir.glob("*.plan.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> Tuple[str, ...]:
        """Resident fingerprints, least → most recently used."""
        with self._lock:
            return tuple(self._entries)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _fingerprint_lock(self, fingerprint: str) -> threading.Lock:
        with self._lock:
            lock = self._compile_locks.get(fingerprint)
            if lock is None:
                lock = self._compile_locks[fingerprint] = threading.Lock()
            return lock

    def _lookup(self, fingerprint: str) -> Optional[CompiledStencil]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None
            self._entries.move_to_end(fingerprint)
            entry.hits += 1
            self.stats.hits += 1
            self.stats.saved_seconds += entry.compile_seconds
            return entry.compiled

    def _store(self, fingerprint: str, entry: CacheEntry) -> None:
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                # drop the per-fingerprint compile lock with the entry so the
                # lock table stays bounded on long-lived, high-churn services
                # (a concurrent waiter at worst duplicates one compile)
                self._compile_locks.pop(evicted, None)
                self.stats.evictions += 1

    def _path_for(self, fingerprint: str) -> Path:
        require(self.persist_dir is not None,
                "cache persistence is disabled (no persist_dir)")
        return self.persist_dir / f"{fingerprint}.plan.pkl"

    def _persist(self, fingerprint: str, compiled: CompiledStencil,
                 compile_seconds: float) -> None:
        if self.persist_dir is None:
            return
        path = self._path_for(fingerprint)
        # unique tmp name: two processes sharing a persist_dir may write the
        # same fingerprint concurrently, and a shared tmp inode would
        # interleave their writes into a corrupt published file
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        payload = {"payload_version": _PERSIST_PAYLOAD_VERSION,
                   "version": _pipeline_version(),
                   "backend": compiled.backend,
                   "compiled": compiled,
                   "compile_seconds": compile_seconds}
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except Exception:  # lint: allow-broad-except — best-effort persist
            # best-effort: an unwritable directory or an unpicklable plan
            # (e.g. exotic pattern metadata) must never fail the solve — the
            # plan is already served from memory
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def _load_persisted(self, fingerprint: str, backend: str
                        ) -> Optional[Tuple[CompiledStencil, float]]:
        if self.persist_dir is None:
            return None
        path = self._path_for(fingerprint)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except Exception:  # lint: allow-broad-except — corrupt persisted plan
            # Corrupt, truncated, or written by an incompatible build
            # (ModuleNotFoundError, UnpicklingError, ...): a persisted plan is
            # an optimisation, never a correctness dependency — recompile.
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("payload_version") != _PERSIST_PAYLOAD_VERSION:
            # pre-backend schema (or a future one): no backend provenance
            return None
        if payload.get("version") != _pipeline_version():
            # compiled by a different build of the pipeline: its plan may
            # legitimately differ from what this build would produce
            return None
        compiled = payload.get("compiled")
        if not isinstance(compiled, CompiledStencil):
            return None
        # Belt-and-braces: the fingerprint already encodes the backend, so a
        # well-formed file can only mismatch through manual tampering — but a
        # cross-backend serve is a silent-wrong-numerics bug, so verify.
        if payload.get("backend") != backend or compiled.backend != backend:
            return None
        return compiled, float(payload.get("compile_seconds", 0.0))

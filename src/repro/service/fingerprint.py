"""Canonical compile fingerprints.

A fingerprint is a stable digest of everything that determines a compiled
plan: the stencil's taps and weights, the grid shape, the data type, the
resolved engine/fragment, the device spec and the layout/conversion options.
Two compile requests with equal fingerprints are guaranteed (by
:func:`repro.core.pipeline.compile_resolved` being a pure function of its
resolved options) to yield interchangeable :class:`CompiledStencil` plans —
which is exactly the contract the :class:`repro.service.cache.CompileCache`
and the batched solve service key on.

Deliberately *excluded* from the fingerprint are the cosmetic pattern fields
(``name``, ``kind``, ``metadata``): renaming a stencil does not change the
kernel it compiles to.  Weights are encoded via ``float.hex`` so the mapping
is injective on the actual IEEE values — no two distinct weight vectors ever
collide through decimal rounding.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Optional, Tuple

from repro.core.pipeline import (
    CompiledStencil,
    CompileOptions,
    compile_resolved,
    resolve_compile_options,
)
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import FragmentShape, GPUSpec

__all__ = [
    "CompileRequest",
    "compile_fingerprint",
    "pattern_fingerprint",
]


def _canon(value: Any) -> Any:
    """Recursively reduce a value to hashable primitives with exact floats."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canon(v)) for k, v in value.items()))
    raise TypeError(f"cannot canonicalise {type(value).__name__} for fingerprinting")


def _digest(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _canon_pattern(pattern: StencilPattern) -> Tuple:
    """Semantic content of a pattern: ndim plus taps sorted by offset.

    Tap order inside a :class:`StencilPattern` is presentational — every
    consumer goes through the dense kernel / weight vector — so the canonical
    form sorts taps, making fingerprints invariant under tap reordering while
    staying injective on the (offset → weight) mapping.
    """
    taps = sorted(zip(pattern.offsets, pattern.weights))
    return (pattern.ndim,
            tuple((off, w.hex()) for off, w in taps))


def _canon_spec(spec: GPUSpec) -> Tuple:
    return _canon(dataclasses.asdict(spec))


def _canon_fragment(fragment: FragmentShape) -> Tuple:
    return (fragment.m, fragment.k, fragment.n, fragment.sparse)


def pattern_fingerprint(pattern: StencilPattern) -> str:
    """Digest of a pattern's semantic content (offsets + exact weights)."""
    return _digest(_canon_pattern(pattern))


def compile_fingerprint(options: CompileOptions) -> str:
    """Digest of every compile-relevant field of resolved options.

    The boundary condition is fingerprinted even though it does not change
    the compiled operands: executors select their halo handling from
    ``CompiledStencil.boundary``, so a plan compiled for one boundary must
    never be served for a problem with another.  The execution backend is
    fingerprinted for the same reason (and the payload version bumped to v3
    when it joined): backends differ numerically, so a cache must never
    serve a plan across backends — in memory or from disk.  v4 marks the
    ``neumann(flux=...)`` boundary family joining the vocabulary: the flux
    rides inside the canonical boundary string (``repr`` round-trip exact),
    and the version bump keeps pre-neumann fingerprints from colliding with
    post-neumann ones.
    """
    payload = (
        "sparstencil-compile-v4",
        _canon_pattern(options.pattern),
        options.grid_shape,
        options.dtype.value,
        _canon_spec(options.spec),
        options.engine,
        _canon_fragment(options.fragment),
        options.search,
        options.r1,
        options.r2,
        options.temporal_fusion,
        options.conversion_method,
        options.block_hint,
        options.boundary,
        options.backend,
    )
    return _digest(payload)


@dataclass(frozen=True, eq=False)
class CompileRequest:
    """A hashable, fingerprinted compile request.

    Built via :meth:`build`, which funnels the user-facing keyword arguments
    through :func:`resolve_compile_options` — so normalisation can never
    drift from what :func:`compile_stencil` actually does.  Equality and
    hashing go through the fingerprint, which makes requests usable directly
    as dict/set keys even though :class:`GPUSpec` itself is not hashable.
    """

    options: CompileOptions

    @staticmethod
    def build(pattern: StencilPattern, grid_shape: Tuple[int, ...],
              **compile_kwargs) -> "CompileRequest":
        return CompileRequest(
            options=resolve_compile_options(pattern, grid_shape, **compile_kwargs))

    @cached_property
    def fingerprint(self) -> str:
        return compile_fingerprint(self.options)

    @property
    def key(self) -> str:
        """Short human-readable cache key (pattern name + digest prefix)."""
        return f"{self.options.pattern.name}@{self.fingerprint[:12]}"

    def compile(self) -> CompiledStencil:
        """Compile this request (pure: equal requests → equivalent plans)."""
        return compile_resolved(self.options)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompileRequest):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        opts = self.options
        return (f"CompileRequest({opts.pattern.name!r}, grid={opts.grid_shape}, "
                f"dtype={opts.dtype.value}, engine={opts.engine}, "
                f"fingerprint={self.fingerprint[:12]})")

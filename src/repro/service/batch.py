"""Batched solve service: group, compile once, sweep many.

``solve_many`` takes a heterogeneous list of solve requests, groups them by
compile fingerprint, compiles each *distinct* plan exactly once (layout
search and the rest of the compile pipeline run in parallel across plans on
a thread pool) and then executes every request against its shared plan.  The
report carries per-request results plus the aggregate throughput and cache
numbers a serving deployment would export as metrics.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import CompiledStencil, StencilRunResult, run_stencil
from repro.service.cache import CacheStats, CompileCache, rebrand
from repro.service.fingerprint import CompileRequest
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.util.parallel import parallel_map
from repro.util.validation import require, require_positive_int

__all__ = ["SolveRequest", "BatchItem", "BatchReport", "solve_many",
           "run_stencil_batch", "solve_sharded"]


@dataclass
class SolveRequest:
    """One unit of work for the batched solver.

    ``options`` takes the same keyword arguments as
    :func:`repro.compile_stencil` (dtype, spec, engine, temporal_fusion, ...).
    """

    pattern: StencilPattern
    grid: Grid
    iterations: int
    options: Dict[str, Any] = field(default_factory=dict)
    tag: Optional[str] = None

    def compile_request(self) -> CompileRequest:
        return CompileRequest.build(
            self.pattern, tuple(self.grid.shape), **self.options)


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one request inside a batch."""

    request: SolveRequest
    compiled: CompiledStencil
    result: StencilRunResult
    fingerprint: str
    shared_plan: bool

    @property
    def tag(self) -> Optional[str]:
        return self.request.tag


@dataclass(frozen=True)
class BatchReport:
    """Per-request results plus the aggregate service-level metrics."""

    items: Tuple[BatchItem, ...]
    distinct_plans: int
    compiles_performed: int
    cache_hits: int
    compile_wall_seconds: float
    execute_wall_seconds: float
    #: lifetime snapshot of the (possibly shared) cache at batch completion;
    #: per-batch attribution lives in ``compiles_performed``/``cache_hits``
    cache_stats: CacheStats

    @property
    def results(self) -> List[StencilRunResult]:
        return [item.result for item in self.items]

    def by_tag(self) -> Dict[str, BatchItem]:
        """Tagged items keyed by their tag (untagged items are skipped)."""
        return {item.tag: item for item in self.items if item.tag is not None}

    @property
    def total_device_seconds(self) -> float:
        return sum(item.result.elapsed_seconds for item in self.items)

    @property
    def total_points_updated(self) -> float:
        """Original-resolution stencil updates across the whole batch.

        The engine layer reports this per run, correctly counting mixed
        fused + leftover sweeps.
        """
        return sum(item.result.points_updated for item in self.items)

    @property
    def aggregate_gstencil_per_second(self) -> float:
        device = self.total_device_seconds
        return self.total_points_updated / device / 1e9 if device > 0 else 0.0

    @property
    def amortized_compile_seconds(self) -> float:
        """Compile wall time divided over every request served by the batch."""
        return self.compile_wall_seconds / len(self.items) if self.items else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Share of *this batch's* plan lookups served from the cache."""
        lookups = self.cache_hits + self.compiles_performed
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "requests": len(self.items),
            "distinct_plans": self.distinct_plans,
            "compiles_performed": self.compiles_performed,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_lifetime_hit_rate": self.cache_stats.hit_rate,
            "compile_wall_seconds": self.compile_wall_seconds,
            "amortized_compile_seconds": self.amortized_compile_seconds,
            "execute_wall_seconds": self.execute_wall_seconds,
            "total_device_seconds": self.total_device_seconds,
            "aggregate_gstencil_per_second": self.aggregate_gstencil_per_second,
        }


def solve_many(
    requests: Sequence[SolveRequest],
    *,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
    compile_requests: Optional[Sequence[CompileRequest]] = None,
) -> BatchReport:
    """Solve a batch of heterogeneous stencil requests.

    Requests are grouped by compile fingerprint; each distinct fingerprint is
    compiled at most once (served from ``cache`` when already warm), with
    distinct compilations — dominated by the layout search — spread across a
    thread pool.  Execution then runs per request in submission order, so the
    outputs are identical to sequential, uncached ``sparstencil_solve`` calls.

    ``compile_requests``, when given, must be the per-request
    :class:`CompileRequest` objects in the same order; callers that already
    resolved them (the online server does, at admission) skip re-deriving
    each request's canonical fingerprint on the hot path.
    """
    requests = list(requests)
    require(len(requests) > 0, "solve_many needs at least one request")
    for request in requests:
        require_positive_int(request.iterations, "iterations")
    if cache is None:
        cache = CompileCache(capacity=max(len(requests), 8))

    if compile_requests is None:
        compile_requests = [request.compile_request() for request in requests]
    else:
        compile_requests = list(compile_requests)
        require(len(compile_requests) == len(requests),
                "compile_requests must match requests one-to-one")
    distinct: Dict[str, CompileRequest] = {}
    for creq in compile_requests:
        distinct.setdefault(creq.fingerprint, creq)

    # `events` attributes work to *this batch's* lookups — a shared cache may
    # concurrently serve other callers, so global miss counters can't be used.
    # list.append is atomic, so one list is safe across pool workers.
    events: List[str] = []
    compile_start = time.perf_counter()
    cold = [creq for creq in distinct.values() if not cache.contains(creq)]
    cold_plans = parallel_map(
        lambda creq: cache.get_or_compile(creq, events=events),
        cold, max_workers=max_workers)
    plans = {creq.fingerprint: plan for creq, plan in zip(cold, cold_plans)}
    for creq in distinct.values():
        if creq.fingerprint not in plans:
            plans[creq.fingerprint] = cache.get_or_compile(creq, events=events)
    compile_wall = time.perf_counter() - compile_start
    compiles_performed = events.count("compile")
    cache_hits = len(events) - compiles_performed

    fingerprint_counts = Counter(creq.fingerprint for creq in compile_requests)
    shared = {fp for fp, count in fingerprint_counts.items() if count > 1}

    execute_start = time.perf_counter()
    items: List[BatchItem] = []
    for request, creq in zip(requests, compile_requests):
        # the shared plan was compiled for the first request on this
        # fingerprint; every item still reports its own pattern identity
        compiled = rebrand(plans[creq.fingerprint], creq)
        # the batch cache also serves leftover plans (non-divisible
        # iteration counts), so they compile once per fingerprint too
        result = run_stencil(compiled, request.grid, request.iterations,
                             cache=cache)
        if request.tag is not None:
            # stamp the request's tag onto the result itself, so results
            # stay attributable after they leave the BatchItem wrapper
            result = replace(result, tag=request.tag)
        items.append(BatchItem(
            request=request,
            compiled=compiled,
            result=result,
            fingerprint=creq.fingerprint,
            shared_plan=creq.fingerprint in shared,
        ))
    execute_wall = time.perf_counter() - execute_start

    return BatchReport(
        items=tuple(items),
        distinct_plans=len(distinct),
        compiles_performed=compiles_performed,
        cache_hits=cache_hits,
        compile_wall_seconds=compile_wall,
        execute_wall_seconds=execute_wall,
        # snapshot — the live stats keep mutating as the cache serves later
        # batches, and a report must describe the batch it came from
        cache_stats=cache.snapshot_stats(),
    )


def run_stencil_batch(
    requests: Sequence[SolveRequest],
    *,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
) -> List[StencilRunResult]:
    """Thin wrapper over :func:`solve_many` returning just the run results."""
    return solve_many(requests, cache=cache, max_workers=max_workers).results


def solve_sharded(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    *,
    devices=2,
    shard_grid: Optional[Tuple[int, ...]] = None,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
    tag: Optional[str] = None,
    **compile_kwargs,
):
    """Compile once and execute sharded across N simulated devices.

    The service-level entry point for grids too large for one device: the
    reference plan compiles exactly like :func:`repro.sparstencil_solve`
    (through ``cache`` when given), then a
    :class:`repro.engine.ShardedExecutor` decomposes the grid into per-shard
    subgrids with radius-wide halos and sweeps them concurrently, exchanging
    halos between sweeps.  The output is bit-identical to the single-device
    run; the returned :class:`repro.engine.ShardedRunResult` adds the
    multi-device picture (per-shard utilization, halo-traffic fraction,
    modelled weak-scaling wall time).

    Parameters
    ----------
    devices:
        A :class:`repro.tcu.spec.MultiDeviceSpec`, or an integer device
        count — the cluster then uses the *compiled plan's* device, so the
        modelled numbers stay on one device even for custom specs.
    shard_grid:
        Optional shards-per-axis override (defaults to one shard per device,
        factored over the grid axes).
    tag:
        Optional request label, stamped onto the returned result (the same
        attribution :class:`BatchItem` carries for batched solves).
    """
    from repro.core.pipeline import compile_cached
    from repro.engine.sharded import ShardedExecutor

    compiled = compile_cached(pattern, tuple(grid.shape), cache=cache,
                              **compile_kwargs)
    executor = ShardedExecutor(devices, shard_grid=shard_grid, cache=cache,
                               max_workers=max_workers)
    result = executor.execute(compiled, grid, iterations)
    if tag is not None:
        result = replace(result, tag=tag)
    return compiled, result

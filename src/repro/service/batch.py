"""Batched solve engine: group, compile once, sweep many.

:func:`execute_batch` takes a heterogeneous list of :class:`Problem`\\ s,
groups them by compile fingerprint, compiles each *distinct* plan exactly
once (layout search and the rest of the compile pipeline run in parallel
across plans on a thread pool) and then executes every request against its
shared plan.  The report carries per-request results plus the aggregate
throughput and cache numbers a serving deployment would export as metrics.

User code reaches this engine through :meth:`repro.StencilSession.solve_batch`
(or the online server, whose micro-batches land here too).  The historical
``solve_many`` / ``solve_sharded`` entry points remain as
deprecation-warning shims that delegate to the default session, and
``SolveRequest`` is a deprecated alias of :class:`repro.session.Problem`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    CompiledStencil,
    StencilRunResult,
    execute_compiled,
)
from repro.obs.trace import current_span, span as obs_span
from repro.service.cache import CacheStats, CompileCache, rebrand
from repro.service.fingerprint import CompileRequest
from repro.session.problem import Problem
from repro.util.deprecation import warn_legacy
from repro.util.parallel import parallel_map
from repro.util.validation import require, require_positive_int

__all__ = ["Problem", "SolveRequest", "BatchItem", "BatchReport",
           "execute_batch", "solve_many", "run_stencil_batch",
           "solve_sharded"]


class SolveRequest(Problem):
    """Deprecated alias of :class:`repro.session.Problem`.

    .. deprecated:: 1.1
       The session layer made ``Problem`` the canonical request vocabulary
       (one name across the batch service, the server and the session
       itself).  Constructing a ``SolveRequest`` emits a
       ``DeprecationWarning`` and behaves exactly like a ``Problem``.
    """

    def __post_init__(self, dtype: Optional[Any] = None) -> None:
        # frame chain: warn_legacy -> __post_init__ -> dataclass __init__ ->
        # caller, so the warning is attributed to the constructing module
        warn_legacy("SolveRequest", "repro.session.Problem", stacklevel=4)
        super().__post_init__(dtype)


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one request inside a batch."""

    request: Problem
    compiled: CompiledStencil
    result: StencilRunResult
    fingerprint: str
    shared_plan: bool

    @property
    def tag(self) -> Optional[str]:
        return self.request.tag


@dataclass(frozen=True)
class BatchReport:
    """Per-request results plus the aggregate service-level metrics."""

    items: Tuple[BatchItem, ...]
    distinct_plans: int
    compiles_performed: int
    cache_hits: int
    compile_wall_seconds: float
    execute_wall_seconds: float
    #: lifetime snapshot of the (possibly shared) cache at batch completion;
    #: per-batch attribution lives in ``compiles_performed``/``cache_hits``
    cache_stats: CacheStats

    @property
    def results(self) -> List[StencilRunResult]:
        return [item.result for item in self.items]

    def by_tag(self) -> Dict[str, BatchItem]:
        """Tagged items keyed by their tag (untagged items are skipped)."""
        return {item.tag: item for item in self.items if item.tag is not None}

    @property
    def total_device_seconds(self) -> float:
        return sum(item.result.elapsed_seconds for item in self.items)

    @property
    def total_points_updated(self) -> float:
        """Original-resolution stencil updates across the whole batch.

        The engine layer reports this per run, correctly counting mixed
        fused + leftover sweeps.
        """
        return sum(item.result.points_updated for item in self.items)

    @property
    def aggregate_gstencil_per_second(self) -> float:
        device = self.total_device_seconds
        return self.total_points_updated / device / 1e9 if device > 0 else 0.0

    @property
    def amortized_compile_seconds(self) -> float:
        """Compile wall time divided over every request served by the batch."""
        return self.compile_wall_seconds / len(self.items) if self.items else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Share of *this batch's* plan lookups served from the cache."""
        lookups = self.cache_hits + self.compiles_performed
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "requests": len(self.items),
            "distinct_plans": self.distinct_plans,
            "compiles_performed": self.compiles_performed,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_lifetime_hit_rate": self.cache_stats.hit_rate,
            "compile_wall_seconds": self.compile_wall_seconds,
            "amortized_compile_seconds": self.amortized_compile_seconds,
            "execute_wall_seconds": self.execute_wall_seconds,
            "total_device_seconds": self.total_device_seconds,
            "aggregate_gstencil_per_second": self.aggregate_gstencil_per_second,
        }


def execute_batch(
    requests: Sequence[Problem],
    *,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
    compile_requests: Optional[Sequence[CompileRequest]] = None,
) -> BatchReport:
    """Solve a batch of heterogeneous stencil problems (the engine behind
    :meth:`repro.StencilSession.solve_batch`).

    Requests are grouped by compile fingerprint; each distinct fingerprint is
    compiled at most once (served from ``cache`` when already warm, a private
    per-batch cache otherwise), with distinct compilations — dominated by the
    layout search — spread across a thread pool.  Execution then runs per
    request in submission order, so the outputs are identical to sequential,
    uncached single solves.

    ``compile_requests``, when given, must be the per-request
    :class:`CompileRequest` objects in the same order; callers that already
    resolved them (the online server does, at admission) skip re-deriving
    each request's canonical fingerprint on the hot path.
    """
    requests = list(requests)
    require(len(requests) > 0, "a batch needs at least one request")
    for request in requests:
        require_positive_int(request.iterations, "iterations")
    if cache is None:
        cache = CompileCache(capacity=max(len(requests), 8))

    if compile_requests is None:
        compile_requests = [request.compile_request() for request in requests]
    else:
        compile_requests = list(compile_requests)
        require(len(compile_requests) == len(requests),
                "compile_requests must match requests one-to-one")
    distinct: Dict[str, CompileRequest] = {}
    for creq in compile_requests:
        distinct.setdefault(creq.fingerprint, creq)

    # `events` attributes work to *this batch's* lookups — a shared cache may
    # concurrently serve other callers, so global miss counters can't be used.
    # list.append is atomic, so one list is safe across pool workers.
    events: List[str] = []
    compile_start = time.perf_counter()
    cold = [creq for creq in distinct.values() if not cache.contains(creq)]
    with obs_span("batch.compile", distinct_plans=len(distinct),
                  cold_plans=len(cold)) as compile_span:
        active = current_span()
        if active is not None and active.tracer is not None:
            # Pool threads do not inherit the tracing contextvar; re-bind
            # the compile span so the cache's lookup spans join the trace.
            tracer = active.tracer

            def compile_one(creq: CompileRequest) -> CompiledStencil:
                with tracer.activate(active):
                    return cache.get_or_compile(creq, events=events)
        else:
            def compile_one(creq: CompileRequest) -> CompiledStencil:
                return cache.get_or_compile(creq, events=events)

        cold_plans = parallel_map(compile_one, cold, max_workers=max_workers)
        plans = {creq.fingerprint: plan
                 for creq, plan in zip(cold, cold_plans)}
        for creq in distinct.values():
            if creq.fingerprint not in plans:
                plans[creq.fingerprint] = cache.get_or_compile(
                    creq, events=events)
        compiles_performed = events.count("compile")
        cache_hits = len(events) - compiles_performed
        compile_span.set(compiles_performed=compiles_performed,
                         cache_hits=cache_hits)
    compile_wall = time.perf_counter() - compile_start

    fingerprint_counts = Counter(creq.fingerprint for creq in compile_requests)
    shared = {fp for fp, count in fingerprint_counts.items() if count > 1}

    execute_start = time.perf_counter()
    items: List[BatchItem] = []
    for request, creq in zip(requests, compile_requests):
        # the shared plan was compiled for the first request on this
        # fingerprint; every item still reports its own pattern identity
        compiled = rebrand(plans[creq.fingerprint], creq)
        # the batch cache also serves leftover plans (non-divisible
        # iteration counts), so they compile once per fingerprint too
        with obs_span("execute", fingerprint=creq.fingerprint,
                      iterations=request.iterations,
                      tag=request.tag) as execute_span:
            result = execute_compiled(compiled, request.grid,
                                      request.iterations, cache=cache)
            execute_span.add_device_seconds(result.elapsed_seconds)
        if request.tag is not None:
            # stamp the request's tag onto the result itself, so results
            # stay attributable after they leave the BatchItem wrapper
            result = replace(result, tag=request.tag)
        items.append(BatchItem(
            request=request,
            compiled=compiled,
            result=result,
            fingerprint=creq.fingerprint,
            shared_plan=creq.fingerprint in shared,
        ))
    execute_wall = time.perf_counter() - execute_start

    return BatchReport(
        items=tuple(items),
        distinct_plans=len(distinct),
        compiles_performed=compiles_performed,
        cache_hits=cache_hits,
        compile_wall_seconds=compile_wall,
        execute_wall_seconds=execute_wall,
        # snapshot — the live stats keep mutating as the cache serves later
        # batches, and a report must describe the batch it came from
        cache_stats=cache.snapshot_stats(),
    )


def solve_many(
    requests: Sequence[Problem],
    *,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
    compile_requests: Optional[Sequence[CompileRequest]] = None,
) -> BatchReport:
    """Deprecated shim: batched solve through the default session.

    .. deprecated:: 1.1
       Use :meth:`repro.StencilSession.solve_batch`.  Behaviour (including
       the private per-batch cache when ``cache`` is omitted) and results
       are bit-identical.
    """
    from repro.session import default_session

    warn_legacy("solve_many()", "StencilSession.solve_batch()")
    return default_session().solve_batch(
        requests, cache=cache, max_workers=max_workers,
        compile_requests=compile_requests)


def run_stencil_batch(
    requests: Sequence[Problem],
    *,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
) -> List[StencilRunResult]:
    """Deprecated shim: batched solve returning just the run results.

    .. deprecated:: 1.1
       Use ``StencilSession.solve_batch(problems).results``.
    """
    from repro.session import default_session

    warn_legacy("run_stencil_batch()",
                "StencilSession.solve_batch(...).results")
    return default_session().solve_batch(
        requests, cache=cache, max_workers=max_workers).results


def solve_sharded(
    pattern,
    grid,
    iterations: int,
    *,
    devices=2,
    shard_grid: Optional[Tuple[int, ...]] = None,
    cache: Optional[CompileCache] = None,
    max_workers: Optional[int] = None,
    tag: Optional[str] = None,
    **compile_kwargs,
):
    """Deprecated shim: sharded solve through the default session.

    .. deprecated:: 1.1
       Use :meth:`repro.StencilSession.solve` with
       ``SolvePolicy(mode="sharded", devices=..., shard_grid=...)`` (or
       ``mode="auto"`` to let the perf/partition model decide).  Returns the
       bit-identical ``(CompiledStencil, ShardedRunResult)`` pair.
    """
    from repro.session import Problem, SolvePolicy, default_session

    warn_legacy("solve_sharded()", 'StencilSession.solve(mode="sharded")')
    solution = default_session().solve(
        Problem(pattern, grid, iterations, options=compile_kwargs, tag=tag),
        SolvePolicy(mode="sharded", devices=devices, shard_grid=shard_grid,
                    max_workers=max_workers),
        cache=cache)
    return solution.compiled, solution.result

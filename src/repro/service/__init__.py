"""Serving layer: compilation cache and batched solve service.

The paper's pipeline is "compile once, sweep many times"
(:mod:`repro.core.pipeline`); this package makes the *once* hold across
independent requests, which is what a deployment serving many users needs:

* :mod:`repro.service.fingerprint` — canonical, injective fingerprints of
  ``(pattern, grid shape, dtype, device spec, layout options)``;
* :mod:`repro.service.cache` — a thread-safe LRU :class:`CompileCache` with
  hit/miss statistics and optional on-disk plan persistence;
* :mod:`repro.service.batch` — :func:`execute_batch`, the batched solve
  engine behind :meth:`repro.StencilSession.solve_batch` (and the deprecated
  ``solve_many`` / ``run_stencil_batch`` / ``solve_sharded`` shims), which
  groups heterogeneous requests by fingerprint, compiles each distinct plan
  once (in parallel) and reports aggregate throughput.

The canonical request type is :class:`repro.session.Problem`;
``SolveRequest`` survives as a deprecated alias of it.
"""

from repro.service.fingerprint import (
    CompileRequest,
    compile_fingerprint,
    pattern_fingerprint,
)
from repro.service.cache import CacheEntry, CacheStats, CompileCache, rebrand
from repro.service.batch import (
    BatchItem,
    BatchReport,
    Problem,
    SolveRequest,
    execute_batch,
    run_stencil_batch,
    solve_many,
    solve_sharded,
)

__all__ = [
    "CompileRequest",
    "compile_fingerprint",
    "pattern_fingerprint",
    "CacheEntry",
    "CacheStats",
    "CompileCache",
    "rebrand",
    "BatchItem",
    "BatchReport",
    "Problem",
    "SolveRequest",
    "execute_batch",
    "run_stencil_batch",
    "solve_many",
    "solve_sharded",
]

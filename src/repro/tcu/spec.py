"""Hardware specification of the simulated GPU.

The numbers below describe an A100-class device (the paper's platform): 108
SMs with 4 sparse-capable Tensor Cores each, HBM2e global memory, and the
fragment shapes exposed by ``mma``/``mma.sp``.  They parameterise both the
functional MMA models and the analytical roofline used by the layout search
and the benchmark harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from repro.util.validation import require, require_positive_int

__all__ = [
    "DataType",
    "FragmentShape",
    "GPUSpec",
    "MultiDeviceSpec",
    "A100_SPEC",
    "SPARSE_FRAGMENTS",
    "DENSE_FRAGMENTS",
    "multi_a100",
]


class DataType(str, enum.Enum):
    """Element types supported by the simulated Tensor Cores."""

    FP16 = "fp16"
    BF16 = "bf16"
    TF32 = "tf32"
    FP64 = "fp64"

    @property
    def itemsize(self) -> int:
        """Bytes per element as stored in (simulated) device memory."""
        return {"fp16": 2, "bf16": 2, "tf32": 4, "fp64": 8}[self.value]

    @property
    def supports_sparse_tcu(self) -> bool:
        """Whether sparse Tensor Cores accept this type (A100: no FP64)."""
        return self in (DataType.FP16, DataType.BF16, DataType.TF32)

    @property
    def numpy_dtype(self) -> np.dtype:
        """Host dtype used to emulate the device arithmetic."""
        return np.dtype(
            {"fp16": np.float16, "bf16": np.float32, "tf32": np.float32,
             "fp64": np.float64}[self.value]
        )


@dataclass(frozen=True)
class FragmentShape:
    """An MMA fragment ``M x K x N`` (the D = A(MxK) @ B(KxN) tile shape).

    ``K`` is the *logical* (dense-equivalent) reduction depth; for sparse
    fragments the hardware stores only ``K/2`` values of A plus metadata.
    """

    m: int
    k: int
    n: int
    sparse: bool = False

    def __post_init__(self) -> None:
        require_positive_int(self.m, "m")
        require_positive_int(self.k, "k")
        require_positive_int(self.n, "n")
        if self.sparse:
            require(self.k % 4 == 0, "sparse fragments need K divisible by 4")

    @property
    def macs(self) -> int:
        """Dense-equivalent multiply–accumulates per fragment operation."""
        return self.m * self.k * self.n

    @property
    def label(self) -> str:
        prefix = "sp" if self.sparse else "dn"
        return f"{prefix}:{self.m}x{self.k}x{self.n}"

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.m, self.k, self.n)


#: Sparse fragment shapes mentioned in the paper (Section 2.1): the hardware
#: partitions matrices into fixed fragments such as 16x16x8 and 16x32x8.
SPARSE_FRAGMENTS: Tuple[FragmentShape, ...] = (
    FragmentShape(16, 16, 8, sparse=True),
    FragmentShape(16, 32, 8, sparse=True),
)

#: Dense fragment shapes used by the dense-TCU baselines (wmma 16x16x16 and
#: the mma m16n8k8 / m16n8k16 shapes).
DENSE_FRAGMENTS: Tuple[FragmentShape, ...] = (
    FragmentShape(16, 16, 16, sparse=False),
    FragmentShape(16, 8, 8, sparse=False),
    FragmentShape(16, 16, 8, sparse=False),
)


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of the simulated device (defaults model an A100-SXM4-40GB).

    Attributes
    ----------
    name: marketing name of the modelled device.
    sm_count: number of streaming multiprocessors.
    tensor_cores_per_sm: (sparse-capable) Tensor Cores per SM.
    clock_ghz: sustained SM clock in GHz.
    global_bandwidth_gbs: HBM bandwidth in GB/s.
    shared_bandwidth_gbs: aggregate shared-memory bandwidth in GB/s.
    l2_bandwidth_gbs: aggregate L2 bandwidth in GB/s.
    shared_mem_per_sm_kb: shared memory capacity per SM (kB).
    max_threads_per_sm: occupancy limit.
    cpi_tcu: cycles per dense Tensor-Core fragment op (CPI_tcu in Eq. 7).
    sparse_speedup: throughput multiplier of sparse over dense fragments (2x).
    ffma_tflops: scalar FFMA throughput (used for the naive CUDA baseline).
    tcu_tflops: dense Tensor-Core throughput per data type (TFLOP/s).
    """

    name: str = "A100-SXM4-40GB (simulated)"
    sm_count: int = 108
    tensor_cores_per_sm: int = 4
    clock_ghz: float = 1.41
    global_bandwidth_gbs: float = 1555.0
    shared_bandwidth_gbs: float = 19_400.0
    l2_bandwidth_gbs: float = 4_800.0
    shared_mem_per_sm_kb: int = 164
    max_threads_per_sm: int = 2048
    cpi_tcu: float = 4.0
    sparse_speedup: float = 2.0
    ffma_tflops: float = 19.5
    tcu_tflops: Dict[str, float] = field(
        default_factory=lambda: {
            "fp16": 312.0,
            "bf16": 312.0,
            "tf32": 156.0,
            "fp64": 19.5,
        }
    )

    @property
    def n_tcu(self) -> int:
        """Total Tensor Cores on the device (N_tcu of Eq. 7)."""
        return self.sm_count * self.tensor_cores_per_sm

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def dense_tcu_tflops(self, dtype: DataType) -> float:
        """Dense Tensor-Core peak throughput for ``dtype`` in TFLOP/s."""
        return self.tcu_tflops[DataType(dtype).value]

    def sparse_tcu_tflops(self, dtype: DataType) -> float:
        """Sparse Tensor-Core peak throughput for ``dtype`` in TFLOP/s.

        FP64 has no sparse Tensor-Core path on this architecture; requesting
        it raises so callers fall back to the dense model explicitly.
        """
        dtype = DataType(dtype)
        require(dtype.supports_sparse_tcu,
                f"{dtype.value} is not supported by sparse Tensor Cores")
        return self.dense_tcu_tflops(dtype) * self.sparse_speedup

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: Default device used across benchmarks and examples.
A100_SPEC = GPUSpec()


@dataclass(frozen=True)
class MultiDeviceSpec:
    """A cluster of identical simulated devices joined by an interconnect.

    The sharded execution engine compiles per-shard kernels against the
    per-device :class:`GPUSpec` and models the cross-device halo exchange with
    the interconnect numbers below (defaults describe NVLink3 between
    A100-SXM4 boards: 600 GB/s per direction per GPU, microsecond-scale
    launch/transfer latency).

    Attributes
    ----------
    device: specification of each individual device.
    device_count: number of devices available to the executor.
    interconnect_bandwidth_gbs: per-device halo-exchange bandwidth in GB/s.
    link_latency_seconds: fixed cost per halo message (latency + sync).
    """

    device: GPUSpec = field(default_factory=GPUSpec)
    device_count: int = 1
    interconnect_bandwidth_gbs: float = 600.0
    link_latency_seconds: float = 2e-6

    def __post_init__(self) -> None:
        require_positive_int(self.device_count, "device_count")
        require(self.interconnect_bandwidth_gbs > 0.0,
                "interconnect_bandwidth_gbs must be positive")
        require(self.link_latency_seconds >= 0.0,
                "link_latency_seconds must be non-negative")

    @property
    def name(self) -> str:
        return f"{self.device_count}x {self.device.name}"

    @property
    def total_tcu_count(self) -> int:
        """Tensor Cores across the whole cluster."""
        return self.device_count * self.device.n_tcu

    def exchange_seconds(self, bytes_per_device: float, messages: int = 1) -> float:
        """Modelled time for one device to receive ``bytes_per_device`` of halo
        data split over ``messages`` point-to-point transfers."""
        require(bytes_per_device >= 0.0, "bytes_per_device must be non-negative")
        return (self.link_latency_seconds * max(0, messages)
                + bytes_per_device / (self.interconnect_bandwidth_gbs * 1e9))

    def with_overrides(self, **kwargs) -> "MultiDeviceSpec":
        return replace(self, **kwargs)


def multi_a100(device_count: int, **overrides) -> MultiDeviceSpec:
    """Convenience constructor: ``device_count`` simulated A100s on NVLink."""
    return MultiDeviceSpec(device=A100_SPEC, device_count=device_count,
                           **overrides)

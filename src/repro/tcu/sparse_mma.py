"""Functional model of 2:4 sparse Tensor-Core fragment MMA (``mma.sp``).

``sparse_mma`` takes a 2:4-sparse A operand, compresses it into the
values+metadata form the hardware consumes, and computes the product *from
the compressed representation only* — i.e. by gathering the two B rows each
metadata index points at — so a correct result genuinely certifies that the
metadata produced by the transformation pipeline is right, not merely that
the dense matrix was.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tcu.sparsity24 import Compressed24, compress_24
from repro.tcu.spec import DataType, FragmentShape
from repro.util.arrays import ceil_div, pad_to_multiple
from repro.util.validation import require, require_array

__all__ = ["SparseMMAResult", "sparse_mma", "sparse_mma_compressed"]


@dataclass(frozen=True)
class SparseMMAResult:
    """Result of a fragment-tiled sparse MMA.

    Attributes
    ----------
    d: the ``(m, n)`` product.
    fragment_ops: number of sparse fragment operations issued.
    compressed: the compressed A operand that was consumed.
    metadata_bytes: bytes of 2-bit metadata shipped with A.
    """

    d: np.ndarray
    fragment_ops: int
    compressed: Compressed24
    metadata_bytes: int


def sparse_mma_compressed(
    compressed: Compressed24,
    b: np.ndarray,
    fragment: FragmentShape,
    *,
    c: np.ndarray | None = None,
    dtype: DataType = DataType.FP16,
) -> SparseMMAResult:
    """Compute ``D = (A ⊙ M) @ B (+ C)`` from the compressed A operand.

    The computation gathers ``B[group_base + index]`` per retained value and
    reduces over the compressed K/2 dimension — the same dataflow the sparse
    Tensor Core implements in silicon.
    """
    b = require_array(b, "b", ndim=2)
    require(fragment.sparse, "sparse_mma requires a sparse fragment shape")
    dtype = DataType(dtype)
    require(dtype.supports_sparse_tcu,
            f"{dtype.value} is not supported by sparse Tensor Cores")

    k = compressed.k
    require(b.shape[0] >= k - 3 and b.shape[0] <= k,
            f"B has {b.shape[0]} rows but compressed A encodes k={k}")
    b_pad = pad_to_multiple(np.asarray(b, dtype=dtype.numpy_dtype), 4, axis=0)
    require(b_pad.shape[0] == k, "B padding does not line up with compressed K")

    m = compressed.m
    n = b_pad.shape[1]
    n_groups = k // 4

    values = np.asarray(compressed.values, dtype=dtype.numpy_dtype)
    indices = compressed.indices.astype(np.int64)
    # Column index in the (padded) dense K space that each retained value hits.
    group_base = np.repeat(np.arange(n_groups) * 4, 2)[None, :]     # (1, k/2)
    gather_cols = group_base + indices                              # (m, k/2)

    acc_dtype = np.float32
    # Gather the B rows each retained value multiplies: (m, k/2, n) would be
    # large for big problems, so reduce in chunks of rows to bound memory.
    d = np.empty((m, n), dtype=acc_dtype)
    row_chunk = max(1, int(2**22 // max(1, (k // 2) * n)))
    for start in range(0, m, row_chunk):
        stop = min(m, start + row_chunk)
        gathered = b_pad[gather_cols[start:stop]]                    # (r, k/2, n)
        vals = values[start:stop].astype(acc_dtype)[:, :, None]      # (r, k/2, 1)
        d[start:stop] = np.einsum(
            "rkn,rkn->rn", gathered.astype(acc_dtype), np.broadcast_to(vals, gathered.shape)
        )

    if c is not None:
        c = require_array(c, "c", ndim=2)
        require(c.shape == (m, n), f"c must have shape {(m, n)}, got {c.shape}")
        d = d + np.asarray(c, dtype=acc_dtype)

    grid_m = ceil_div(m, fragment.m)
    grid_k = ceil_div(k, fragment.k)
    grid_n = ceil_div(n, fragment.n)
    fragment_ops = grid_m * grid_k * grid_n

    return SparseMMAResult(
        d=np.asarray(d, dtype=np.float64),
        fragment_ops=fragment_ops,
        compressed=compressed,
        metadata_bytes=compressed.metadata_bytes(),
    )


def sparse_mma(
    a: np.ndarray,
    b: np.ndarray,
    fragment: FragmentShape,
    *,
    c: np.ndarray | None = None,
    dtype: DataType = DataType.FP16,
) -> SparseMMAResult:
    """Compress a 2:4-sparse ``a`` and run :func:`sparse_mma_compressed`.

    Raises
    ------
    ValueError
        If ``a`` violates the 2:4 constraint (callers must run the Structured
        Sparsity Conversion first — exactly the contract of real hardware).
    """
    a = require_array(a, "a", ndim=2)
    b = require_array(b, "b", ndim=2)
    require(a.shape[1] == b.shape[0],
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    dtype = DataType(dtype)
    a_device = np.asarray(a, dtype=dtype.numpy_dtype)
    compressed = compress_24(a_device)
    return sparse_mma_compressed(compressed, b, fragment, c=c, dtype=dtype)

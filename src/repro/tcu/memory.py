"""Memory-traffic accounting and the bandwidth side of the roofline.

Equation 8 of the paper models memory time as the maximum of the global
memory term (read+write volume over HBM bandwidth) and the shared memory term
(staging traffic over shared-memory bandwidth).  :class:`MemoryTraffic`
carries the four volumes and this module converts them into seconds for a
given :class:`~repro.tcu.spec.GPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcu.spec import GPUSpec
from repro.util.validation import require

__all__ = [
    "MemoryTraffic",
    "global_memory_time",
    "shared_memory_time",
    "memory_time",
]


@dataclass(frozen=True)
class MemoryTraffic:
    """Bytes moved by one kernel invocation.

    Attributes
    ----------
    global_read_bytes / global_write_bytes:
        Traffic between HBM and the chip (``data_R`` / ``data_W`` in Eq. 8).
    shared_read_bytes / shared_write_bytes:
        Traffic between shared memory and the register file
        (``data_transR`` / ``data_transW``).
    metadata_bytes:
        2-bit sparse metadata shipped alongside the A operand (counted in
        global reads as well; kept separately for the overhead analysis).
    lut_bytes:
        Host-precomputed lookup tables copied to the device once.
    """

    global_read_bytes: float = 0.0
    global_write_bytes: float = 0.0
    shared_read_bytes: float = 0.0
    shared_write_bytes: float = 0.0
    metadata_bytes: float = 0.0
    lut_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in ("global_read_bytes", "global_write_bytes",
                     "shared_read_bytes", "shared_write_bytes",
                     "metadata_bytes", "lut_bytes"):
            require(getattr(self, name) >= 0.0, f"{name} must be non-negative")

    @property
    def global_bytes(self) -> float:
        return self.global_read_bytes + self.global_write_bytes

    @property
    def shared_bytes(self) -> float:
        return self.shared_read_bytes + self.shared_write_bytes

    @property
    def total_bytes(self) -> float:
        return self.global_bytes + self.shared_bytes + self.metadata_bytes + self.lut_bytes

    def scaled(self, factor: float) -> "MemoryTraffic":
        """Return traffic multiplied by ``factor`` (e.g. per-iteration → total)."""
        require(factor >= 0.0, "factor must be non-negative")
        return MemoryTraffic(
            global_read_bytes=self.global_read_bytes * factor,
            global_write_bytes=self.global_write_bytes * factor,
            shared_read_bytes=self.shared_read_bytes * factor,
            shared_write_bytes=self.shared_write_bytes * factor,
            metadata_bytes=self.metadata_bytes * factor,
            lut_bytes=self.lut_bytes * factor,
        )

    def combined(self, other: "MemoryTraffic") -> "MemoryTraffic":
        """Element-wise sum of two traffic records."""
        return MemoryTraffic(
            global_read_bytes=self.global_read_bytes + other.global_read_bytes,
            global_write_bytes=self.global_write_bytes + other.global_write_bytes,
            shared_read_bytes=self.shared_read_bytes + other.shared_read_bytes,
            shared_write_bytes=self.shared_write_bytes + other.shared_write_bytes,
            metadata_bytes=self.metadata_bytes + other.metadata_bytes,
            lut_bytes=self.lut_bytes + other.lut_bytes,
        )


def global_memory_time(traffic: MemoryTraffic, spec: GPUSpec) -> float:
    """Seconds spent on HBM traffic: ``(data_R + data_W) / bw_G``."""
    volume = traffic.global_bytes + traffic.metadata_bytes + traffic.lut_bytes
    return volume / (spec.global_bandwidth_gbs * 1e9)


def shared_memory_time(traffic: MemoryTraffic, spec: GPUSpec) -> float:
    """Seconds spent on shared-memory staging: ``(data_transR + data_transW) / bw_S``."""
    return traffic.shared_bytes / (spec.shared_bandwidth_gbs * 1e9)


def memory_time(traffic: MemoryTraffic, spec: GPUSpec) -> float:
    """Eq. 8: the slower of the global and shared memory paths."""
    return max(global_memory_time(traffic, spec), shared_memory_time(traffic, spec))

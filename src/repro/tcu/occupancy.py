"""Device-pool occupancy accounting for the simulated cluster.

A serving deployment runs many concurrent solves against one pool of
devices; the scheduler needs to know, at any instant, how many devices are
free, and the operator needs to know, over time, how busy each device has
been.  :class:`OccupancyLedger` provides both: an atomic lease/release
protocol (a lease can never over-subscribe the pool — acquisition blocks
until enough devices are free) plus per-device busy-time accounting that the
telemetry layer exports as utilization.

The ledger tracks *host* wall time while a lease is held.  The modelled
device seconds of the runs themselves live in the
:class:`~repro.core.pipeline.StencilRunResult`; callers may additionally
record them on release so both pictures are available.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import RollingLatency, global_registry
from repro.util.validation import require, require_positive_int

__all__ = ["DeviceLease", "DeviceState", "OccupancyLedger"]

#: Rolling window of per-device lease hold times kept for percentile export.
HOLD_WINDOW = 512


@dataclass
class DeviceState:
    """Lifetime accounting for one device of the pool."""

    device_id: int
    busy_seconds: float = 0.0
    modelled_seconds: float = 0.0
    leases: int = 0
    in_use: bool = False
    hold: RollingLatency = field(
        default_factory=lambda: RollingLatency(HOLD_WINDOW))

    def as_dict(self) -> Dict[str, float]:
        return {
            "device_id": self.device_id,
            "busy_seconds": self.busy_seconds,
            "modelled_seconds": self.modelled_seconds,
            "leases": self.leases,
            "in_use": self.in_use,
            "hold_seconds": {
                "mean_seconds": self.hold.mean,
                "p50_seconds": self.hold.percentile(50.0),
                "p95_seconds": self.hold.percentile(95.0),
                "p99_seconds": self.hold.percentile(99.0),
                "max_seconds": self.hold.percentile(100.0),
            },
        }


@dataclass(frozen=True)
class DeviceLease:
    """A set of devices held by one run; returned by :meth:`OccupancyLedger.acquire`."""

    device_ids: Tuple[int, ...]
    acquired_at: float = field(default_factory=time.perf_counter)

    @property
    def device_count(self) -> int:
        return len(self.device_ids)


class OccupancyLedger:
    """Thread-safe lease/release accounting over a fixed pool of devices.

    Invariants (enforced, not advisory):

    * the devices of every outstanding lease are disjoint — occupancy can
      never exceed ``device_count``;
    * :meth:`acquire` blocks until enough devices are free (so callers may
      simply ask; the pool itself is the backpressure);
    * ``peak_in_use`` records the high-water mark, which is what the
      occupancy tests assert against.
    """

    def __init__(self, device_count: int) -> None:
        require_positive_int(device_count, "device_count")
        self.device_count = device_count
        self._condition = threading.Condition()
        self._devices = [DeviceState(device_id=i) for i in range(device_count)]
        self._free: List[int] = list(range(device_count))
        self._peak_in_use = 0
        self._total_leases = 0
        self._created_at = time.perf_counter()
        # Re-register into the process-wide metrics registry (weakref'd:
        # a garbage-collected ledger drops out of the unified snapshot).
        self.metrics_section = global_registry().register_provider(
            "devices", self.snapshot)

    # ------------------------------------------------------------------ #
    # lease protocol
    # ------------------------------------------------------------------ #
    def acquire(self, devices: int = 1,
                timeout: Optional[float] = None) -> DeviceLease:
        """Block until ``devices`` devices are free and lease them atomically.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        require_positive_int(devices, "devices")
        require(devices <= self.device_count,
                f"cannot lease {devices} devices from a pool of "
                f"{self.device_count}")
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._condition:
            while len(self._free) < devices:
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"no {devices} free devices within {timeout}s "
                        f"({self.device_count - len(self._free)} of "
                        f"{self.device_count} in use)")
                self._condition.wait(remaining)
            return self._grant(devices)

    def try_acquire(self, devices: int = 1) -> Optional[DeviceLease]:
        """Non-blocking :meth:`acquire`: ``None`` when not enough are free."""
        require_positive_int(devices, "devices")
        if devices > self.device_count:
            return None
        with self._condition:
            if len(self._free) < devices:
                return None
            return self._grant(devices)

    def _grant(self, devices: int) -> DeviceLease:
        """Hand out ``devices`` free devices; caller holds the condition."""
        ids = tuple(self._free.pop(0) for _ in range(devices))
        for device_id in ids:
            state = self._devices[device_id]
            state.in_use = True
            state.leases += 1
        self._total_leases += 1
        in_use = self.device_count - len(self._free)
        self._peak_in_use = max(self._peak_in_use, in_use)
        return DeviceLease(device_ids=ids)

    def release(self, lease: DeviceLease,
                modelled_seconds: float = 0.0) -> float:
        """Return a lease's devices to the pool.

        Records the host wall time the lease was held against every leased
        device (they ran concurrently, so each was busy for the full span).
        ``modelled_seconds`` is the run's *total* modelled device time and is
        split evenly across the leased devices, so summing
        ``modelled_seconds`` over the pool reproduces the total rather than
        multiplying it by the lease width.  Returns the held wall seconds.
        """
        held = max(0.0, time.perf_counter() - lease.acquired_at)
        modelled_share = modelled_seconds / lease.device_count
        with self._condition:
            for device_id in lease.device_ids:
                state = self._devices[device_id]
                require(state.in_use,
                        f"device {device_id} released but not leased")
                state.in_use = False
                state.busy_seconds += held
                state.modelled_seconds += modelled_share
                state.hold.record(held)
                self._free.append(device_id)
            self._free.sort()
            self._condition.notify_all()
        return held

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def free(self) -> int:
        with self._condition:
            return len(self._free)

    @property
    def in_use(self) -> int:
        with self._condition:
            return self.device_count - len(self._free)

    @property
    def peak_in_use(self) -> int:
        with self._condition:
            return self._peak_in_use

    @property
    def total_leases(self) -> int:
        with self._condition:
            return self._total_leases

    def utilization(self, wall_seconds: Optional[float] = None
                    ) -> Dict[int, float]:
        """Busy fraction per device over ``wall_seconds`` (ledger lifetime
        when omitted), clamped to [0, 1]."""
        if wall_seconds is None:
            wall_seconds = time.perf_counter() - self._created_at
        with self._condition:
            if wall_seconds <= 0:
                return {state.device_id: 0.0 for state in self._devices}
            return {
                state.device_id:
                    min(1.0, max(0.0, state.busy_seconds / wall_seconds))
                for state in self._devices
            }

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict occupancy picture for the telemetry exporter.

        Per-device entries carry lease hold-time *percentiles* (p50/p95/p99
        over a rolling window), not just lifetime means, and every
        wall-time division is guarded so a ledger snapshotted immediately
        after construction (zero elapsed wall time) exports zeros instead
        of raising.
        """
        wall = max(0.0, time.perf_counter() - self._created_at)
        with self._condition:
            busy = [state.busy_seconds for state in self._devices]
            per_device = []
            for state in self._devices:
                entry = state.as_dict()
                entry["utilization"] = (
                    min(1.0, state.busy_seconds / wall) if wall > 0 else 0.0)
                per_device.append(entry)
            denominator = wall * self.device_count
            return {
                "device_count": self.device_count,
                "in_use": self.device_count - len(self._free),
                "peak_in_use": self._peak_in_use,
                "total_leases": self._total_leases,
                "wall_seconds": wall,
                "per_device": per_device,
                "mean_utilization": (sum(busy) / denominator
                                     if denominator > 0 else 0.0),
            }

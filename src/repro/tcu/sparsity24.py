"""2:4 structured sparsity: validation, compression and metadata.

Sparse Tensor Cores require that within every group of four consecutive
elements along the reduction (K) dimension of the A operand at most two are
nonzero (Eq. 2 of the paper).  The hardware then stores only the two retained
values per group plus a 2-bit index for each — exactly what
:func:`compress_24` produces and :func:`decompress_24` reverses.

Sub-2:4 groups (0 or 1 nonzero) are legal: the compressor simply promotes
zero elements to "kept" slots, which does not change the product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.arrays import pad_to_multiple
from repro.util.validation import require, require_array

__all__ = [
    "is_24_sparse",
    "violations_24",
    "sparsity_ratio",
    "compress_24",
    "decompress_24",
    "Compressed24",
]


def _grouped(matrix: np.ndarray) -> np.ndarray:
    """Reshape ``(m, k)`` (k padded to a multiple of 4) into ``(m, k/4, 4)``."""
    padded = pad_to_multiple(np.asarray(matrix), 4, axis=1)
    m, k = padded.shape
    return padded.reshape(m, k // 4, 4)


def is_24_sparse(matrix: np.ndarray) -> bool:
    """Return True when every 4-element group of every row has <= 2 nonzeros.

    The K dimension is implicitly zero-padded to a multiple of four, matching
    how the kernel generator pads operands before handing them to the
    hardware.
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    groups = _grouped(matrix)
    nonzeros_per_group = np.count_nonzero(groups, axis=2)
    return bool(np.all(nonzeros_per_group <= 2))


def violations_24(matrix: np.ndarray) -> List[Tuple[int, int, int]]:
    """Return ``(row, group, nonzeros)`` for every group violating 2:4."""
    matrix = require_array(matrix, "matrix", ndim=2)
    groups = _grouped(matrix)
    counts = np.count_nonzero(groups, axis=2)
    rows, cols = np.nonzero(counts > 2)
    return [(int(r), int(c), int(counts[r, c])) for r, c in zip(rows, cols)]


def sparsity_ratio(matrix: np.ndarray) -> float:
    """Fraction of zero elements in ``matrix`` (1.0 means all zero)."""
    matrix = require_array(matrix, "matrix", ndim=2)
    if matrix.size == 0:
        return 0.0
    return 1.0 - (np.count_nonzero(matrix) / matrix.size)


@dataclass(frozen=True)
class Compressed24:
    """The compressed representation consumed by ``mma.sp``.

    Attributes
    ----------
    values:
        ``(m, k/2)`` array holding the two retained elements of each 4-group.
    indices:
        ``(m, k/2)`` array of 2-bit positions (0..3) of each retained element
        within its group; strictly increasing within a group.
    k:
        Original (padded) logical K extent, always a multiple of 4.
    """

    values: np.ndarray
    indices: np.ndarray
    k: int

    def __post_init__(self) -> None:
        require(self.values.shape == self.indices.shape,
                "values and indices must have identical shapes")
        require(self.k % 4 == 0, "k must be a multiple of 4")
        require(self.values.shape[1] == self.k // 2,
                f"values must have k/2={self.k // 2} columns, "
                f"got {self.values.shape[1]}")

    @property
    def m(self) -> int:
        return int(self.values.shape[0])

    def metadata_bits(self) -> int:
        """Total metadata storage in bits (2 bits per retained element)."""
        return 2 * int(self.indices.size)

    def metadata_bytes(self) -> int:
        """Metadata storage rounded up to whole bytes."""
        return (self.metadata_bits() + 7) // 8


def compress_24(matrix: np.ndarray) -> Compressed24:
    """Compress a 2:4-sparse matrix into values + 2-bit metadata.

    Raises
    ------
    ValueError
        If any 4-group of any row contains more than two nonzeros.
    """
    matrix = np.asarray(require_array(matrix, "matrix", ndim=2), dtype=np.float64)
    bad = violations_24(matrix)
    require(not bad,
            f"matrix is not 2:4 sparse; first violations: {bad[:5]}")
    groups = _grouped(matrix)                      # (m, G, 4)
    m, n_groups, _ = groups.shape
    k = 4 * n_groups

    # For each group pick the positions of the (up to two) nonzeros, then pad
    # the selection with the smallest unused positions so exactly two indices
    # are always kept — the padded slots hold zeros and do not affect results.
    nonzero_mask = groups != 0.0                   # (m, G, 4)
    # Sort positions so that nonzero positions come first (stable keeps order).
    order_key = (~nonzero_mask).astype(np.int8)    # 0 for nonzero, 1 for zero
    positions = np.argsort(order_key, axis=2, kind="stable")[:, :, :2]
    positions = np.sort(positions, axis=2)         # hardware metadata is ordered
    values = np.take_along_axis(groups, positions, axis=2)

    return Compressed24(
        values=values.reshape(m, 2 * n_groups),
        indices=positions.reshape(m, 2 * n_groups).astype(np.uint8),
        k=k,
    )


def decompress_24(compressed: Compressed24) -> np.ndarray:
    """Expand a :class:`Compressed24` back into a dense ``(m, k)`` matrix."""
    m = compressed.m
    n_groups = compressed.k // 4
    dense = np.zeros((m, compressed.k), dtype=compressed.values.dtype)
    values = compressed.values.reshape(m, n_groups, 2)
    indices = compressed.indices.reshape(m, n_groups, 2).astype(np.int64)
    group_base = (np.arange(n_groups) * 4)[None, :, None]
    columns = group_base + indices                 # (m, G, 2)
    rows = np.arange(m)[:, None, None]
    # A group with a single nonzero may legally carry the same padded index
    # twice with a zero value, so plain assignment (not +=) is correct here.
    dense[rows, columns] = values
    return dense

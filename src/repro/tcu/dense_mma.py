"""Functional model of dense Tensor-Core fragment MMA.

``dense_mma`` computes ``D = A @ B + C`` exactly the way the simulated device
would: operands are zero-padded to fragment multiples, the product is carried
out tile by tile in the requested precision, and the number of fragment
operations is reported so the cost model can translate it into cycles.

The per-fragment loop is intentionally expressed as a single reshaped
``einsum`` so there is no Python-level loop over fragments (the fragment
count can reach 10^5 for the Figure-10 workloads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tcu.spec import DataType, FragmentShape
from repro.util.arrays import ceil_div, pad_to_multiple
from repro.util.validation import require, require_array

__all__ = ["DenseMMAResult", "dense_mma", "fragment_grid"]


@dataclass(frozen=True)
class DenseMMAResult:
    """Result of a fragment-tiled dense MMA.

    Attributes
    ----------
    d: the ``(m, n)`` product (original, un-padded extents).
    fragment_ops: number of fragment MMA operations issued.
    wasted_lanes: fraction of fragment lanes that computed padding
        (0.0 means perfectly tiled operands).
    """

    d: np.ndarray
    fragment_ops: int
    wasted_lanes: float


def fragment_grid(m: int, k: int, n: int, fragment: FragmentShape) -> tuple[int, int, int]:
    """Number of fragments along each dimension after padding."""
    return (
        ceil_div(m, fragment.m),
        ceil_div(k, fragment.k),
        ceil_div(n, fragment.n),
    )


def dense_mma(
    a: np.ndarray,
    b: np.ndarray,
    fragment: FragmentShape,
    *,
    c: np.ndarray | None = None,
    dtype: DataType = DataType.FP16,
) -> DenseMMAResult:
    """Compute ``D = A @ B (+ C)`` on the simulated dense Tensor Cores.

    Parameters
    ----------
    a, b:
        Operands of shape ``(m, k)`` and ``(k, n)``.
    fragment:
        Fragment shape used for tiling; must be a dense fragment.
    c:
        Optional accumulator of shape ``(m, n)``.
    dtype:
        Simulated device precision.  FP16 inputs are rounded to float16 before
        the multiply (accumulation stays in float32, as real Tensor Cores do).
    """
    a = require_array(a, "a", ndim=2)
    b = require_array(b, "b", ndim=2)
    require(not fragment.sparse, "dense_mma requires a dense fragment shape")
    require(a.shape[1] == b.shape[0],
            f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    m, k = a.shape
    _, n = b.shape

    dtype = DataType(dtype)
    compute_dtype = dtype.numpy_dtype
    a_device = np.asarray(a, dtype=compute_dtype)
    b_device = np.asarray(b, dtype=compute_dtype)

    # Pad to whole fragments, exactly as the generated kernel would.
    a_pad = pad_to_multiple(pad_to_multiple(a_device, fragment.m, axis=0),
                            fragment.k, axis=1)
    b_pad = pad_to_multiple(pad_to_multiple(b_device, fragment.k, axis=0),
                            fragment.n, axis=1)

    grid_m, grid_k, grid_n = fragment_grid(m, k, n, fragment)
    fragment_ops = grid_m * grid_k * grid_n
    total_lanes = fragment_ops * fragment.macs
    useful_lanes = m * k * n
    wasted = 0.0 if total_lanes == 0 else 1.0 - useful_lanes / total_lanes

    # Accumulate in float32 (float64 for FP64) like the hardware accumulator.
    acc_dtype = np.float64 if dtype is DataType.FP64 else np.float32
    d_full = a_pad.astype(acc_dtype) @ b_pad.astype(acc_dtype)
    d = d_full[:m, :n]
    if c is not None:
        c = require_array(c, "c", ndim=2)
        require(c.shape == (m, n), f"c must have shape {(m, n)}, got {c.shape}")
        d = d + np.asarray(c, dtype=acc_dtype)

    return DenseMMAResult(d=np.asarray(d, dtype=np.float64),
                          fragment_ops=fragment_ops,
                          wasted_lanes=wasted)

"""Simulated hardware-counter reports (the Figure-11 metrics).

Nsight Compute reports SM utilisation, achieved occupancy, L1/TEX and L2
throughput, overall memory throughput and DRAM throughput.  The simulator
derives analogous percentages from the kernel's modelled compute/memory times
and its traffic split, so the *relative* picture across methods (SparStencil
vs ConvStencil vs cuDNN) mirrors the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Sequence

from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import GPUSpec
from repro.util.validation import require

__all__ = ["UtilizationReport", "derive_utilization", "combine_utilization"]


def _clamp_percent(value: float) -> float:
    return float(min(100.0, max(0.0, value)))


@dataclass(frozen=True)
class UtilizationReport:
    """Percentages analogous to the six Nsight metrics of Figure 11."""

    sm_utilization: float
    occupancy: float
    l1_throughput: float
    l2_throughput: float
    memory_throughput: float
    dram_throughput: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "SM Utilization": self.sm_utilization,
            "Occupancy": self.occupancy,
            "L1/TEX Throughput": self.l1_throughput,
            "L2 Throughput": self.l2_throughput,
            "Memory Throughput": self.memory_throughput,
            "DRAM Throughput": self.dram_throughput,
        }


def combine_utilization(
    reports: Sequence[UtilizationReport],
    weights: Optional[Sequence[float]] = None,
) -> UtilizationReport:
    """Aggregate several per-launch reports into one time-weighted report.

    ``weights`` is typically the elapsed seconds of each launch (so a long
    sweep dominates the aggregate the way it dominates an NCU capture over the
    whole run); equal weighting is used when omitted or when every weight is
    zero.  Identical reports aggregate to themselves exactly — no averaging
    arithmetic is applied — so homogeneous runs keep bit-stable counters.
    """
    reports = list(reports)
    require(len(reports) > 0, "combine_utilization needs at least one report")
    first = reports[0]
    if all(report == first for report in reports[1:]):
        return first
    if weights is None:
        weights = [1.0] * len(reports)
    weights = [float(w) for w in weights]
    require(len(weights) == len(reports),
            f"{len(weights)} weights for {len(reports)} reports")
    require(all(w >= 0.0 for w in weights), "weights must be non-negative")
    total = sum(weights)
    if total <= 0.0:
        weights = [1.0] * len(reports)
        total = float(len(reports))
    values = {}
    for metric in fields(UtilizationReport):
        acc = sum(getattr(report, metric.name) * w
                  for report, w in zip(reports, weights))
        values[metric.name] = _clamp_percent(acc / total)
    return UtilizationReport(**values)


def derive_utilization(
    *,
    compute_seconds: float,
    memory_seconds: float,
    elapsed_seconds: float,
    traffic: MemoryTraffic,
    spec: GPUSpec,
    threads_per_block: int,
    blocks: int,
    registers_per_thread: int = 64,
) -> UtilizationReport:
    """Derive an NCU-style utilisation report from modelled quantities.

    * SM utilisation ≈ fraction of the elapsed time the Tensor-Core pipes had
      work, boosted by on-chip (shared/L1) reuse.
    * Occupancy is limited by threads per SM and register pressure.
    * L1 throughput tracks shared-memory staging intensity, DRAM throughput
      tracks HBM traffic against its bandwidth over the elapsed time.
    """
    require(elapsed_seconds > 0.0, "elapsed_seconds must be positive")

    max_threads = spec.max_threads_per_sm
    # Register file of 65536 per SM limits resident threads; the launch is
    # assumed large enough to saturate the device (the paper-scale grids do).
    reg_limited = 65536 // max(1, registers_per_thread)
    occupancy = _clamp_percent(100.0 * min(max_threads, reg_limited) / max_threads)

    # SM "utilization" in the NCU sense counts any issue activity, not just
    # Tensor-Core math: shared-memory staging and (a fraction of) global-load
    # issue keep the schedulers busy as well.  Low occupancy limits how much
    # of that latency can actually be hidden.
    shared_seconds = traffic.shared_bytes / (spec.shared_bandwidth_gbs * 1e9)
    global_seconds = (traffic.global_bytes + traffic.metadata_bytes +
                      traffic.lut_bytes) / (spec.global_bandwidth_gbs * 1e9)
    issue_seconds = compute_seconds + 0.7 * shared_seconds + 0.35 * global_seconds
    sm_util = _clamp_percent(
        100.0 * (issue_seconds / elapsed_seconds) * (0.4 + 0.6 * occupancy / 100.0))

    l1 = _clamp_percent(
        100.0 * (traffic.shared_bytes / (spec.shared_bandwidth_gbs * 1e9))
        / elapsed_seconds
    )
    dram = _clamp_percent(
        100.0 * ((traffic.global_bytes + traffic.metadata_bytes + traffic.lut_bytes)
                 / (spec.global_bandwidth_gbs * 1e9))
        / elapsed_seconds
    )
    l2 = _clamp_percent(
        100.0 * (traffic.global_bytes / (spec.l2_bandwidth_gbs * 1e9))
        / elapsed_seconds
        + 0.5 * dram
    )
    memory_throughput = _clamp_percent(max(l1, dram, 100.0 * memory_seconds / elapsed_seconds))

    return UtilizationReport(
        sm_utilization=sm_util,
        occupancy=occupancy,
        l1_throughput=l1,
        l2_throughput=l2,
        memory_throughput=memory_throughput,
        dram_throughput=dram,
    )

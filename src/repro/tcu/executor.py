"""Kernel-launch executor for the simulated device.

A :class:`KernelLaunch` is the lowest-level description of one device kernel:
its operands, the execution engine it targets (sparse Tensor Cores, dense
Tensor Cores, or the scalar FFMA pipeline), its memory traffic and its launch
geometry.  :func:`execute_launch` produces both the functional result and the
modelled timing/utilisation, which is everything the benchmark harness needs.

The SparStencil kernel generator (:mod:`repro.core.codegen`) and all the
baselines lower to this same interface, so every method is costed by one
model and verified by one functional path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.tcu.counters import UtilizationReport, derive_utilization
from repro.tcu.dense_mma import dense_mma
from repro.tcu.memory import MemoryTraffic, memory_time
from repro.tcu.sparse_mma import sparse_mma
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec
from repro.tcu.timing import compute_time, ffma_time, mma_count
from repro.util.validation import require, require_in

__all__ = ["KernelLaunch", "LaunchResult", "execute_launch"]


@dataclass
class KernelLaunch:
    """One simulated kernel invocation.

    Attributes
    ----------
    name: label used in reports.
    engine: ``"sparse_mma"``, ``"dense_mma"`` or ``"ffma"``.
    a, b: MMA operands (ignored for the FFMA engine).
    fragment: fragment shape for MMA engines.
    dtype: simulated precision.
    traffic: memory traffic of the launch.
    flops: scalar FLOP count (FFMA engine only).
    precomputed_result: functional output for the FFMA engine, produced by the
        baseline's own numpy implementation.
    threads_per_block / blocks: launch geometry, used for occupancy modelling.
    registers_per_thread: register pressure estimate for occupancy modelling.
    repeats: how many times this kernel runs back-to-back (time iterations);
        timing scales linearly while the functional result is computed once.
    """

    name: str
    engine: str
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    fragment: Optional[FragmentShape] = None
    dtype: DataType = DataType.FP16
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    flops: float = 0.0
    precomputed_result: Optional[np.ndarray] = None
    threads_per_block: int = 256
    blocks: int = 1024
    registers_per_thread: int = 64
    repeats: int = 1

    def __post_init__(self) -> None:
        require_in(self.engine, ("sparse_mma", "dense_mma", "ffma"), "engine")
        self.dtype = DataType(self.dtype)
        if self.engine in ("sparse_mma", "dense_mma"):
            require(self.a is not None and self.b is not None,
                    f"engine {self.engine!r} requires A and B operands")
            require(self.fragment is not None,
                    f"engine {self.engine!r} requires a fragment shape")
        require(self.repeats >= 1, "repeats must be >= 1")


@dataclass(frozen=True)
class LaunchResult:
    """Functional result plus modelled timing of one :class:`KernelLaunch`."""

    name: str
    output: Optional[np.ndarray]
    elapsed_seconds: float
    compute_seconds: float
    memory_seconds: float
    fragment_ops: int
    utilization: UtilizationReport

    @property
    def bound(self) -> str:
        """Which roofline side dominates: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


def _run_engine(launch: KernelLaunch) -> tuple[Optional[np.ndarray], int]:
    """Run the functional side of the launch; return (output, fragment_ops)."""
    if launch.engine == "ffma":
        return launch.precomputed_result, 0
    require(launch.a is not None and launch.b is not None
            and launch.fragment is not None,
            f"{launch.engine} launch {launch.name!r} is missing its MMA "
            f"operands or fragment")
    if launch.engine == "sparse_mma":
        result = sparse_mma(launch.a, launch.b, launch.fragment, dtype=launch.dtype)
        return result.d, result.fragment_ops
    result = dense_mma(launch.a, launch.b, launch.fragment, dtype=launch.dtype)
    return result.d, result.fragment_ops


def execute_launch(launch: KernelLaunch, spec: GPUSpec = A100_SPEC) -> LaunchResult:
    """Execute one kernel launch on the simulated device.

    The functional result is computed once; modelled time is multiplied by
    ``launch.repeats`` (the benchmark iteration count), matching how the
    paper times ``T`` iterations of the same kernel.
    """
    output, fragment_ops = _run_engine(launch)

    if launch.engine == "ffma":
        per_iter_compute = ffma_time(launch.flops, spec, dtype=launch.dtype)
    else:
        require(launch.fragment is not None,
                f"launch {launch.name!r} needs a fragment to price "
                f"{launch.engine} compute")
        per_iter_compute = compute_time(fragment_ops, spec, launch.fragment,
                                        dtype=launch.dtype)
    per_iter_memory = memory_time(launch.traffic, spec)
    per_iter_elapsed = max(per_iter_compute, per_iter_memory)

    repeats = launch.repeats
    compute_seconds = per_iter_compute * repeats
    memory_seconds = per_iter_memory * repeats
    elapsed = per_iter_elapsed * repeats

    utilization = derive_utilization(
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        elapsed_seconds=max(elapsed, 1e-30),
        traffic=launch.traffic.scaled(repeats),
        spec=spec,
        threads_per_block=launch.threads_per_block,
        blocks=launch.blocks,
        registers_per_thread=launch.registers_per_thread,
    )

    return LaunchResult(
        name=launch.name,
        output=output,
        elapsed_seconds=elapsed,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        fragment_ops=fragment_ops * repeats,
        utilization=utilization,
    )

"""Compute-side timing and the combined roofline (Eq. 6–7 of the paper).

``T_compute = N_MMA * CPI_tcu / (f * N_tcu)`` — the number of fragment MMA
operations times the fragment CPI divided by the aggregate Tensor-Core issue
rate.  Sparse fragments retire a dense-equivalent K twice as deep per cycle,
which is modelled as halving the effective CPI.
"""

from __future__ import annotations

from repro.tcu.memory import MemoryTraffic, memory_time
from repro.tcu.spec import DataType, FragmentShape, GPUSpec
from repro.util.arrays import ceil_div
from repro.util.validation import require, require_non_negative_int

__all__ = ["mma_count", "compute_time", "ffma_time", "roofline_time"]


def mma_count(m: int, k: int, n: int, fragment: FragmentShape) -> int:
    """Number of fragment operations to cover an ``m x k x n`` product (Eq. 9)."""
    return (
        ceil_div(max(m, 1), fragment.m)
        * ceil_div(max(k, 1), fragment.k)
        * ceil_div(max(n, 1), fragment.n)
    )


def compute_time(
    n_mma: int,
    spec: GPUSpec,
    fragment: FragmentShape,
    dtype: DataType = DataType.FP16,
) -> float:
    """Eq. 7: seconds the Tensor Cores need to issue ``n_mma`` fragment ops.

    The fragment CPI is scaled so that the peak throughput implied by
    ``(fragment.macs * f * N_tcu) / CPI`` matches the spec's TFLOP/s rating
    for the requested precision, and sparse fragments get the paper's 2x
    throughput advantage.
    """
    require_non_negative_int(n_mma, "n_mma")
    dtype = DataType(dtype)
    if fragment.sparse:
        peak_tflops = spec.sparse_tcu_tflops(dtype)
    else:
        peak_tflops = spec.dense_tcu_tflops(dtype)
    # 2 FLOPs per MAC; peak_tflops determines how many fragment ops/second the
    # device can retire.
    fragment_flops = 2.0 * fragment.macs
    fragments_per_second = (peak_tflops * 1e12) / fragment_flops
    return n_mma / fragments_per_second


def ffma_time(flops: float, spec: GPUSpec, dtype: DataType = DataType.FP16) -> float:
    """Seconds the scalar FFMA pipeline needs for ``flops`` floating point ops.

    Used by the naive CUDA baseline; FP64 FFMA runs at half the FP32 rate on
    the modelled device, FP16 packed math at twice.
    """
    require(flops >= 0.0, "flops must be non-negative")
    dtype = DataType(dtype)
    scale = {"fp16": 2.0, "bf16": 2.0, "tf32": 1.0, "fp64": 0.5}[dtype.value]
    return flops / (spec.ffma_tflops * scale * 1e12)


def roofline_time(
    n_mma: int,
    traffic: MemoryTraffic,
    spec: GPUSpec,
    fragment: FragmentShape,
    dtype: DataType = DataType.FP16,
) -> float:
    """Eq. 6: ``T = max(T_compute, T_memory)``."""
    return max(
        compute_time(n_mma, spec, fragment, dtype=dtype),
        memory_time(traffic, spec),
    )

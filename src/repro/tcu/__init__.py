"""Simulated GPU and (sparse) Tensor Core substrate.

The paper's evaluation platform is an NVIDIA A100 with sparse Tensor Cores
programmed through ``mma.sp`` PTX.  No GPU is available in this environment,
so this package provides:

* a **functional model** of dense and 2:4-sparse fragment MMA — numerically
  exact, used to validate the whole transformation chain end to end;
* a **cost model** of the same hardware (fragment CPI, tensor-core counts,
  global/shared-memory bandwidth) — the analytical roofline of Eq. 6–8 of the
  paper, used both by the layout search and to produce the simulated timings
  that regenerate the evaluation figures.
"""

from repro.tcu.spec import (
    DataType,
    FragmentShape,
    GPUSpec,
    MultiDeviceSpec,
    A100_SPEC,
    SPARSE_FRAGMENTS,
    DENSE_FRAGMENTS,
    multi_a100,
)
from repro.tcu.sparsity24 import (
    is_24_sparse,
    violations_24,
    sparsity_ratio,
    compress_24,
    decompress_24,
    Compressed24,
)
from repro.tcu.dense_mma import dense_mma, DenseMMAResult
from repro.tcu.sparse_mma import sparse_mma, sparse_mma_compressed, SparseMMAResult
from repro.tcu.memory import MemoryTraffic, memory_time, global_memory_time, shared_memory_time
from repro.tcu.timing import compute_time, mma_count, roofline_time
from repro.tcu.counters import UtilizationReport, combine_utilization
from repro.tcu.executor import KernelLaunch, LaunchResult, execute_launch
from repro.tcu.occupancy import DeviceLease, DeviceState, OccupancyLedger

__all__ = [
    "DataType",
    "FragmentShape",
    "GPUSpec",
    "MultiDeviceSpec",
    "A100_SPEC",
    "multi_a100",
    "SPARSE_FRAGMENTS",
    "DENSE_FRAGMENTS",
    "is_24_sparse",
    "violations_24",
    "sparsity_ratio",
    "compress_24",
    "decompress_24",
    "Compressed24",
    "dense_mma",
    "DenseMMAResult",
    "sparse_mma",
    "sparse_mma_compressed",
    "SparseMMAResult",
    "MemoryTraffic",
    "memory_time",
    "global_memory_time",
    "shared_memory_time",
    "compute_time",
    "mma_count",
    "roofline_time",
    "UtilizationReport",
    "combine_utilization",
    "KernelLaunch",
    "LaunchResult",
    "execute_launch",
    "DeviceLease",
    "DeviceState",
    "OccupancyLedger",
]

"""Pinned repo-invariant declarations consumed by :mod:`repro.lint.repo`.

Everything the Tier-2 linter enforces against a *declared* contract lives
here, in one reviewable place: the lock hierarchy, the modules allowed to
read wall clocks, the fingerprint payload manifest, and the pragma tokens
that suppress individual findings.  Changing behaviour elsewhere in the
repo without updating this file is exactly what the linter exists to
catch — a drift between declaration and code is an ``error`` finding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "LOCK_HIERARCHY",
    "LOCK_COMPONENT_MODULES",
    "TIMING_MODULE_PREFIXES",
    "TIMING_ALLOWLIST",
    "FINGERPRINT_MANIFEST",
    "PRAGMA_PREFIX",
    "ALLOW_BROAD_EXCEPT",
    "ALLOW_ASSERT",
    "ALLOW_TIMING",
    "ALLOW_LOCK_ORDER",
]

#: The declared lock-acquisition order: a thread holding a lock of one
#: component may only acquire locks (or call into the guarded state) of
#: components with an *equal or higher* rank.  cache → ledger → telemetry:
#: the compile cache sits lowest because engine workers call it while the
#: ledger tracks their lease, and telemetry observes both, so telemetry
#: must never be entered lock-held from below.
LOCK_HIERARCHY: Dict[str, int] = {
    "cache": 0,
    "ledger": 1,
    "telemetry": 2,
}

#: Which modules own each ranked component's locks.  Only these modules are
#: checked by the lock-order rule (SP205): a module outside the table holds
#: no ranked lock, so its nesting cannot violate the hierarchy.
LOCK_COMPONENT_MODULES: Dict[str, str] = {
    "repro.service.cache": "cache",
    "repro.tcu.occupancy": "ledger",
    "repro.server.telemetry": "telemetry",
    "repro.obs.metrics": "telemetry",
}

#: Module prefixes that may read wall clocks freely — the observability
#: layer and the timing utilities exist to wrap the clock for everyone
#: else.
TIMING_MODULE_PREFIXES: Tuple[str, ...] = ("repro.obs", "repro.util.timing")

#: Modules with a reviewed, legitimate reason to read the clock directly
#: (deadlines, batching windows, modelled-versus-wall accounting).  A new
#: clock call-site anywhere else is an SP203 error: route it through
#: :mod:`repro.util.timing` / :mod:`repro.obs` or extend this list in the
#: same change that reviews it.
TIMING_ALLOWLIST: FrozenSet[str] = frozenset({
    "repro.engine.sharded",
    "repro.engine.single",
    "repro.programs.compile",
    "repro.programs.executor",
    "repro.server.coalesce",
    "repro.server.facade",
    "repro.server.queue",
    "repro.server.telemetry",
    "repro.service.batch",
    "repro.service.cache",
    "repro.tcu.occupancy",
})

#: The pinned fingerprint manifest (SP206): for every versioned payload
#: literal built by a fingerprint function, the exact set of ``options.*``
#: fields it may consume.  Consuming a field not listed here — i.e. adding
#: a fingerprinted field without bumping the payload version and re-pinning
#: the manifest — is an error: cached plans compiled under the old payload
#: would silently alias the new one.
FINGERPRINT_MANIFEST: Dict[str, FrozenSet[str]] = {
    "sparstencil-compile-v4": frozenset({
        "backend",
        "block_hint",
        "boundary",
        "conversion_method",
        "dtype",
        "engine",
        "fragment",
        "grid_shape",
        "pattern",
        "r1",
        "r2",
        "search",
        "spec",
        "temporal_fusion",
    }),
    # the program payload hashes stage fingerprints, not options fields
    "sparstencil-program-v1": frozenset(),
}

#: Suppression pragmas: ``# lint: <token>`` on the flagged line (or the
#: line directly above it) silences the matching rule at that site.
PRAGMA_PREFIX = "lint:"
ALLOW_BROAD_EXCEPT = "allow-broad-except"
ALLOW_ASSERT = "allow-assert"
ALLOW_TIMING = "allow-timing"
ALLOW_LOCK_ORDER = "allow-lock-order"

"""Tier 2: the AST-based repo-invariant linter (``python -m repro.lint``).

These rules enforce codebase contracts that no unit test can see — they
are properties of the *source*, not of any particular execution:

* **SP200** — a file that does not parse;
* **SP201** — ``except Exception`` / ``except BaseException`` / bare
  ``except`` outside the reviewed allowlist (a swallowed failure is a
  silent wrong answer waiting to happen);
* **SP202** — ``assert`` used for runtime validation in library code
  (asserts vanish under ``python -O``; raise
  :class:`~repro.util.validation.ValidationError` instead);
* **SP203** — direct wall-clock reads (``time.time`` /
  ``time.perf_counter`` / ...) outside :mod:`repro.obs`,
  :mod:`repro.util.timing` and the reviewed
  :data:`~repro.lint.config.TIMING_ALLOWLIST`;
* **SP204** — a registered ``SessionExecutor.solve`` that never stamps a
  :class:`~repro.session.problem.Provenance` record;
* **SP205** — lock acquisition against the declared hierarchy
  (:data:`~repro.lint.config.LOCK_HIERARCHY`: cache → ledger →
  telemetry) — holding a ranked lock while entering a strictly
  lower-ranked component inverts the order and can deadlock;
* **SP206** — fingerprint-payload drift: a versioned payload builder
  consuming ``options.*`` fields that do not match the pinned
  :data:`~repro.lint.config.FINGERPRINT_MANIFEST` (adding a fingerprinted
  field without bumping the payload version aliases stale cached plans).

Individual findings are suppressed with a ``# lint: allow-<rule>`` pragma
on the flagged line or the line directly above it — the allowlist *is*
the pragma, so every exemption is visible at the site it exempts.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.config import (
    ALLOW_ASSERT,
    ALLOW_BROAD_EXCEPT,
    ALLOW_LOCK_ORDER,
    ALLOW_TIMING,
    FINGERPRINT_MANIFEST,
    LOCK_COMPONENT_MODULES,
    LOCK_HIERARCHY,
    TIMING_ALLOWLIST,
    TIMING_MODULE_PREFIXES,
)
from repro.lint.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    emit,
    register_rule,
)

__all__ = ["LintedFile", "lint_file", "lint_paths", "module_name_of"]

register_rule("SP200", "file does not parse", Severity.ERROR, tier=2,
              hint="fix the syntax error; nothing else can be checked")
register_rule("SP201", "broad exception handler", Severity.ERROR, tier=2,
              hint="catch the specific exception, or mark a reviewed "
                   "safety net with `# lint: allow-broad-except`")
register_rule("SP202", "assert used for runtime validation", Severity.ERROR,
              tier=2,
              hint="raise ValidationError (repro.util.validation) — "
                   "asserts vanish under python -O")
register_rule("SP203", "wall-clock read outside the timing layer",
              Severity.ERROR, tier=2,
              hint="route through repro.util.timing / repro.obs, or extend "
                   "TIMING_ALLOWLIST in the change that reviews the site")
register_rule("SP204", "SessionExecutor.solve never stamps Provenance",
              Severity.ERROR, tier=2,
              hint="every executor's Solution must carry a Provenance "
                   "record of what ran and why")
register_rule("SP205", "lock acquired against the declared hierarchy",
              Severity.ERROR, tier=2,
              hint="respect cache -> ledger -> telemetry: never enter a "
                   "lower-ranked component while holding a higher rank")
register_rule("SP206", "fingerprint payload drift", Severity.ERROR, tier=2,
              hint="bump the payload version and re-pin "
                   "FINGERPRINT_MANIFEST in repro/lint/config.py")

_PRAGMA_TOKEN_RE = re.compile(r"allow-[a-z-]+")
_CLOCK_ATTRS = frozenset({
    "time", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
})
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def module_name_of(path: Path) -> str:
    """Dotted module name of ``path``, rooted at the last ``repro`` package
    segment (files outside the package lint under their bare stem, so the
    allowlists — which name ``repro.*`` modules — never exempt them)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[idx:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _parse_pragmas(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(lines, 1):
        if "lint:" not in line:
            continue
        tokens = frozenset(
            _PRAGMA_TOKEN_RE.findall(line.split("lint:", 1)[1]))
        if tokens:
            out[lineno] = tokens
    return out


@dataclass(frozen=True)
class LintedFile:
    """One parsed source file plus everything the rules need to see."""

    path: Path
    module: str
    lines: Tuple[str, ...]
    pragmas: Dict[int, FrozenSet[str]]
    tree: ast.Module

    def suppressed(self, lineno: int, token: str) -> bool:
        return (token in self.pragmas.get(lineno, ())
                or token in self.pragmas.get(lineno - 1, ()))

    def location(self, lineno: int) -> str:
        return f"{self.path}:{lineno}"


# --------------------------------------------------------------------- #
# AST helpers
# --------------------------------------------------------------------- #
def _attr_tokens(expr: ast.AST) -> Set[str]:
    """Lower-cased identifier fragments along an attribute/call chain
    (``self._fingerprint_lock(fp)`` -> {"self", "fingerprint", "lock"})."""
    tokens: Set[str] = set()
    node: Optional[ast.AST] = expr
    while node is not None:
        if isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            tokens.update(node.attr.lower().split("_"))
            node = node.value
        elif isinstance(node, ast.Name):
            tokens.update(node.id.lower().split("_"))
            node = None
        else:
            node = None
    tokens.discard("")
    return tokens


def _is_lock_like(expr: ast.AST) -> bool:
    return "lock" in _attr_tokens(expr)


def _lock_component(expr: ast.AST, own: str) -> str:
    """Which ranked component a lock expression belongs to: an explicit
    component keyword in its chain wins, else the enclosing module's own."""
    named = _attr_tokens(expr) & set(LOCK_HIERARCHY)
    if named:
        return min(named, key=lambda c: LOCK_HIERARCHY[c])
    return own


# --------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------- #
def _check_broad_except(file: LintedFile) -> Iterable[Diagnostic]:
    def is_broad(expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return True  # bare except:
        if isinstance(expr, ast.Name):
            return expr.id in _BROAD_EXCEPTIONS
        if isinstance(expr, ast.Attribute):
            return expr.attr in _BROAD_EXCEPTIONS
        if isinstance(expr, ast.Tuple):
            return any(is_broad(e) for e in expr.elts)
        return False

    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ExceptHandler) or not is_broad(node.type):
            continue
        if file.suppressed(node.lineno, ALLOW_BROAD_EXCEPT):
            continue
        caught = ("bare except" if node.type is None
                  else ast.unparse(node.type))
        yield emit("SP201",
                   f"broad exception handler ({caught}) swallows failures "
                   f"it cannot understand",
                   location=file.location(node.lineno),
                   details={"caught": caught, "module": file.module})


def _check_assert(file: LintedFile) -> Iterable[Diagnostic]:
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Assert):
            continue
        if file.suppressed(node.lineno, ALLOW_ASSERT):
            continue
        yield emit("SP202",
                   f"assert statement in library code "
                   f"({ast.unparse(node.test)[:60]}) disappears under "
                   f"python -O",
                   location=file.location(node.lineno),
                   details={"module": file.module})


def _check_clock(file: LintedFile) -> Iterable[Diagnostic]:
    if (file.module.startswith(TIMING_MODULE_PREFIXES)
            or file.module in TIMING_ALLOWLIST):
        return
    for node in ast.walk(file.tree):
        lineno = getattr(node, "lineno", None)
        call: Optional[str] = None
        if (isinstance(node, ast.Attribute)
                and node.attr in _CLOCK_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"):
            call = f"time.{node.attr}"
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            clocks = sorted(alias.name for alias in node.names
                            if alias.name in _CLOCK_ATTRS)
            if clocks:
                call = f"from time import {', '.join(clocks)}"
        if call is None or lineno is None:
            continue
        if file.suppressed(lineno, ALLOW_TIMING):
            continue
        yield emit("SP203",
                   f"{call} in {file.module}, outside the timing layer",
                   location=file.location(lineno),
                   details={"module": file.module, "call": call})


def _check_provenance(file: LintedFile) -> Iterable[Diagnostic]:
    def is_executor_base(base: ast.expr) -> bool:
        name = base.attr if isinstance(base, ast.Attribute) \
            else getattr(base, "id", "")
        return name.endswith("SessionExecutor")

    def is_abstract(fn: ast.FunctionDef) -> bool:
        return any("abstractmethod" in _attr_tokens(dec)
                   for dec in fn.decorator_list)

    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(is_executor_base(base) for base in node.bases):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef) or item.name != "solve":
                continue
            if is_abstract(item):
                continue
            stamps = any(
                (isinstance(sub, ast.Name) and sub.id == "Provenance")
                or (isinstance(sub, ast.Attribute)
                    and sub.attr == "Provenance")
                for sub in ast.walk(item))
            if not stamps:
                yield emit(
                    "SP204",
                    f"{node.name}.solve never constructs a Provenance "
                    f"record — its Solutions are unauditable",
                    location=file.location(item.lineno),
                    details={"class": node.name, "module": file.module})


def _check_lock_order(file: LintedFile) -> Iterable[Diagnostic]:
    own = LOCK_COMPONENT_MODULES.get(file.module)
    if own is None:
        return
    own_rank = LOCK_HIERARCHY[own]

    def walk_held(node: ast.AST, held_rank: int,
                  held_at: int) -> Iterable[Diagnostic]:
        """Scan a region executed while a lock of ``held_rank`` is held."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.With):
                lock_items = [item for item in child.items
                              if _is_lock_like(item.context_expr)]
                inner_rank = held_rank
                for item in lock_items:
                    component = _lock_component(item.context_expr, own)
                    rank = LOCK_HIERARCHY[component]
                    if (rank < held_rank
                            and not file.suppressed(child.lineno,
                                                    ALLOW_LOCK_ORDER)):
                        yield emit(
                            "SP205",
                            f"acquires the {component!r} lock (rank {rank}) "
                            f"while holding a rank-{held_rank} lock from "
                            f"line {held_at}",
                            location=file.location(child.lineno),
                            details={"module": file.module,
                                     "held_rank": held_rank,
                                     "acquired": component,
                                     "acquired_rank": rank})
                    inner_rank = max(inner_rank, rank)
                yield from walk_held(child, inner_rank,
                                     child.lineno if lock_items else held_at)
                continue
            if isinstance(child, ast.Call):
                lower = {c for c in _attr_tokens(child) & set(LOCK_HIERARCHY)
                         if LOCK_HIERARCHY[c] < held_rank}
                lineno = getattr(child, "lineno", held_at)
                if lower and not file.suppressed(lineno, ALLOW_LOCK_ORDER):
                    component = min(lower, key=lambda c: LOCK_HIERARCHY[c])
                    yield emit(
                        "SP205",
                        f"calls into the {component!r} component (rank "
                        f"{LOCK_HIERARCHY[component]}) while holding a "
                        f"rank-{held_rank} lock from line {held_at}",
                        location=file.location(lineno),
                        details={"module": file.module,
                                 "held_rank": held_rank,
                                 "entered": component})
                    continue  # one finding per offending call chain
            yield from walk_held(child, held_rank, held_at)

    for node in ast.walk(file.tree):
        if not isinstance(node, ast.With):
            continue
        lock_items = [item for item in node.items
                      if _is_lock_like(item.context_expr)]
        if not lock_items:
            continue
        rank = max(LOCK_HIERARCHY[_lock_component(item.context_expr, own)]
                   for item in lock_items)
        yield from walk_held(node, rank, node.lineno)


def _check_fingerprint(file: LintedFile) -> Iterable[Diagnostic]:
    for node in ast.walk(file.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        versions = [
            (sub.elts[0].value, sub.elts[0].lineno)
            for sub in ast.walk(node)
            if isinstance(sub, ast.Tuple) and sub.elts
            and isinstance(sub.elts[0], ast.Constant)
            and isinstance(sub.elts[0].value, str)
            and sub.elts[0].value.startswith("sparstencil-")
        ]
        if not versions:
            continue
        consumed = frozenset(
            sub.attr for sub in ast.walk(node)
            if isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name) and sub.value.id == "options")
        for version, lineno in versions:
            pinned = FINGERPRINT_MANIFEST.get(version)
            if pinned is None:
                yield emit(
                    "SP206",
                    f"payload version {version!r} is not pinned in the "
                    f"fingerprint manifest",
                    location=file.location(lineno),
                    details={"version": version, "module": file.module,
                             "consumed": sorted(consumed)})
                continue
            added = sorted(consumed - pinned)
            removed = sorted(pinned - consumed)
            if added or removed:
                yield emit(
                    "SP206",
                    f"payload {version!r} drifted from its pinned manifest "
                    f"(added {added or 'none'}, removed {removed or 'none'})",
                    location=file.location(lineno),
                    details={"version": version, "module": file.module,
                             "added": added, "removed": removed})


_REPO_RULES = (
    _check_broad_except,
    _check_assert,
    _check_clock,
    _check_provenance,
    _check_lock_order,
    _check_fingerprint,
)


# --------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------- #
def lint_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Run every Tier-2 rule over one Python source file."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [emit("SP200", f"file does not parse: {exc.msg}",
                     location=f"{path}:{exc.lineno or 0}",
                     details={"error": exc.msg or ""})]
    file = LintedFile(path=path, module=module_name_of(path), lines=lines,
                      pragmas=_parse_pragmas(lines), tree=tree)
    # the lock-order walk re-enters nested `with` blocks, so identical
    # findings can surface twice — dedupe on (code, location, message)
    unique: Dict[Tuple[str, str, str], Diagnostic] = {}
    for rule in _REPO_RULES:
        for finding in rule(file):
            unique.setdefault(
                (finding.code, finding.location, finding.message), finding)
    return list(unique.values())


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            out.extend(sorted(entry.rglob("*.py")))
        else:
            out.append(entry)
    return out


def lint_paths(paths: Sequence[Union[str, Path]]) -> DiagnosticReport:
    """Lint every ``.py`` file under ``paths``; one merged report."""
    findings: List[Diagnostic] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return DiagnosticReport.build(findings)

"""``repro.lint`` — the two-tier static-analysis subsystem.

One shared :class:`Diagnostic` vocabulary (:mod:`repro.lint.diagnostics`)
backs two tiers:

* **Tier 1** (:mod:`repro.lint.domain`, ``SP1xx``): pre-flight analyzers
  over :class:`~repro.session.Problem` / ``StencilProgram`` /
  :class:`~repro.session.SolvePolicy` / configs — surfaced as
  :meth:`repro.StencilSession.check`,
  :meth:`repro.programs.StencilProgram.lint`, and the opt-in
  :class:`~repro.server.facade.StencilServer` admission gate
  (``ServerConfig(lint_admission=True)``);
* **Tier 2** (:mod:`repro.lint.repo`, ``SP2xx``): the AST-based
  repo-invariant linter, run as ``python -m repro.lint src/``.

``python -m repro.lint --codes`` prints the full rule table.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    RuleInfo,
    Severity,
    rule_table,
)
from repro.lint.domain import (
    check_config,
    check_problem,
    lint_program,
    lint_program_wiring,
)
from repro.lint.repo import lint_file, lint_paths

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "RuleInfo",
    "Severity",
    "check_config",
    "check_problem",
    "lint_file",
    "lint_paths",
    "lint_program",
    "lint_program_wiring",
    "rule_table",
]

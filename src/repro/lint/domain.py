"""Tier 1: pre-flight domain diagnostics over Problems, Programs, policies.

Every rule here is *static*: it may resolve compile options and (through
the session's cache) compile a plan — exactly what admission already does
— but it never executes a sweep.  The analyzers re-use the repo's own
models (:meth:`GridPartition.max_halo_depth`, :func:`plan_fusion`,
:meth:`DevicePoolScheduler.decide`, ``plan.estimate``), so a diagnostic
always agrees with what the executors would do at run time.

Codes (all registered in :mod:`repro.lint.diagnostics`):

========  ========  ======================================================
SP100     error     the problem's compile request does not resolve/compile
SP101     error     dead stage — never feeds the program output
SP102     warning   mixed-radius stage pair blocks fusion (priced split)
SP103     info      non-chain program: no cross-stage fusion applies
SP104     error     tap reads an unknown tensor
SP105     error     stage dependency cycle
SP106     error     duplicate stage name
SP110     warning   requested halo depth exceeds the geometry's maximum
SP111     warning   periodic interior not tile-divisible (depth forced to 1)
SP112     error     grid cannot be tiled into the requested shard count
SP120     error     unknown or unavailable execution backend
SP121     error     baseline comparator cannot honour the boundary
SP122     error     conflicting problem/policy options
SP130     warning   explicit sharding below the modelled crossover
SP131     error     deadline shorter than one modelled device sweep
SP132     info      iterations not divisible by the temporal-fusion factor
SP133     warning   default deadline inside the coalescing window
SP134     warning   max batch size exceeds the queue bound
========  ========  ======================================================

Entry points: :func:`check_problem` (what
:meth:`repro.StencilSession.check` and the server's opt-in admission gate
call), :func:`lint_program` / :func:`lint_program_wiring`
(:meth:`repro.programs.StencilProgram.lint`), and :func:`check_config`
for session/server configs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    emit,
    register_rule,
)

__all__ = [
    "check_problem",
    "check_config",
    "lint_program",
    "lint_program_wiring",
]

register_rule("SP100", "problem does not compile", Severity.ERROR, tier=1,
              hint="the message is the compiler's own — fix the pattern / "
                   "grid / options it names")
register_rule("SP101", "dead stage never feeds the output", Severity.ERROR,
              tier=1, hint="remove the stage or rewire a tap to consume it")
register_rule("SP102", "mixed-radius stage pair blocks fusion",
              Severity.WARNING, tier=1,
              hint="equalise the stage radii (or accept one extra halo "
                   "exchange per step at the split)")
register_rule("SP103", "non-chain program: no cross-stage fusion",
              Severity.INFO, tier=1,
              hint="only linear single-tap chains fuse under one exchange")
register_rule("SP104", "tap reads an unknown tensor", Severity.ERROR, tier=1,
              hint="tap sources must be 'state' or a declared stage name")
register_rule("SP105", "stage dependency cycle", Severity.ERROR, tier=1,
              hint="break the cycle — stages must form a DAG over 'state'")
register_rule("SP106", "duplicate stage name", Severity.ERROR, tier=1,
              hint="stage names must be unique within a program")
register_rule("SP110", "halo depth exceeds the geometry's maximum",
              Severity.WARNING, tier=1,
              hint="the executor clamps to the feasible depth — request "
                   "that depth, fewer shards, or a larger grid")
register_rule("SP111", "periodic interior not tile-divisible",
              Severity.WARNING, tier=1,
              hint="pad the grid so the interior is a multiple of the tile "
                   "extent, or accept halo depth 1")
register_rule("SP112", "grid cannot be tiled into the requested shards",
              Severity.ERROR, tier=1,
              hint="use fewer shards or a larger grid")
register_rule("SP120", "unknown or unavailable backend", Severity.ERROR,
              tier=1,
              hint="pick a registered, available backend "
                   "(repro.core.codegen.available_backends())")
register_rule("SP121", "baseline cannot honour the boundary",
              Severity.ERROR, tier=1,
              hint="baseline comparators implement dirichlet only")
register_rule("SP122", "conflicting problem/policy options", Severity.ERROR,
              tier=1,
              hint="make the two layers agree explicitly — no silent winner")
register_rule("SP130", "explicit sharding below the modelled crossover",
              Severity.WARNING, tier=1,
              hint="let mode='auto' route it, or accept the modelled "
                   "slowdown")
register_rule("SP131", "deadline shorter than one modelled sweep",
              Severity.ERROR, tier=1,
              hint="raise the deadline past the modelled sweep time or "
                   "shrink the problem")
register_rule("SP132", "iterations not divisible by temporal fusion",
              Severity.INFO, tier=1,
              hint="leftover sweeps run single-device; align iterations "
                   "with the fusion factor to shard them all")
register_rule("SP133", "default deadline inside the coalescing window",
              Severity.WARNING, tier=1,
              hint="raise default_deadline_seconds above window_seconds — "
                   "the batching window alone consumes the budget")
register_rule("SP134", "max batch size exceeds the queue bound",
              Severity.WARNING, tier=1,
              hint="a full batch can never form; raise queue_bound or "
                   "shrink max_batch_size")

#: The reserved program-state tap source (mirrors repro.programs.STATE
#: without importing the heavy module at import time).
_STATE = "state"


# --------------------------------------------------------------------- #
# program wiring (SP101 / SP104 / SP105 / SP106)
# --------------------------------------------------------------------- #
def lint_program_wiring(name: str, stages: Sequence[Any],
                        output: str = "") -> DiagnosticReport:
    """Diagnose raw stage wiring *without* constructing a
    :class:`~repro.programs.StencilProgram` (whose constructor rejects bad
    wiring outright).  ``stages`` is a sequence of
    :class:`~repro.programs.ProgramStage`; ``output`` defaults to the last
    declared stage."""
    findings: List[Diagnostic] = []
    names = [stage.name for stage in stages]
    by_name: Dict[str, Any] = {}
    for stage in stages:
        if stage.name in by_name:
            findings.append(emit(
                "SP106", f"stage {stage.name!r} is declared more than once",
                location=f"program:{name}",
                details={"stage": stage.name}))
        by_name[stage.name] = stage
    if not names:
        return DiagnosticReport.build(findings)
    output = output or names[-1]

    for stage in stages:
        for source in stage.sources:
            if source != _STATE and source not in by_name:
                findings.append(emit(
                    "SP104",
                    f"stage {stage.name!r} reads {source!r}, which is "
                    f"neither {_STATE!r} nor a declared stage",
                    location=f"program:{name}.{stage.name}",
                    details={"stage": stage.name, "source": source}))

    # Kahn's walk over the *known* edges; unknown sources were reported
    # above and are treated as satisfied so one typo does not cascade.
    placed: Set[str] = {_STATE}
    remaining = list(by_name.values())
    while remaining:
        ready = [stage for stage in remaining
                 if all(src in placed or src not in by_name
                        for src in stage.sources)]
        if not ready:
            cycle = sorted(stage.name for stage in remaining)
            findings.append(emit(
                "SP105",
                f"stages {cycle} form a dependency cycle",
                location=f"program:{name}",
                details={"cycle": cycle}))
            break
        for stage in ready:
            placed.add(stage.name)
        remaining = [s for s in remaining if s.name not in placed]

    if output in by_name:
        live: Set[str] = set()
        frontier = [output]
        while frontier:
            stage_name = frontier.pop()
            if stage_name in live or stage_name == _STATE:
                continue
            live.add(stage_name)
            frontier.extend(src for src in by_name[stage_name].sources
                            if src in by_name)
        for dead in sorted(set(by_name) - live):
            findings.append(emit(
                "SP101",
                f"stage {dead!r} never feeds the output stage {output!r} — "
                f"it would silently burn compute every step",
                location=f"program:{name}.{dead}",
                details={"stage": dead, "output": output}))
    else:
        findings.append(emit(
            "SP104", f"output stage {output!r} is not a declared stage",
            location=f"program:{name}",
            details={"output": output}))
    return DiagnosticReport.build(findings)


def _split_exchange_cost(radius: int, ndim: int,
                         grid_shape: Optional[Tuple[int, ...]],
                         boundary: str, devices: int,
                         spec: Optional[Any],
                         itemsize: int) -> Optional[float]:
    """Modelled seconds of the extra per-step halo exchange a fusion split
    costs, priced with the same partition geometry and interconnect model
    the sharded executor bills (best effort: ``None`` when the geometry is
    unknown or infeasible)."""
    if grid_shape is None or devices < 2:
        return None
    from repro.stencils.partition import GridPartition
    from repro.tcu.spec import MultiDeviceSpec
    from repro.util.validation import ValidationError

    if spec is None:
        spec = MultiDeviceSpec(device_count=devices)
    try:
        partition = GridPartition.build(grid_shape, radius, devices,
                                        boundary=boundary, halo_depth=1)
    except ValidationError:
        return None
    elements = partition.received_elements_per_shard()
    messages = partition.messages_per_shard()
    costs = [spec.exchange_seconds(e * itemsize, m)
             for e, m in zip(elements, messages)]
    return max(costs) if costs else None


def lint_program(program: Any, *,
                 grid_shape: Optional[Sequence[int]] = None,
                 boundary: str = "dirichlet",
                 devices: int = 1,
                 spec: Optional[Any] = None,
                 itemsize: int = 2) -> DiagnosticReport:
    """Diagnose a constructed :class:`~repro.programs.StencilProgram`.

    Wiring defects cannot exist on a constructed program (its constructor
    rejects them), so this pass reports the *fusion* story: SP103 for
    non-chain programs, SP102 for every fusion-group boundary a radius
    change forces — naming the stage pair and, when ``grid_shape`` and
    ``devices`` describe a sharded deployment, the modelled cost of the
    extra halo exchange the split incurs per program step.
    """
    from repro.programs.compile import plan_fusion

    findings: List[Diagnostic] = []
    location = f"program:{program.name}"
    if not program.is_chain:
        findings.append(emit(
            "SP103",
            f"program {program.name!r} is not a linear chain — stages "
            f"execute under one exchange per stage, with no cross-stage "
            f"fusion",
            location=location,
            details={"stages": list(program.stage_names)}))
        return DiagnosticReport.build(findings)

    fusion = plan_fusion(program)
    groups = fusion.groups
    if len(groups) <= 1:
        return DiagnosticReport.build(findings)
    grid = None if grid_shape is None else tuple(int(s) for s in grid_shape)
    for before_group, after_group in zip(groups, groups[1:]):
        before, after = before_group[-1], after_group[0]
        r_before = program.stage(before).radius
        r_after = program.stage(after).radius
        details: Dict[str, Any] = {
            "pair": [before, after],
            "radii": [r_before, r_after],
            "groups": [list(g) for g in groups],
        }
        cost = _split_exchange_cost(max(r_before, r_after), program.ndim,
                                    grid, boundary, devices, spec, itemsize)
        message = (f"stages {before!r} (radius {r_before}) -> {after!r} "
                   f"(radius {r_after}) cannot share a fused halo "
                   f"exchange: the radius change splits the chain here")
        if cost is not None:
            details["split_exchange_seconds"] = cost
            message += (f"; the split costs one extra exchange per step "
                        f"(modelled {cost * 1e6:.2f} us on {devices} "
                        f"devices)")
        findings.append(emit(
            "SP102", message, location=f"{location}.{before}->{after}",
            details=details))
    return DiagnosticReport.build(findings)


# --------------------------------------------------------------------- #
# configs (SP133 / SP134)
# --------------------------------------------------------------------- #
def check_config(config: Any) -> DiagnosticReport:
    """Diagnose a :class:`~repro.session.SessionConfig` or
    :class:`~repro.server.facade.ServerConfig` (duck-typed on the shared
    served-mode fields)."""
    findings: List[Diagnostic] = []
    kind = type(config).__name__
    deadline = getattr(config, "default_deadline_seconds", None)
    window = getattr(config, "window_seconds", None)
    if deadline is not None and window is not None and deadline <= window:
        findings.append(emit(
            "SP133",
            f"default_deadline_seconds ({deadline}) does not outlast the "
            f"coalescing window ({window}) — every defaulted request can "
            f"expire while batching",
            location=f"{kind}.default_deadline_seconds",
            details={"default_deadline_seconds": deadline,
                     "window_seconds": window}))
    bound = getattr(config, "queue_bound", None)
    batch = getattr(config, "max_batch_size", None)
    if bound is not None and batch is not None and batch > bound:
        findings.append(emit(
            "SP134",
            f"max_batch_size ({batch}) exceeds queue_bound ({bound}) — a "
            f"full micro-batch can never form",
            location=f"{kind}.max_batch_size",
            details={"max_batch_size": batch, "queue_bound": bound}))
    return DiagnosticReport.build(findings)


# --------------------------------------------------------------------- #
# problems (everything else)
# --------------------------------------------------------------------- #
def _device_count(policy: Any, scheduler: Any) -> int:
    devices = getattr(policy, "devices", None)
    if devices is None:
        return int(scheduler.pool.device_count)
    if isinstance(devices, int):
        return devices
    return int(getattr(devices, "device_count", 1))


def _check_backend(name: Optional[str], where: str) -> List[Diagnostic]:
    from repro.core.codegen import available_backends, registered_backends

    if name is None:
        return []
    registered = registered_backends()
    if name not in registered:
        return [emit(
            "SP120",
            f"backend {name!r} is not registered (registered: "
            f"{', '.join(registered)})",
            location=where,
            details={"backend": name, "registered": list(registered)})]
    available = available_backends()
    if name not in available:
        return [emit(
            "SP120",
            f"backend {name!r} is registered but unavailable in this "
            f"environment (available: {', '.join(available)})",
            location=where,
            details={"backend": name, "available": list(available)})]
    return []


def check_problem(problem: Any, policy: Optional[Any] = None, *,
                  scheduler: Optional[Any] = None,
                  cache: Optional[Any] = None,
                  devices: int = 1) -> DiagnosticReport:
    """Every Tier-1 diagnostic for one ``(problem, policy)`` pair.

    ``scheduler`` (a :class:`~repro.server.scheduler.DevicePoolScheduler`)
    supplies the pool, the crossover thresholds and the routing model;
    standalone callers may pass ``devices`` instead and get a default
    scheduler over that many simulated A100s.  ``cache`` (a
    :class:`~repro.service.cache.CompileCache`) amortises the one compile
    the perf rules need — plans land in the same cache a subsequent solve
    would hit, so checking costs nothing extra end to end.  No sweep is
    ever executed.
    """
    from repro.server.scheduler import DevicePoolScheduler
    from repro.session.problem import SolvePolicy
    from repro.util.validation import ValidationError

    if policy is None:
        policy = SolvePolicy()
    if scheduler is None:
        scheduler = DevicePoolScheduler(devices)

    findings: List[Diagnostic] = []
    mode_kind = policy.mode_kind

    # -- policy/problem conflicts (SP122, SP121, SP120) ------------------- #
    option_backend = problem.options.get("backend")
    if (policy.backend is not None and option_backend is not None
            and policy.backend != option_backend):
        findings.append(emit(
            "SP122",
            f"options backend {option_backend!r} conflicts with the policy "
            f"backend {policy.backend!r}",
            location="policy.backend",
            details={"options_backend": option_backend,
                     "policy_backend": policy.backend}))
    backend = policy.backend if policy.backend is not None else option_backend
    findings.extend(_check_backend(backend, "policy.backend"
                                   if policy.backend is not None
                                   else "options.backend"))

    option_boundary = problem.options.get("boundary")
    boundary = problem.boundary
    if option_boundary is not None:
        from repro.stencils.boundary import normalize_boundary

        try:
            normalized = normalize_boundary(option_boundary)
        except ValidationError as exc:
            normalized = None
            findings.append(emit("SP100", str(exc),
                                 location="options.boundary"))
        if normalized is not None and normalized != boundary:
            findings.append(emit(
                "SP122",
                f"options boundary {normalized!r} conflicts with the "
                f"grid's boundary {boundary!r}",
                location="options.boundary",
                details={"options_boundary": normalized,
                         "grid_boundary": boundary}))

    if mode_kind == "baseline":
        if boundary != "dirichlet":
            findings.append(emit(
                "SP121",
                f"baseline {policy.baseline_name!r} implements dirichlet "
                f"boundaries only; the problem's grid is {boundary!r}",
                location="policy.mode",
                details={"baseline": policy.baseline_name,
                         "boundary": boundary}))
        if problem.is_program:
            findings.append(emit(
                "SP122",
                "a program problem cannot run on a baseline comparator",
                location="policy.mode",
                details={"mode": policy.mode}))
    if problem.is_program and mode_kind == "served":
        findings.append(emit(
            "SP122",
            "a program problem cannot be served — the server admits "
            "single-pattern compile requests only",
            location="policy.mode",
            details={"mode": policy.mode}))

    # -- program problems: wiring is constructor-checked; fusion story ---- #
    if problem.is_program:
        n_devices = _device_count(policy, scheduler)
        report = lint_program(problem.program,
                              grid_shape=problem.grid_shape,
                              boundary=boundary,
                              devices=n_devices,
                              spec=scheduler.pool
                              if n_devices == scheduler.pool.device_count
                              else None)
        return DiagnosticReport.build(findings).merged(report)

    # a hard conflict above (backend/boundary) makes the compile moot —
    # and its failure would only repeat the same finding less precisely
    if any(f.code in ("SP120", "SP122") for f in findings):
        return DiagnosticReport.build(findings)

    # -- the compile request (SP100) -------------------------------------- #
    try:
        request = problem.compile_request()
    except ValidationError as exc:
        findings.append(emit("SP100", str(exc), location="problem",
                             details={"stage": "resolve"}))
        return DiagnosticReport.build(findings)

    options = request.options
    if problem.iterations % options.temporal_fusion != 0:
        findings.append(emit(
            "SP132",
            f"iterations ({problem.iterations}) are not divisible by the "
            f"temporal-fusion factor ({options.temporal_fusion}) — "
            f"leftover sweeps run single-device",
            location="problem.iterations",
            details={"iterations": problem.iterations,
                     "temporal_fusion": options.temporal_fusion}))

    # One compile, through the caller's cache when given — the same
    # compile a subsequent solve would pay anyway.  Never a sweep.
    try:
        compiled = cache.get_or_compile(request) if cache is not None \
            else request.compile()
    except ValidationError as exc:
        findings.append(emit("SP100", str(exc), location="problem",
                             details={"stage": "compile"}))
        return DiagnosticReport.build(findings)

    # -- deadline vs the modelled sweep (SP131) ---------------------------- #
    sweep_seconds = float(compiled.plan.estimate.t_total)
    if (policy.deadline_seconds is not None
            and policy.deadline_seconds <= sweep_seconds):
        findings.append(emit(
            "SP131",
            f"deadline ({policy.deadline_seconds:.3g}s) does not cover one "
            f"modelled device sweep ({sweep_seconds:.3g}s) — the request "
            f"can never finish in time",
            location="policy.deadline_seconds",
            details={"deadline_seconds": policy.deadline_seconds,
                     "modelled_sweep_seconds": sweep_seconds,
                     "modelled_total_seconds":
                         sweep_seconds * problem.iterations}))

    # -- sharding geometry (SP110 / SP111 / SP112) ------------------------- #
    n_devices = _device_count(policy, scheduler)
    if mode_kind in ("auto", "sharded") and n_devices >= 2:
        from repro.stencils.partition import GridPartition, plan_shard_grid

        grid_shape = problem.grid_shape
        radius = compiled.pattern.radius
        align = compiled.plan.config.r
        shard_grid: Any = policy.shard_grid \
            if policy.shard_grid is not None else n_devices
        try:
            feasible = GridPartition.max_halo_depth(
                grid_shape, radius, shard_grid, align=align,
                boundary=boundary)
        except ValidationError as exc:
            findings.append(emit(
                "SP112",
                f"{n_devices}-way sharding is infeasible: {exc}",
                location="policy.devices",
                details={"devices": n_devices,
                         "shard_grid": list(policy.shard_grid)
                         if policy.shard_grid is not None else None,
                         "grid_shape": list(grid_shape)}))
            feasible = None
        if feasible is not None:
            if (policy.halo_depth is not None
                    and policy.halo_depth > feasible):
                findings.append(emit(
                    "SP110",
                    f"halo_depth {policy.halo_depth} exceeds the deepest "
                    f"depth this geometry supports ({feasible}) — the "
                    f"executor will clamp it",
                    location="policy.halo_depth",
                    details={"requested": policy.halo_depth,
                             "feasible": feasible,
                             "devices": n_devices}))
            if boundary == "periodic":
                out_shape = tuple(s - 2 * radius for s in grid_shape)
                resolved = plan_shard_grid(out_shape, n_devices) \
                    if not isinstance(shard_grid, (tuple, list)) \
                    else tuple(shard_grid)
                ragged = [ax for ax, count in enumerate(resolved)
                          if count > 1 and out_shape[ax] % align[ax] != 0]
                if ragged:
                    findings.append(emit(
                        "SP111",
                        f"periodic interior {out_shape} is not divisible "
                        f"by the tile extents {tuple(align)} on sharded "
                        f"axes {ragged} — communication-avoiding depth is "
                        f"forced to 1",
                        location="problem.grid",
                        details={"interior": list(out_shape),
                                 "align": list(align),
                                 "axes": ragged}))

    # -- explicit sharding below the crossover (SP130) --------------------- #
    if mode_kind == "sharded" and n_devices >= 2:
        decision = scheduler.decide(compiled, problem.iterations,
                                    free_devices=n_devices)
        if decision.executor == "single" \
                and "not divisible" not in decision.reason:
            findings.append(emit(
                "SP130",
                f"explicit sharded mode, but the perf model routes this "
                f"problem single-device: {decision.reason}",
                location="policy.mode",
                details={"reason": decision.reason,
                         "modelled_speedup": decision.modelled_speedup,
                         "min_speedup": scheduler.min_speedup,
                         "devices": n_devices}))

    return DiagnosticReport.build(findings)

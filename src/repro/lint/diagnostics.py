"""Shared diagnostic vocabulary of the two-tier static-analysis subsystem.

Both tiers of :mod:`repro.lint` — the domain pre-flight analyzers
(:mod:`repro.lint.domain`, ``SP1xx``) and the AST-based repo-invariant
linter (:mod:`repro.lint.repo`, ``SP2xx``) — speak one language:

* a :class:`Diagnostic` carries a registered rule *code*, a
  :class:`Severity` (``error`` findings reject work, ``warning`` findings
  flag modelled inefficiency, ``info`` findings explain routing), a human
  message, a *location* (``path:line`` for repo findings, a dotted
  problem/policy path for domain findings), a structured ``details``
  mapping for tooling, and a fix *hint*;
* a :class:`DiagnosticReport` is the immutable, severity-ordered outcome
  of one analysis run — what :meth:`repro.StencilSession.check`,
  :meth:`repro.programs.StencilProgram.lint` and the CLI all return.

Every rule registers itself at import time through :func:`register_rule`,
so the CLI ``--codes`` listing and the README table render from one source
of truth (:func:`rule_table`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.validation import require

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "RuleInfo",
    "register_rule",
    "rule_info",
    "rule_table",
]


class Severity(str, enum.Enum):
    """How seriously a finding should be taken.

    ``error`` — the configuration cannot (or must not) execute: the
    admission gate rejects it and the CLI exits non-zero.  ``warning`` —
    the configuration executes but the model predicts waste (clamped
    halos, sub-crossover sharding).  ``info`` — an explanation of a
    routing consequence, never a defect.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first, info last."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry documenting one diagnostic code."""

    code: str
    title: str
    severity: Severity
    tier: int            #: 1 = domain pre-flight, 2 = repo invariant
    hint: str = ""


_RULES: Dict[str, RuleInfo] = {}


def register_rule(code: str, title: str, severity: Severity, *,
                  tier: int, hint: str = "") -> RuleInfo:
    """Register (or idempotently re-register) one diagnostic code."""
    require(code.startswith("SP") and code[2:].isdigit(),
            f"diagnostic codes look like 'SP101', got {code!r}")
    require(tier in (1, 2), f"tier must be 1 or 2, got {tier!r}")
    info = RuleInfo(code=code, title=title, severity=Severity(severity),
                    tier=tier, hint=hint)
    existing = _RULES.get(code)
    require(existing is None or existing == info,
            f"diagnostic code {code} already registered with a different "
            f"definition")
    _RULES[code] = info
    return info


def _ensure_rules_loaded() -> None:
    # Rules register at import time of their home module; pull both tiers
    # in so the table is complete no matter which entry point ran first.
    from repro.lint import domain, repo  # noqa: F401


def rule_info(code: str) -> RuleInfo:
    """The registered :class:`RuleInfo` for ``code`` (raises if unknown)."""
    if code not in _RULES:
        _ensure_rules_loaded()
    require(code in _RULES, f"unknown diagnostic code {code!r}")
    return _RULES[code]


def rule_table() -> Tuple[RuleInfo, ...]:
    """Every registered rule, ordered by code — the CLI ``--codes`` listing
    and the README diagnostic table are generated from this."""
    _ensure_rules_loaded()
    return tuple(_RULES[code] for code in sorted(_RULES))


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, located, explained rule violation."""

    code: str
    severity: Severity
    message: str
    location: str = ""
    details: Dict[str, Any] = field(default_factory=dict)
    hint: str = ""

    def render(self) -> str:
        where = f" at {self.location}" if self.location else ""
        out = f"{self.code} {self.severity.value}{where}: {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "details": dict(self.details),
            "hint": self.hint,
        }


def emit(code: str, message: str, *, location: str = "",
         details: Optional[Dict[str, Any]] = None,
         severity: Optional[Severity] = None,
         hint: Optional[str] = None) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity and hint from the
    rule registry so every finding of a code stays consistent."""
    info = rule_info(code)
    return Diagnostic(
        code=code,
        severity=Severity(severity) if severity is not None else info.severity,
        message=message,
        location=location,
        details=dict(details or {}),
        hint=hint if hint is not None else info.hint)


@dataclass(frozen=True)
class DiagnosticReport:
    """The immutable outcome of one analysis run, severity-ordered."""

    diagnostics: Tuple[Diagnostic, ...] = ()

    @classmethod
    def build(cls, diagnostics: Iterable[Diagnostic]) -> "DiagnosticReport":
        ordered = sorted(diagnostics,
                         key=lambda d: (d.severity.rank, d.code, d.location))
        return cls(diagnostics=tuple(ordered))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- views ------------------------------------------------------------ #
    def _with_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self._with_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self._with_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return self._with_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos do not veto)."""
        return not self.errors

    @property
    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def merged(self, other: "DiagnosticReport") -> "DiagnosticReport":
        return DiagnosticReport.build((*self.diagnostics,
                                       *other.diagnostics))

    # -- rendering --------------------------------------------------------- #
    def counts(self) -> Dict[str, int]:
        return {"error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos)}

    def render(self) -> str:
        if not self.diagnostics:
            return "clean: no findings"
        counts = self.counts()
        head = ", ".join(f"{n} {sev}(s)" for sev, n in counts.items() if n)
        lines: List[str] = [head]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def raise_if_errors(self) -> "DiagnosticReport":
        """Raise :class:`~repro.util.validation.ValidationError` summarising
        the error findings; returns ``self`` when clean (chainable)."""
        from repro.util.validation import ValidationError

        if self.errors:
            summary = "; ".join(f"{d.code}: {d.message}" for d in self.errors)
            raise ValidationError(
                f"{len(self.errors)} error finding(s): {summary}")
        return self

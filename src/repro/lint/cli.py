"""Command-line front end: ``python -m repro.lint [paths...]``.

Runs the Tier-2 repo-invariant linter over the given files/directories
(default ``src``) and exits non-zero on any ``error`` finding —
``--strict`` also fails on warnings.  ``--json`` writes the full
:class:`~repro.lint.diagnostics.DiagnosticReport` for tooling (the
``lint_report`` section of :mod:`repro.analysis.report` renders it), and
``--codes`` prints the registered rule table of *both* tiers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.diagnostics import rule_table
from repro.lint.repo import lint_paths

__all__ = ["main"]


def _print_codes() -> None:
    rows = [(info.code, f"tier {info.tier}", info.severity.value,
             info.title, info.hint) for info in rule_table()]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    for row in rows:
        cells = [row[i].ljust(widths[i]) for i in range(4)]
        print("  ".join(cells) + (f"  — {row[4]}" if row[4] else ""))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="SparStencil repo-invariant linter (Tier 2)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings as well as errors")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON to PATH")
    parser.add_argument("--codes", action="store_true",
                        help="print the registered diagnostic-code table "
                             "(both tiers) and exit")
    args = parser.parse_args(argv)

    if args.codes:
        _print_codes()
        return 0

    missing: List[str] = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    report = lint_paths(args.paths)
    print(report.render())
    if args.json is not None:
        payload = {"paths": [str(p) for p in args.paths],
                   **report.as_dict()}
        Path(args.json).write_text(json.dumps(payload, indent=2),
                                   encoding="utf-8")
    failing = len(report.errors) + (len(report.warnings)
                                    if args.strict else 0)
    return 1 if failing else 0

"""Executing a compiled :class:`~repro.programs.compile.ProgramPlan`.

Two runners share the execution contract of
:func:`repro.programs.program.run_program_reference`:

* :class:`ProgramRunner` — single device.  Stages run in topological order
  through the engine step API; every tap reads a halo-filled copy of its
  source tensor, tap results sum in declaration order, and the stage tensor
  is halo-filled at the stage radius.  Because a boundary fill at radius
  ``r`` is idempotent over a tensor already filled at ``r``, redundant tap
  fills are skipped — a uniform-radius chain performs exactly one fill per
  stage (one per program *step* for a single-stage program), and for a
  single-stage chain the bits match :class:`repro.engine.SingleDeviceExecutor`
  exactly.
* :class:`ShardedProgramRunner` — the PR 7 communication-avoiding machinery
  applied per program *group* instead of per kernel.  Uniform-radius chain
  programs partition once (tiles aligned to the per-axis LCM of every
  stage's layout tiles, so each stage's shard-local ``B'`` columns stay
  bit-identical to its global ones) and execute a flattened round schedule:
  one halo exchange validates a whole fused group of stages, with stage
  ``j`` of a group sweeping on the shrinking window ``mult = span-1-j``.
  Unfused execution (``fuse=False``) keeps the shard-locals resident across
  the entire run and exchanges once per stage — still only
  ``rounds - 1`` exchanges total, because the first round reads the initial
  extraction and nothing reads halos after the final sweep.

:func:`model_program` prices both paths with the same arithmetic as
:func:`repro.engine.sharded.model_schedule` (linear window-cell scaling of
each stage's full-grid roofline), so the
:class:`repro.server.scheduler.DevicePoolScheduler` can route programs and
the fusion benchmark can count modelled exchanges without executing.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.morphing import MorphConfig
from repro.core.pipeline import StencilRunResult
from repro.engine.base import prepare_sweep, run_sweep, summarize_launches
from repro.engine.sharded import (
    ShardedRunResult,
    _interior_cells,
    build_shard_phases,
    run_shard_phase,
)
from repro.obs.trace import current_span
from repro.programs.compile import ProgramPlan
from repro.programs.program import STATE
from repro.stencils.boundary import apply_boundary
from repro.stencils.grid import Grid
from repro.stencils.partition import GridPartition
from repro.stencils.reference import stencil_points_updated
from repro.tcu.counters import combine_utilization
from repro.tcu.executor import LaunchResult
from repro.tcu.spec import GPUSpec, MultiDeviceSpec
from repro.util.parallel import default_workers
from repro.util.validation import ValidationError, require, require_positive_int

__all__ = [
    "ProgramRunner",
    "ShardedProgramRunner",
    "ProgramCostModel",
    "model_program",
]


def _program_throughput(plan: ProgramPlan, steps: int) -> Tuple[float, float]:
    """``(points, flops)`` of ``steps`` program steps: every tap of every
    stage updates the full interior once per step."""
    points = flops = 0.0
    for cstage in plan.stages:
        for _, pattern in cstage.stage.taps:
            tap_points = stencil_points_updated(pattern, plan.grid_shape,
                                                steps)
            points += tap_points
            flops += 2.0 * pattern.points * tap_points
    return float(points), float(flops)


def _check_run(plan: ProgramPlan, grid: Grid, steps: int) -> None:
    require(isinstance(plan, ProgramPlan),
            f"plan must be a ProgramPlan, got {type(plan).__name__}")
    require_positive_int(steps, "steps")
    require(tuple(grid.shape) == plan.grid_shape,
            f"grid shape {tuple(grid.shape)} does not match the compiled "
            f"program shape {plan.grid_shape}")
    require(grid.boundary == plan.boundary,
            f"grid boundary {grid.boundary!r} does not match the compiled "
            f"program boundary {plan.boundary!r} — recompile for this grid")


class ProgramRunner:
    """Run a compiled program on one simulated device.

    ``spec`` overrides the device the sweeps are costed on (defaults to the
    device each stage was compiled for).
    """

    def __init__(self, spec: Optional[GPUSpec] = None) -> None:
        self.spec = spec

    def execute(self, plan: ProgramPlan, grid: Grid,
                steps: int) -> StencilRunResult:
        _check_run(plan, grid, steps)
        program = plan.program
        boundary = plan.boundary
        shape = plan.grid_shape
        contexts = {
            cstage.name: tuple(prepare_sweep(compiled, self.spec)
                               for compiled in cstage.compiled)
            for cstage in plan.stages
        }

        trace = current_span()
        tracer = trace.tracer if trace is not None else None

        state = grid.data.copy()
        launches: List[LaunchResult] = []
        # boundary-fill radius each tensor currently carries; a fill is
        # idempotent at the *same* radius (ghost layer d is a pure per-layer
        # function of interior layer d), so equal-radius tap fills are
        # skipped — but a *different* radius re-fills, exactly like the
        # reference
        state_filled: Optional[int] = None
        for step in range(steps):
            step_span = tracer.begin(
                "program_step", parent=trace, step=step,
                program=program.name) if tracer is not None else None
            tensors: Dict[str, np.ndarray] = {STATE: state}
            filled: Dict[str, Optional[int]] = {STATE: state_filled}
            step_device = 0.0
            for cstage in plan.stages:
                stage = cstage.stage
                stage_radius = stage.radius
                interior = tuple(slice(stage_radius, s - stage_radius)
                                 for s in shape)
                stage_start = time.perf_counter()
                stage_device = 0.0
                acc: Optional[np.ndarray] = None
                for (source, pattern), context in zip(
                        stage.taps, contexts[cstage.name]):
                    data = tensors[source].copy()
                    # a radius-0 tap (e.g. an identity term of a multi-tap
                    # stage) reads no ghost cells and needs no fill
                    if pattern.radius > 0 \
                            and filled.get(source) != pattern.radius:
                        apply_boundary(data, pattern.radius, boundary)
                    launch = run_sweep(context, data)
                    launches.append(launch)
                    stage_device += launch.elapsed_seconds
                    term = data[interior]
                    acc = term if acc is None else acc + term
                out = tensors[stage.taps[0][0]].copy()
                out[interior] = acc
                if stage_radius > 0:
                    apply_boundary(out, stage_radius, boundary)
                tensors[cstage.name] = out
                filled[cstage.name] = stage_radius
                step_device += stage_device
                if tracer is not None:
                    tracer.record("stage", stage_start, time.perf_counter(),
                                  parent=step_span, stage=cstage.name,
                                  device_seconds=stage_device,
                                  taps=len(stage.taps))
            state = tensors[program.output]
            state_filled = filled[program.output]
            if tracer is not None and step_span is not None:
                step_span.add_device_seconds(step_device)
                tracer.end(step_span)

        totals = summarize_launches(launches)
        points, flops = _program_throughput(plan, steps)
        elapsed = totals.elapsed_seconds
        gstencil = points / elapsed / 1e9 if elapsed > 0 else 0.0
        gflops = flops / elapsed / 1e9 if elapsed > 0 else 0.0
        return StencilRunResult(
            output=state,
            iterations=steps,
            elapsed_seconds=elapsed,
            compute_seconds=totals.compute_seconds,
            memory_seconds=totals.memory_seconds,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=totals.utilization,
            overhead_seconds={"program_compile": plan.compile_seconds},
            sweeps=len(launches),
            leftover_sweeps=0,
            points_updated=points,
        )


def _program_alignment(plan: ProgramPlan) -> Tuple[int, ...]:
    """Per-axis LCM of every stage's layout tile extents.

    Partition chunks aligned to this are tile-congruent for *every* stage's
    ``(r1, r2)`` layout at once, which is what keeps each stage's
    shard-local ``B'`` columns bit-identical to its global plan's.
    """
    ndim = len(plan.grid_shape)
    align = [1] * ndim
    for cstage in plan.stages:
        for compiled in cstage.compiled:
            config = compiled.plan.config
            pattern = compiled.pattern
            require(
                MorphConfig.from_r1_r2(pattern.ndim, config.r1, config.r2)
                == config,
                f"stage {cstage.name!r} layout config {config.r} is not "
                f"expressible as (r1, r2) — sharded program execution "
                f"supports the standard morph layouts only")
            for axis, extent in enumerate(config.r):
                align[axis] = math.lcm(align[axis], int(extent))
    return tuple(align)


def _check_shardable(plan: ProgramPlan) -> None:
    require(plan.program.is_chain,
            f"sharded execution supports single-tap chain programs only; "
            f"{plan.program.name!r} is a general DAG — run it on the "
            f"single-device program runner")
    require(plan.uniform_radius,
            f"sharded execution needs a uniform stage radius; "
            f"{plan.program.name!r} mixes radii "
            f"{sorted({s.radius for s in plan.stages})}")


def _program_partition(plan: ProgramPlan, shard_grid, fuse: bool
                       ) -> Tuple[GridPartition, Tuple[Tuple[str, ...], ...]]:
    """The common partition plus the round groups (stage names per round).

    Fused groups come from the compile-time :class:`FusionPlan`, re-chunked
    to the deepest halo the geometry supports; ``fuse=False`` degrades to
    singleton groups on a classic depth-1 partition (one exchange per
    stage).  The partition's ``halo_depth`` is the longest group's span.
    """
    _check_shardable(plan)
    radius = plan.radius
    align = _program_alignment(plan)
    cap = GridPartition.max_halo_depth(plan.grid_shape, radius, shard_grid,
                                       align=align, boundary=plan.boundary)
    if fuse:
        groups = plan.fusion.bounded(cap)
    else:
        groups = tuple((name,) for name in plan.program.stage_names)
    depth = max(len(group) for group in groups)
    partition = GridPartition.build(plan.grid_shape, radius, shard_grid,
                                    align=align, boundary=plan.boundary,
                                    halo_depth=depth)
    return partition, groups


class ShardedProgramRunner:
    """Run a compiled chain program sharded across multiple devices.

    Parameters mirror :class:`repro.engine.ShardedExecutor` (``spec`` may be
    a :class:`~repro.tcu.spec.MultiDeviceSpec` or a device count;
    ``shard_grid``, ``cache``, ``max_workers``, ``overlap`` as there);
    ``fuse`` toggles cross-stage fusion — fused groups exchange once per
    group, unfused execution exchanges once per stage.  Only uniform-radius
    chain programs shard; anything else must run on :class:`ProgramRunner`.
    """

    def __init__(self, spec: Union[MultiDeviceSpec, int] = 2,
                 shard_grid: Optional[Sequence[int]] = None,
                 cache=None, max_workers: Optional[int] = None,
                 fuse: bool = True, overlap: bool = True) -> None:
        if isinstance(spec, (int, np.integer)):
            self._device_count = int(spec)
            require_positive_int(self._device_count, "device count")
            self.spec: Optional[MultiDeviceSpec] = None
        else:
            require(isinstance(spec, MultiDeviceSpec),
                    f"spec must be a MultiDeviceSpec or a device count, "
                    f"got {type(spec).__name__}")
            self.spec = spec
            self._device_count = spec.device_count
        self.shard_grid = None if shard_grid is None else tuple(
            int(c) for c in shard_grid)
        self.cache = cache
        self.max_workers = max_workers
        self.fuse = bool(fuse)
        self.overlap = bool(overlap)

    def resolve_spec(self, plan: ProgramPlan) -> MultiDeviceSpec:
        if self.spec is not None:
            return self.spec
        return MultiDeviceSpec(device=plan.stages[0].compiled[0].spec,
                               device_count=self._device_count)

    def partition(self, plan: ProgramPlan
                  ) -> Tuple[GridPartition, Tuple[Tuple[str, ...], ...]]:
        shard_grid = self.shard_grid if self.shard_grid is not None \
            else self._device_count
        partition, groups = _program_partition(plan, shard_grid, self.fuse)
        require(partition.n_shards <= self._device_count,
                f"{partition.n_shards} shards need more than the "
                f"{self._device_count} available devices")
        return partition, groups

    def execute(self, plan: ProgramPlan, grid: Grid,
                steps: int) -> ShardedRunResult:
        _check_run(plan, grid, steps)
        spec = self.resolve_spec(plan)
        partition, groups = self.partition(plan)
        depth = partition.halo_depth
        radius = partition.radius

        trace = current_span()
        tracer = trace.tracer if trace is not None else None

        from repro.service.cache import CompileCache

        cache = self.cache
        if cache is None:
            cache = CompileCache(capacity=max(
                8, partition.n_shards * depth * plan.stage_count))
        compile_start = time.perf_counter()
        phases = {
            cstage.name: build_shard_phases(cstage.compiled[0], spec,
                                            partition, cache=cache,
                                            max_workers=self.max_workers)
            for cstage in plan.stages
        }
        shard_compile_seconds = time.perf_counter() - compile_start
        if tracer is not None:
            tracer.record("shard_compile", compile_start,
                          compile_start + shard_compile_seconds, parent=trace,
                          shards=partition.n_shards, halo_depth=depth,
                          stages=plan.stage_count)

        itemsize = plan.dtype.itemsize
        recv_messages = partition.messages_per_shard()
        recv_elements = partition.received_elements_per_shard()
        shard_halo_seconds = [
            spec.exchange_seconds(elements * itemsize, messages)
            for elements, messages in zip(recv_elements, recv_messages)
        ] if partition.n_shards > 1 else [0.0]
        halo_seconds_per_exchange = max(shard_halo_seconds)
        interior_cells = [_interior_cells(partition, shard)
                          for shard in partition.shards]
        owned_cells = [math.prod(shard.out_shape)
                       for shard in partition.shards]

        # fill the initial ring exactly like the single-device program
        # runner's first tap fill, then extract the resident shard slabs —
        # they stay live for the entire run, across stages and steps
        if partition.boundary == "dirichlet":
            base = grid.data
        else:
            base = apply_boundary(grid.data.copy(), radius,
                                  partition.boundary)
        locals_ = partition.extract(base)
        n_shards = partition.n_shards
        shard_launches: List[List[LaunchResult]] = [[] for _ in range(n_shards)]
        wall = compute_crit = memory_crit = 0.0
        halo_bytes = halo_seconds = exposed_seconds = dram_bytes = 0.0
        exchange_count = 0
        redundant_cells = 0

        workers = self.max_workers if self.max_workers is not None \
            else default_workers(n_shards)
        pool = ThreadPoolExecutor(max_workers=workers) \
            if workers > 1 and n_shards > 1 else None

        def sweep_all(stage_name: str, mult: int) -> List[LaunchResult]:
            row = [phases[stage_name][i][mult] for i in range(n_shards)]
            if pool is not None:
                return list(pool.map(
                    lambda pair: run_shard_phase(pair[0], pair[1], radius),
                    zip(row, locals_)))
            return [run_shard_phase(phase, local, radius)
                    for phase, local in zip(row, locals_)]

        try:
            first_round = True
            sweep_index = 0
            for step in range(steps):
                step_span = tracer.begin(
                    "program_step", parent=trace, step=step,
                    program=plan.program.name, groups=len(groups),
                ) if tracer is not None else None
                step_wall_before = wall
                for round_index, group in enumerate(groups):
                    span = len(group)
                    after_exchange = False
                    round_span = None
                    round_wall_before = wall
                    if tracer is not None:
                        round_span = tracer.begin(
                            "round", parent=step_span, round=round_index,
                            sweeps_in_round=span, stages=list(group))
                    if not first_round:
                        # one exchange validates the whole group; the very
                        # first round reads the initial extraction and needs
                        # none
                        exchange_start = time.perf_counter()
                        exchanged = partition.exchange_halos(locals_)
                        if n_shards > 1:
                            halo_bytes += exchanged * itemsize
                            halo_seconds += halo_seconds_per_exchange
                            exchange_count += 1
                            after_exchange = True
                            if tracer is not None:
                                tracer.record(
                                    "halo_exchange", exchange_start,
                                    time.perf_counter(), parent=round_span,
                                    device_seconds=halo_seconds_per_exchange,
                                    bytes=exchanged * itemsize,
                                    overlap=self.overlap)
                    for j, stage_name in enumerate(group):
                        mult = span - 1 - j
                        if j > 0:
                            partition.refresh_local_boundaries(locals_)
                        sweep_start = time.perf_counter()
                        results = sweep_all(stage_name, mult)
                        sweep_end = time.perf_counter()
                        for launches, result in zip(shard_launches, results):
                            launches.append(result)
                        elapsed = [r.elapsed_seconds for r in results]
                        compute_crit += max(r.compute_seconds
                                            for r in results)
                        memory_crit += max(r.memory_seconds for r in results)
                        dram_bytes += sum(
                            phases[stage_name][i][mult].dram_bytes
                            for i in range(n_shards))
                        redundant_cells += sum(
                            phases[stage_name][i][mult].out_cells - owned
                            for i, owned in enumerate(owned_cells))
                        if tracer is not None:
                            tracer.record("sweep", sweep_start, sweep_end,
                                          parent=round_span,
                                          device_seconds=max(elapsed),
                                          sweep=sweep_index,
                                          stage=stage_name, window_mult=mult)
                        if after_exchange and self.overlap:
                            step_wall = 0.0
                            for i, seconds in enumerate(elapsed):
                                cells = phases[stage_name][i][mult].out_cells
                                share = min(interior_cells[i], cells) / cells \
                                    if cells > 0 else 0.0
                                interior_sec = seconds * share
                                step_wall = max(
                                    step_wall,
                                    max(interior_sec, shard_halo_seconds[i])
                                    + (seconds - interior_sec))
                            wall += step_wall
                            exposure = step_wall - max(elapsed)
                            exposed_seconds += exposure
                            if tracer is not None:
                                tracer.record("overlap_exposed", sweep_end,
                                              sweep_end, parent=round_span,
                                              device_seconds=exposure,
                                              sweep=sweep_index, overlap=True)
                        elif after_exchange:
                            wall += max(elapsed) + halo_seconds_per_exchange
                            exposed_seconds += halo_seconds_per_exchange
                            if tracer is not None:
                                tracer.record(
                                    "overlap_exposed", sweep_end, sweep_end,
                                    parent=round_span,
                                    device_seconds=halo_seconds_per_exchange,
                                    sweep=sweep_index, overlap=False)
                        else:
                            wall += max(elapsed)
                        after_exchange = False
                        sweep_index += 1
                    first_round = False
                    if tracer is not None and round_span is not None:
                        round_span.add_device_seconds(wall - round_wall_before)
                        tracer.end(round_span)
                if tracer is not None and step_span is not None:
                    step_span.add_device_seconds(wall - step_wall_before)
                    tracer.end(step_span)
        finally:
            if pool is not None:
                pool.shutdown()

        output = partition.assemble(locals_, base)
        apply_boundary(output, radius, partition.boundary)

        shard_totals = [summarize_launches(launches)
                        for launches in shard_launches]
        all_launches = [r for launches in shard_launches for r in launches]
        overall = combine_utilization(
            [r.utilization for r in all_launches],
            [r.elapsed_seconds for r in all_launches])

        points, flops = _program_throughput(plan, steps)
        elapsed = wall
        gstencil = points / elapsed / 1e9 if elapsed > 0 else 0.0
        gflops = flops / elapsed / 1e9 if elapsed > 0 else 0.0

        return ShardedRunResult(
            output=output,
            iterations=steps,
            elapsed_seconds=elapsed,
            compute_seconds=compute_crit,
            memory_seconds=memory_crit,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=overall,
            overhead_seconds={"program_compile": plan.compile_seconds,
                              "shard_compile": shard_compile_seconds},
            sweeps=len(all_launches) // max(1, n_shards),
            leftover_sweeps=0,
            points_updated=points,
            shard_grid=partition.shard_grid,
            shard_elapsed_seconds=tuple(t.elapsed_seconds
                                        for t in shard_totals),
            shard_utilization=tuple(t.utilization for t in shard_totals),
            halo_exchange_bytes=halo_bytes,
            halo_exchange_seconds=halo_seconds,
            halo_exposed_seconds=exposed_seconds,
            halo_exchange_count=exchange_count,
            halo_depth=depth,
            overlap=self.overlap,
            redundant_points_updated=float(redundant_cells),
            device_traffic_bytes=dram_bytes,
            device_count=spec.device_count,
        )


@dataclass(frozen=True)
class ProgramCostModel:
    """Modelled cost of running one program for ``steps`` steps.

    ``sharded_seconds`` is ``None`` when the program cannot shard (not a
    uniform-radius chain, or the geometry rejects the partition) — the
    ``reason`` says why.  ``exchange_count`` is the *modelled* number of
    halo exchanges of the whole run; comparing ``fuse=True`` against
    ``fuse=False`` shows exactly how many exchanges fusion removes.
    """

    steps: int
    devices: int
    fused: bool
    groups: Tuple[Tuple[str, ...], ...]
    halo_depth: int
    single_seconds: float
    sharded_seconds: Optional[float]
    exchange_count: int
    halo_seconds: float
    exposed_seconds: float
    reason: str

    @property
    def exchanges_per_step(self) -> float:
        return self.exchange_count / self.steps if self.steps else 0.0

    @property
    def speedup(self) -> float:
        """Modelled single over sharded wall time (0 when unshardable)."""
        if not self.sharded_seconds:
            return 0.0
        return self.single_seconds / self.sharded_seconds

    @property
    def recommendation(self) -> str:
        if self.sharded_seconds is not None \
                and self.sharded_seconds < self.single_seconds:
            return "sharded"
        return "single"


def model_program(plan: ProgramPlan, devices: int = 2, steps: int = 1,
                  shard_grid: Optional[Sequence[int]] = None,
                  fuse: bool = True, overlap: bool = True,
                  spec: Optional[MultiDeviceSpec] = None) -> ProgramCostModel:
    """Price ``steps`` program steps on one device and on ``devices`` shards.

    The sharded estimate walks the exact round schedule the runner executes
    (first round skips the exchange, stage ``j`` of a span-``k`` group
    sweeps window ``mult = k-1-j``) with each stage's full-grid modelled
    sweep time scaled linearly by its window's share of the output cells —
    the same compile-free arithmetic as
    :func:`repro.engine.sharded.model_schedule`, so the scheduler routes
    programs and plain kernels through one pricing model.
    """
    require_positive_int(steps, "steps")
    single_seconds = plan.single_step_seconds * steps
    if spec is not None:
        devices = spec.device_count

    def unsharded(reason: str) -> ProgramCostModel:
        return ProgramCostModel(
            steps=steps, devices=devices, fused=False,
            groups=tuple((name,) for name in plan.program.stage_names),
            halo_depth=1, single_seconds=single_seconds,
            sharded_seconds=None, exchange_count=0, halo_seconds=0.0,
            exposed_seconds=0.0, reason=reason)

    if devices <= 1:
        return unsharded("a single device has nothing to shard over")
    try:
        _check_shardable(plan)
        partition, groups = _program_partition(
            plan, shard_grid if shard_grid is not None else devices, fuse)
    except ValidationError as error:
        return unsharded(str(error))
    if partition.n_shards <= 1:
        return unsharded("the partition degenerates to one shard")

    if spec is None:
        spec = MultiDeviceSpec(device=plan.stages[0].compiled[0].spec,
                               device_count=devices)
    itemsize = plan.dtype.itemsize
    recv_elements = partition.received_elements_per_shard()
    recv_messages = partition.messages_per_shard()
    halos = [spec.exchange_seconds(elements * itemsize, messages)
             for elements, messages in zip(recv_elements, recv_messages)]
    halo = max(halos)

    depth = partition.halo_depth
    out_cells = 1
    for extent in partition.grid_shape:
        out_cells *= extent - 2 * partition.radius
    window_cells = [[math.prod(partition.window_out_shape(shard, mult))
                     for mult in range(depth)]
                    for shard in partition.shards]
    interior = [_interior_cells(partition, shard)
                for shard in partition.shards]
    stage_seconds = {cstage.name: cstage.sweep_seconds
                     for cstage in plan.stages}

    wall = exposed = halo_total = 0.0
    exchange_count = 0
    first_round = True
    for _ in range(steps):
        for group in groups:
            span = len(group)
            after_exchange = not first_round
            if after_exchange:
                exchange_count += 1
                halo_total += halo
            for j, stage_name in enumerate(group):
                mult = span - 1 - j
                per_shard = [
                    stage_seconds[stage_name] * window_cells[i][mult]
                    / out_cells
                    for i in range(partition.n_shards)]
                if after_exchange and overlap:
                    step_wall = 0.0
                    for i, seconds in enumerate(per_shard):
                        cells = window_cells[i][mult]
                        share = min(interior[i], cells) / cells \
                            if cells > 0 else 0.0
                        interior_sec = seconds * share
                        step_wall = max(step_wall,
                                        max(interior_sec, halos[i])
                                        + (seconds - interior_sec))
                    wall += step_wall
                    exposed += step_wall - max(per_shard)
                elif after_exchange:
                    wall += max(per_shard) + halo
                    exposed += halo
                else:
                    wall += max(per_shard)
                after_exchange = False
            first_round = False

    fused = any(len(group) > 1 for group in groups)
    return ProgramCostModel(
        steps=steps,
        devices=devices,
        fused=fused,
        groups=groups,
        halo_depth=depth,
        single_seconds=single_seconds,
        sharded_seconds=wall,
        exchange_count=exchange_count,
        halo_seconds=halo_total,
        exposed_seconds=exposed,
        reason=f"{len(groups)} group(s) per step, depth {depth}, "
               f"{exchange_count} exchange(s) over {steps} step(s)",
    )

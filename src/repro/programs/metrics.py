"""Per-stage compile-cache attribution for stencil programs.

:meth:`repro.service.cache.CompileCache.get_or_compile` reports what it did
per call (``"hit"`` / ``"disk"`` / ``"compile"``), but the cache itself only
keeps aggregate counters — it cannot say *which program stage* paid for a
compile.  :class:`StageCacheAttribution` keeps that breakdown, keyed
``"<program>/<stage>"``, and publishes it as the ``program_stage_cache``
section of the global :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
A warm re-solve of an N-stage program is then visible as N stage rows whose
hit counters advanced and whose compile counters did not.

Tests swap the global registry with
:func:`repro.obs.metrics.reset_global_registry`, which drops every provider;
the accessor re-registers the singleton whenever the registry identity it
last registered with has changed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from repro.obs.metrics import MetricsRegistry, global_registry

__all__ = [
    "StageCacheAttribution",
    "stage_cache_attribution",
]

_EVENTS = ("hit", "disk", "compile")


class StageCacheAttribution:
    """Thread-safe per-stage hit/disk/compile counters.

    One row per ``"<program>/<stage>"`` key; each row is a plain dict of the
    three event counters.  :meth:`snapshot` is the registry provider.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: Dict[str, Dict[str, int]] = {}

    def record(self, program: str, stage: str,
               events: Iterable[str]) -> None:
        key = f"{program}/{stage}"
        with self._lock:
            row = self._rows.setdefault(
                key, {event: 0 for event in _EVENTS})
            for event in events:
                if event in row:
                    row[event] += 1

    def row(self, program: str, stage: str) -> Dict[str, int]:
        """A copy of one stage's counters (zeros when never recorded)."""
        with self._lock:
            row = self._rows.get(f"{program}/{stage}")
            return dict(row) if row else {event: 0 for event in _EVENTS}

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {key: dict(row) for key, row in self._rows.items()}

    def reset(self) -> None:
        with self._lock:
            self._rows.clear()


_LOCK = threading.Lock()
_SINGLETON: Optional[StageCacheAttribution] = None
_REGISTERED_WITH: Optional[MetricsRegistry] = None


def stage_cache_attribution() -> StageCacheAttribution:
    """The process-wide attribution table, registered (and re-registered
    after a registry reset) as the ``program_stage_cache`` snapshot
    section."""
    global _SINGLETON, _REGISTERED_WITH
    registry = global_registry()
    with _LOCK:
        if _SINGLETON is None:
            _SINGLETON = StageCacheAttribution()
        if _REGISTERED_WITH is not registry:
            registry.register_provider("program_stage_cache",
                                       _SINGLETON.snapshot)
            _REGISTERED_WITH = registry
        return _SINGLETON

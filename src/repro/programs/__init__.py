"""Multi-stage stencil programs: DAG compilation and execution.

A :class:`StencilProgram` names an ordered DAG of stencil stages executed
once per program step — LBM collide+stream, RK time-steppers, operator
splits — compiled stage by stage through the
:class:`~repro.service.cache.CompileCache` into a :class:`ProgramPlan`
(one program fingerprint folding every stage's compile fingerprint plus
the wiring), and executed by :class:`ProgramRunner` (single device) or
:class:`ShardedProgramRunner` (communication-avoiding multi-device, one
halo exchange per fused stage group).  The session layer routes
``Problem(program=..., grid=..., iterations=...)`` here; see the README's
"Stencil programs" section.
"""

from repro.programs.program import (
    STATE,
    ProgramStage,
    StencilProgram,
    run_program_reference,
)
from repro.programs.compile import (
    CompiledStage,
    FusionPlan,
    ProgramPlan,
    compile_program,
    plan_fusion,
    program_fingerprint,
)
from repro.programs.executor import (
    ProgramCostModel,
    ProgramRunner,
    ShardedProgramRunner,
    model_program,
)
from repro.programs.metrics import (
    StageCacheAttribution,
    stage_cache_attribution,
)

__all__ = [
    "STATE",
    "ProgramStage",
    "StencilProgram",
    "run_program_reference",
    "CompiledStage",
    "FusionPlan",
    "ProgramPlan",
    "compile_program",
    "plan_fusion",
    "program_fingerprint",
    "ProgramCostModel",
    "ProgramRunner",
    "ShardedProgramRunner",
    "model_program",
    "StageCacheAttribution",
    "stage_cache_attribution",
]

"""Multi-stage stencil programs: a named DAG of kernels per time step.

Every layer below this one assumes exactly one kernel per problem.  A
:class:`StencilProgram` lifts the catalog's genuinely multi-kernel
workloads — LBM collide+stream, RK2/RK3 time-steppers, operator-split
advection–diffusion — out of hand-rolled Python loops and into the
compile-once pipeline:

* a :class:`ProgramStage` is one named tensor produced per program step:
  the sum of one stencil kernel applied per *tap* (an input reference —
  ``"state"`` or an earlier stage's name — paired with a
  :class:`~repro.stencils.pattern.StencilPattern`).  A single-tap stage is
  the ordinary one-kernel sweep; a multi-tap stage expresses linear
  combinations like the RK2 update ``u + dt * L(u_mid)``;
* a :class:`StencilProgram` wires stages into a DAG, validated for
  acyclicity, for dangling references and for dead stages, with a
  designated ``output`` stage whose tensor becomes the next step's
  ``"state"``.

Execution semantics (the contract every executor and the golden
:func:`run_program_reference` share): stages run in topological order; each
tap reads a halo-filled copy of its input (filled at the *tap's* radius,
exactly like a single-kernel sweep of that pattern); tap results are summed
in declaration order on the stage-radius interior; the stage tensor keeps
its first tap's halo ring and is then halo-filled at the stage radius.  For
a single-tap chain this reduces, bit for bit, to the classic
fill–sweep–fill loop of the single-device executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.stencils.boundary import apply_boundary
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import apply_stencil_reference
from repro.util.validation import require, require_positive_int

__all__ = [
    "STATE",
    "ProgramStage",
    "StencilProgram",
    "run_program_reference",
]

#: The reserved tap reference naming the program's evolving state tensor.
STATE = "state"


def _as_taps(taps) -> Tuple[Tuple[str, StencilPattern], ...]:
    out: List[Tuple[str, StencilPattern]] = []
    for tap in taps:
        require(isinstance(tap, tuple) and len(tap) == 2,
                f"a tap is a (source, pattern) pair, got {tap!r}")
        source, pattern = tap
        require(isinstance(source, str) and source != "",
                f"tap source must be a non-empty string, got {source!r}")
        require(isinstance(pattern, StencilPattern),
                f"tap pattern must be a StencilPattern, "
                f"got {type(pattern).__name__}")
        out.append((source, pattern))
    return tuple(out)


@dataclass(frozen=True)
class ProgramStage:
    """One named stage of a program: a sum of per-tap kernel applications.

    ``taps`` is an ordered tuple of ``(source, pattern)`` pairs; the stage
    tensor's interior (at the stage radius — the maximum tap radius) is the
    declaration-ordered sum of each pattern applied to its source tensor.
    Deterministic summation order keeps every execution path bit-identical.
    """

    name: str
    taps: Tuple[Tuple[str, StencilPattern], ...]

    def __post_init__(self) -> None:
        require(isinstance(self.name, str) and self.name != "",
                "stage name must be a non-empty string")
        require(self.name != STATE,
                f"stage name {STATE!r} is reserved for the program state")
        object.__setattr__(self, "taps", _as_taps(self.taps))
        require(len(self.taps) > 0, f"stage {self.name!r} needs >= 1 tap")
        ndims = {pattern.ndim for _, pattern in self.taps}
        require(len(ndims) == 1,
                f"stage {self.name!r} mixes tap dimensionalities {ndims}")

    @classmethod
    def kernel(cls, name: str, pattern: StencilPattern,
               source: str = STATE) -> "ProgramStage":
        """The common single-kernel stage: ``name = pattern(source)``."""
        return cls(name=name, taps=((source, pattern),))

    @classmethod
    def combine(cls, name: str,
                *taps: Tuple[str, StencilPattern]) -> "ProgramStage":
        """A multi-tap stage: ``name = sum(pattern_i(source_i))``."""
        return cls(name=name, taps=tuple(taps))

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(source for source, _ in self.taps)

    @property
    def radius(self) -> int:
        return max(pattern.radius for _, pattern in self.taps)

    @property
    def ndim(self) -> int:
        return self.taps[0][1].ndim

    @property
    def single_kernel(self) -> bool:
        return len(self.taps) == 1


@dataclass(frozen=True)
class StencilProgram:
    """An ordered DAG of named stages, one full pass per program step.

    ``stages`` may be declared in any order (forward references are legal);
    :attr:`execution_order` is the topological order with declaration-order
    tie-breaking, and construction validates the wiring:

    * stage names are unique and never ``"state"``;
    * every tap source is ``"state"`` or a declared stage name;
    * the dependency graph is acyclic;
    * every stage is reachable from the ``output`` stage (dead stages would
      silently burn compute, so they are errors);
    * all stages share one dimensionality.

    ``output`` names the stage whose tensor becomes the next step's state;
    it defaults to the last declared stage.
    """

    name: str
    stages: Tuple[ProgramStage, ...]
    output: str = ""

    def __post_init__(self) -> None:
        require(isinstance(self.name, str) and self.name != "",
                "program name must be a non-empty string")
        stages = tuple(self.stages)
        object.__setattr__(self, "stages", stages)
        require(len(stages) > 0, "a program needs at least one stage")
        for stage in stages:
            require(isinstance(stage, ProgramStage),
                    f"stages must be ProgramStage, "
                    f"got {type(stage).__name__}")
        names = [stage.name for stage in stages]
        require(len(set(names)) == len(names),
                f"duplicate stage names in program {self.name!r}: {names}")
        if self.output == "":
            object.__setattr__(self, "output", names[-1])
        require(self.output in names,
                f"output stage {self.output!r} is not a stage of program "
                f"{self.name!r} (stages: {names})")
        ndims = {stage.ndim for stage in stages}
        require(len(ndims) == 1,
                f"program {self.name!r} mixes stage dimensionalities {ndims}")
        by_name = {stage.name: stage for stage in stages}
        for stage in stages:
            for source in stage.sources:
                require(source == STATE or source in by_name,
                        f"stage {stage.name!r} reads {source!r}, which is "
                        f"neither {STATE!r} nor a stage of program "
                        f"{self.name!r}")
        self._validate_acyclic_and_live(by_name)

    def _validate_acyclic_and_live(
            self, by_name: Dict[str, ProgramStage]) -> None:
        # Kahn's algorithm with declaration-order tie-breaking; anything left
        # unordered sits on a cycle.
        order: List[ProgramStage] = []
        placed = {STATE}
        remaining = list(self.stages)
        while remaining:
            ready = [stage for stage in remaining
                     if all(src in placed for src in stage.sources)]
            if not ready:
                cycle = sorted(stage.name for stage in remaining)
                require(False,
                        f"program {self.name!r} has a dependency cycle "
                        f"among stages {cycle}")
            for stage in ready:
                order.append(stage)
                placed.add(stage.name)
            remaining = [s for s in remaining if s.name not in placed]
        object.__setattr__(self, "_execution_order", tuple(order))

        # liveness: walk tap edges backwards from the output stage
        live = set()
        frontier = [self.output]
        while frontier:
            name = frontier.pop()
            if name in live or name == STATE:
                continue
            live.add(name)
            frontier.extend(by_name[name].sources)
        dead = sorted(set(by_name) - live)
        require(not dead,
                f"stages {dead} of program {self.name!r} never feed the "
                f"output stage {self.output!r} — remove them or rewire")

    # -- views --------------------------------------------------------------

    @property
    def execution_order(self) -> Tuple[ProgramStage, ...]:
        """Stages in topological order (declaration order breaks ties)."""
        return self._execution_order  # type: ignore[attr-defined]

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.execution_order)

    @property
    def ndim(self) -> int:
        return self.stages[0].ndim

    @property
    def radius(self) -> int:
        """The maximum stage radius (what one program step's halo must feed)."""
        return max(stage.radius for stage in self.stages)

    @cached_property
    def is_chain(self) -> bool:
        """True for a linear pipeline: every stage single-tap, stage ``i``
        reading stage ``i-1`` (the first reading ``"state"``), the output
        being the last stage.  Chains are what cross-stage fusion and the
        sharded round schedule apply to."""
        order = self.execution_order
        if self.output != order[-1].name:
            return False
        previous = STATE
        for stage in order:
            if not stage.single_kernel or stage.sources[0] != previous:
                return False
            previous = stage.name
        return True

    @property
    def uniform_radius(self) -> bool:
        return len({stage.radius for stage in self.stages}) == 1

    def stage(self, name: str) -> ProgramStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        require(False, f"program {self.name!r} has no stage {name!r}")

    def describe(self) -> str:
        parts = []
        for stage in self.execution_order:
            taps = " + ".join(f"{pattern.name}({source})"
                              for source, pattern in stage.taps)
            parts.append(f"{stage.name} = {taps}")
        return f"{self.name}: " + "; ".join(parts) + f" -> {self.output}"

    def lint(self, *, grid_shape: Optional[Tuple[int, ...]] = None,
             boundary: str = "dirichlet", devices: int = 1,
             spec: Any = None) -> Any:
        """Static diagnostics for this program: fusion blockers and
        topology hygiene, reported as a
        :class:`~repro.lint.DiagnosticReport` without running anything.

        ``grid_shape``/``boundary``/``devices``/``spec`` feed the modelled
        cost of the halo exchanges a mixed-radius fusion break would force
        (SP102 details); without them the break is still reported, just
        unpriced.
        """
        from repro.lint.domain import lint_program

        return lint_program(self, grid_shape=grid_shape, boundary=boundary,
                            devices=devices, spec=spec)

    @classmethod
    def chain(cls, name: str,
              stages: Sequence[Union[ProgramStage,
                                     Tuple[str, StencilPattern]]],
              ) -> "StencilProgram":
        """Build a linear pipeline from ``(stage_name, pattern)`` pairs:
        each stage reads the previous one (the first reads ``"state"``)."""
        built: List[ProgramStage] = []
        previous = STATE
        for entry in stages:
            if isinstance(entry, ProgramStage):
                built.append(entry)
                previous = entry.name
                continue
            stage_name, pattern = entry
            built.append(ProgramStage.kernel(stage_name, pattern,
                                             source=previous))
            previous = stage_name
        return cls(name=name, stages=tuple(built))


def run_program_reference(program: StencilProgram, grid: Grid,
                          steps: int) -> np.ndarray:
    """Golden float64 reference for ``steps`` program steps.

    Implements the execution contract in the module docstring with the
    :func:`~repro.stencils.reference.apply_stencil_reference` oracle: per
    stage, each tap's input is copied, halo-filled at the tap radius and
    swept; tap results are summed in declaration order on the stage-radius
    interior; the stage tensor inherits its first tap's halo ring and is
    halo-filled at the stage radius.  The output stage's tensor becomes the
    next step's state.
    """
    require_positive_int(steps, "steps")
    require(grid.ndim == program.ndim,
            f"grid ndim {grid.ndim} does not match program ndim "
            f"{program.ndim}")
    boundary = grid.boundary
    shape = grid.shape
    state = np.array(grid.data, dtype=np.float64, copy=True)
    for _ in range(steps):
        tensors: Dict[str, np.ndarray] = {STATE: state}
        for stage in program.execution_order:
            stage_radius = stage.radius
            interior = tuple(slice(stage_radius, s - stage_radius)
                             for s in shape)
            acc = None
            for source, pattern in stage.taps:
                data = tensors[source].copy()
                if pattern.radius > 0:
                    apply_boundary(data, pattern.radius, boundary)
                valid = apply_stencil_reference(pattern, data)
                trim = stage_radius - pattern.radius
                if trim:
                    valid = valid[tuple(slice(trim, s - trim)
                                        for s in valid.shape)]
                acc = valid if acc is None else acc + valid
            out = tensors[stage.taps[0][0]].copy()
            out[interior] = acc
            if stage_radius > 0:
                apply_boundary(out, stage_radius, boundary)
            tensors[stage.name] = out
        state = tensors[program.output]
    return state

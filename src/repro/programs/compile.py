"""Compiling a :class:`~repro.programs.program.StencilProgram`.

Each stage tap becomes one canonical
:class:`~repro.service.fingerprint.CompileRequest` at the full grid shape,
resolved through a :class:`~repro.service.cache.CompileCache` — so a
program with N distinct kernels compiles N plans once and re-solving a warm
program is pure cache hits (per-stage attribution is recorded in the global
:class:`~repro.obs.metrics.MetricsRegistry`, section
``program_stage_cache``).

The per-stage fingerprints are folded into one *program fingerprint* under
the ``sparstencil-program-v1`` payload together with the DAG wiring
(execution-order source indices and the output index).  Stage *names* are
deliberately excluded — renaming a stage changes no computation — but
rewiring the same stages (``A -> B`` vs ``B -> A``) moves stage
fingerprints to different wiring positions and yields a different program
fingerprint.

Cross-stage fusion planning lives here too: for chain programs,
:class:`FusionPlan` groups maximal runs of consecutive equal-radius stages;
a group of ``m`` radius-``r`` stages executes under one halo exchange using
the deep-halo machinery (ghost width ``r + (m-1)*step``), so the executors
exchange once per group instead of once per stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.programs.program import STATE, ProgramStage, StencilProgram
from repro.service.fingerprint import CompileRequest, _digest
from repro.stencils.boundary import normalize_boundary
from repro.stencils.grid import Grid
from repro.util.validation import require

__all__ = [
    "CompiledStage",
    "FusionPlan",
    "ProgramPlan",
    "compile_program",
    "plan_fusion",
    "program_fingerprint",
]


def program_fingerprint(program: StencilProgram,
                        stage_requests: Dict[str, Tuple[CompileRequest, ...]]
                        ) -> str:
    """Fold per-tap compile fingerprints and the DAG wiring into one digest.

    The payload walks stages in execution order; each contributes its taps'
    wiring positions (``-1`` for ``"state"``, else the source stage's
    execution index) and compile fingerprints.  Together with the output
    index this pins the whole computation — grid shape, dtype, backend and
    boundary already live inside the per-tap fingerprints.
    """
    order = program.execution_order
    position = {stage.name: index for index, stage in enumerate(order)}
    stages_payload = []
    for stage in order:
        sources = tuple(-1 if source == STATE else position[source]
                        for source in stage.sources)
        fingerprints = tuple(request.fingerprint
                             for request in stage_requests[stage.name])
        stages_payload.append((sources, fingerprints))
    payload = (
        "sparstencil-program-v1",
        tuple(stages_payload),
        position[program.output],
    )
    return _digest(payload)


@dataclass(frozen=True)
class FusionPlan:
    """The cross-stage fusion decision for one program.

    ``groups`` partitions the execution order (stage names) into runs that
    can share one halo exchange: only chain programs fuse, and only
    consecutive stages of equal radius join a group (the deep-halo window
    shrink consumes one *radius* of ghost per sweep, so mixed radii would
    desynchronise the shrink geometry).  Executors clamp group length to
    what the partition geometry supports via :meth:`bounded`.
    """

    groups: Tuple[Tuple[str, ...], ...]
    fusable: bool
    reason: str

    @property
    def max_span(self) -> int:
        return max(len(group) for group in self.groups)

    @property
    def fused(self) -> bool:
        """Whether any group actually merges more than one stage."""
        return self.max_span > 1

    def bounded(self, max_span: int) -> Tuple[Tuple[str, ...], ...]:
        """The groups re-chunked so no group exceeds ``max_span`` stages."""
        require(max_span >= 1, f"max_span must be >= 1, got {max_span}")
        out: List[Tuple[str, ...]] = []
        for group in self.groups:
            for start in range(0, len(group), max_span):
                out.append(tuple(group[start:start + max_span]))
        return tuple(out)


def plan_fusion(program: StencilProgram) -> FusionPlan:
    """Group consecutive equal-radius chain stages under one exchange."""
    order = program.execution_order
    singleton = tuple((stage.name,) for stage in order)
    if not program.is_chain:
        return FusionPlan(groups=singleton, fusable=False,
                          reason="only single-tap chain programs fuse "
                                 "across stages")
    groups: List[Tuple[str, ...]] = []
    run: List[str] = []
    run_radius = None
    for stage in order:
        if run and stage.radius == run_radius:
            run.append(stage.name)
            continue
        if run:
            groups.append(tuple(run))
        run = [stage.name]
        run_radius = stage.radius
    groups.append(tuple(run))
    fused = any(len(group) > 1 for group in groups)
    reason = "consecutive equal-radius stages share one exchange" if fused \
        else "no consecutive stages share a radius"
    return FusionPlan(groups=tuple(groups), fusable=True, reason=reason)


@dataclass(frozen=True)
class CompiledStage:
    """One stage's compiled kernels (one plan per tap, execution-aligned)."""

    stage: ProgramStage
    requests: Tuple[CompileRequest, ...]
    compiled: Tuple[Any, ...]            # CompiledStencil per tap
    events: Tuple[Tuple[str, ...], ...]  # cache events per tap

    @property
    def name(self) -> str:
        return self.stage.name

    @property
    def radius(self) -> int:
        return self.stage.radius

    @property
    def fingerprints(self) -> Tuple[str, ...]:
        return tuple(request.fingerprint for request in self.requests)

    @property
    def sweep_seconds(self) -> float:
        """Modelled full-grid seconds of one pass of this stage (all taps)."""
        return sum(plan.plan.estimate.t_total for plan in self.compiled)


@dataclass(frozen=True)
class ProgramPlan:
    """A fully compiled program: per-stage plans plus the fusion decision.

    ``stages`` follows :attr:`StencilProgram.execution_order`.  The
    ``fingerprint`` is the program fingerprint (see
    :func:`program_fingerprint`); per-stage fingerprints are reachable via
    :attr:`stage_fingerprints` and recorded into
    :class:`~repro.session.problem.Provenance` by the session layer.
    """

    program: StencilProgram
    grid_shape: Tuple[int, ...]
    boundary: str
    stages: Tuple[CompiledStage, ...]
    fingerprint: str
    fusion: FusionPlan
    compile_seconds: float = 0.0

    @property
    def backend(self) -> str:
        return self.stages[0].compiled[0].backend

    @property
    def engine(self) -> str:
        engines = {plan.engine for stage in self.stages
                   for plan in stage.compiled}
        return next(iter(engines)) if len(engines) == 1 \
            else "+".join(sorted(engines))

    @property
    def dtype(self):
        return self.stages[0].compiled[0].plan.dtype

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def uniform_radius(self) -> bool:
        return len({stage.radius for stage in self.stages}) == 1

    @property
    def radius(self) -> int:
        return max(stage.radius for stage in self.stages)

    @property
    def stage_fingerprints(self) -> Dict[str, Tuple[str, ...]]:
        return {stage.name: stage.fingerprints for stage in self.stages}

    @property
    def single_step_seconds(self) -> float:
        """Modelled single-device seconds of one program step."""
        return sum(stage.sweep_seconds for stage in self.stages)

    def stage_by_name(self, name: str) -> CompiledStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        require(False, f"program plan has no stage {name!r}")


def compile_program(program: StencilProgram, grid: Grid, cache=None,
                    options: Optional[Dict[str, Any]] = None,
                    ) -> ProgramPlan:
    """Compile every stage of ``program`` for ``grid`` through ``cache``.

    ``options`` takes the :func:`repro.compile_stencil` keyword arguments
    shared by all stages (dtype, spec, engine, backend, ...); the grid's
    boundary condition is folded in exactly like
    :meth:`repro.session.Problem.compile_request` does, and
    ``temporal_fusion`` is rejected — a program already expresses its
    multi-sweep structure as stages.

    Per-tap cache events (``"hit"`` / ``"disk"`` / ``"compile"``) are
    recorded under the stage's name in the global metrics registry's
    ``program_stage_cache`` section, so a warm re-solve is visibly all
    stage hits.
    """
    from repro.programs.metrics import stage_cache_attribution
    from repro.service.cache import CompileCache

    require(isinstance(program, StencilProgram),
            f"program must be a StencilProgram, "
            f"got {type(program).__name__}")
    require(grid.ndim == program.ndim,
            f"grid ndim {grid.ndim} does not match program ndim "
            f"{program.ndim}")
    options = dict(options or {})
    fusion_option = options.pop("temporal_fusion", 1)
    require(fusion_option in (None, 1),
            "temporal_fusion does not apply to programs — stages already "
            "express the per-step pipeline")
    grid_boundary = normalize_boundary(getattr(grid, "boundary", None))
    boundary = normalize_boundary(options.setdefault("boundary",
                                                     grid_boundary))
    require(boundary == grid_boundary,
            f"options boundary {boundary!r} conflicts with the grid's "
            f"boundary {grid_boundary!r}")
    if cache is None:
        taps = sum(len(stage.taps) for stage in program.stages)
        cache = CompileCache(capacity=max(8, 2 * taps))

    attribution = stage_cache_attribution()
    start = time.perf_counter()
    stage_requests: Dict[str, Tuple[CompileRequest, ...]] = {}
    compiled_stages: List[CompiledStage] = []
    for stage in program.execution_order:
        requests = tuple(
            CompileRequest.build(pattern, tuple(grid.shape), **options)
            for _, pattern in stage.taps)
        stage_requests[stage.name] = requests
        plans = []
        tap_events: List[Tuple[str, ...]] = []
        for request in requests:
            events: List[str] = []
            plans.append(cache.get_or_compile(request, events=events))
            tap_events.append(tuple(events))
        attribution.record(program.name, stage.name,
                           [event for events in tap_events
                            for event in events])
        compiled_stages.append(CompiledStage(
            stage=stage, requests=requests, compiled=tuple(plans),
            events=tuple(tap_events)))
    compile_seconds = time.perf_counter() - start

    return ProgramPlan(
        program=program,
        grid_shape=tuple(grid.shape),
        boundary=boundary,
        stages=tuple(compiled_stages),
        fingerprint=program_fingerprint(program, stage_requests),
        fusion=plan_fusion(program),
        compile_seconds=compile_seconds,
    )

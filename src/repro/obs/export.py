"""Span exporters: JSONL (one span dict per line) and the Chrome trace-event
JSON format loadable in Perfetto / ``chrome://tracing``.

Chrome events use the *complete* phase (``"ph": "X"``) with microsecond
``ts``/``dur`` relative to the tracer epoch.  Thread names are mapped to
stable integer ``tid``\\s and announced through ``"M"`` (metadata) events, so
the timeline groups spans by the thread that produced them — queue waits on
the submitting thread, sweeps on the dispatch worker.  Span identity
(``trace_id``/``span_id``/``parent_id``), attributes and the modelled device
seconds travel in ``args``, which Perfetto shows in the selection panel.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
]

PathLike = Union[str, Path]


def _json_safe(value: Any) -> Any:
    """Coerce attr values to something ``json.dump`` accepts verbatim."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace_events(spans: Iterable["Span"],
                        tracer: Optional["Tracer"] = None) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for ``spans``.

    Returns the ``{"traceEvents": [...]}`` object form (not the bare array)
    so extra top-level keys — time unit, tracer epoch — survive the round
    trip through Perfetto.
    """
    spans = list(spans)
    pid = tracer.pid if tracer is not None else 1
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": "repro"},
    }]
    tids: Dict[str, int] = {}
    for span in spans:
        if span.thread not in tids:
            tids[span.thread] = len(tids) + 1
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[span.thread],
                "args": {"name": span.thread},
            })
    for span in spans:
        end = span.end_seconds if span.end_seconds is not None \
            else span.start_seconds
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.device_seconds:
            args["device_seconds"] = span.device_seconds
        for key, value in span.attrs.items():
            args[key] = _json_safe(value)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.start_seconds * 1e6,
            "dur": max(0.0, end - span.start_seconds) * 1e6,
            "pid": pid,
            "tid": tids[span.thread],
            "args": args,
        })
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if tracer is not None:
        payload["otherData"] = {
            "epoch_unix_seconds": tracer.epoch_unix,
            "dropped_spans": tracer.dropped,
        }
    return payload


def write_chrome_trace(path: PathLike, spans: Iterable["Span"],
                       tracer: Optional["Tracer"] = None) -> Path:
    """Write ``spans`` as a Chrome trace-event JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(chrome_trace_events(spans, tracer=tracer), handle)
    return path


def write_jsonl(path: PathLike, spans: Iterable["Span"]) -> Path:
    """Write one ``Span.as_dict()`` JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            record = span.as_dict()
            record["attrs"] = _json_safe(record["attrs"])
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load a JSONL span file back into a list of span dicts."""
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records

"""Unified metrics: counters, gauges, rolling histograms and a process-wide
registry every subsystem re-registers into.

Before this module existed the repo had five disjoint stats objects
(``ServerTelemetry``, ``CacheStats``, ``OccupancyLedger.snapshot``,
``ShardedRunResult`` timing fields, ``util/timing.py``); an operator had to
know which layer owned which number.  :class:`MetricsRegistry` gives them one
roof: primitives created through the registry are exported by
:meth:`MetricsRegistry.snapshot`, and existing stats objects register a
zero-arg *provider* callback (held via weakref so a dead server or cache
prunes itself) whose dict is embedded in the same snapshot.

:class:`RollingLatency` is the canonical rolling-percentile window — the
serving telemetry and the occupancy ledger both build on it.  Percentiles use
linear interpolation between closest ranks, which fixes the 1–2 sample edge
cases the old nearest-rank rule got wrong (the median of ``[1, 3]`` is now
``2.0``, not ``1.0``) while agreeing with it on large windows.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.util.validation import require, require_positive_int

__all__ = [
    "RollingLatency",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

#: Default log-spaced bucket bounds (seconds) for latency histograms: 1 µs up
#: to 100 s in decade steps — wide enough for both warm cache hits (~1 µs)
#: and cold sharded compiles (~100 ms).
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 3))


class RollingLatency:
    """Bounded rolling window of latency samples with on-demand percentiles."""

    def __init__(self, window: int = 2048) -> None:
        require_positive_int(window, "window")
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        require(seconds >= 0.0, "latency must be non-negative")
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    def reset(self) -> None:
        """Drop the window *and* the lifetime counters.

        After a reset every statistic — count, means, percentiles, max —
        reads as if freshly constructed; ``as_dict`` returns all zeros until
        the next :meth:`record`.
        """
        self._samples.clear()
        self._count = 0
        self._total = 0.0

    def percentile(self, p: float) -> float:
        """Interpolated percentile over the current window (0 when empty).

        Linear interpolation between closest ranks: a single sample answers
        every percentile, two samples give their midpoint at p50, and large
        windows agree with the nearest-rank rule this replaced.
        """
        require(0.0 < p <= 100.0, "percentile must be in (0, 100]")
        samples = self._samples
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        ordered = sorted(samples)
        position = (p / 100.0) * (len(ordered) - 1)
        lower = math.floor(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    @property
    def count(self) -> int:
        """Lifetime sample count (including samples the window dropped)."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over the current *window*, consistent with the percentiles."""
        samples = self._samples
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def lifetime_mean(self) -> float:
        """Mean over every sample ever recorded (windowless)."""
        return self._total / self._count if self._count else 0.0

    def histogram_buckets(
            self, bounds: Optional[Sequence[float]] = None
    ) -> List[Tuple[float, int]]:
        """Cumulative (Prometheus-style) bucket counts over the window.

        Returns ``(upper_bound, samples_le_bound)`` pairs, always ending with
        an ``(inf, window_size)`` catch-all, so the last count equals the
        number of samples currently in the window.
        """
        if bounds is None:
            bounds = DEFAULT_BUCKET_BOUNDS
        else:
            bounds = tuple(sorted(float(b) for b in bounds))
            require(all(b > 0 for b in bounds),
                    "histogram bounds must be positive")
        ordered = sorted(self._samples)
        buckets: List[Tuple[float, int]] = []
        index = 0
        for bound in bounds:
            while index < len(ordered) and ordered[index] <= bound:
                index += 1
            buckets.append((bound, index))
        buckets.append((math.inf, len(ordered)))
        return buckets

    def as_dict(self) -> Dict[str, float]:
        """Window-consistent export: ``mean``/``max``/percentiles all
        describe the same rolling window, so a long-lived server's mean is
        not dominated by ancient samples the window already dropped.
        ``count`` stays lifetime (it is the only field that *should* keep
        growing) and the lifetime mean is exported separately.
        """
        samples = self._samples
        return {
            "count": self._count,
            "window_size": len(samples),
            "mean_seconds": self.mean,
            "lifetime_mean_seconds": self.lifetime_mean,
            "p50_seconds": self.percentile(50.0),
            "p95_seconds": self.percentile(95.0),
            "p99_seconds": self.percentile(99.0),
            "max_seconds": max(samples) if samples else 0.0,
        }


class Counter:
    """Monotonically increasing counter."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        require(amount >= 0, "counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, devices in use)."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Rolling-window distribution with the :class:`RollingLatency`
    percentile semantics plus cumulative buckets."""

    def __init__(self, name: str, description: str = "",
                 window: int = 2048,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._rolling = RollingLatency(window)
        self._bounds = bounds

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._rolling.record(seconds)

    def percentile(self, p: float) -> float:
        with self._lock:
            return self._rolling.percentile(p)

    @property
    def count(self) -> int:
        with self._lock:
            return self._rolling.count

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            stats: Dict[str, Any] = self._rolling.as_dict()
            stats["buckets"] = [
                {"le": bound, "count": count}
                for bound, count in self._rolling.histogram_buckets(
                    self._bounds)
            ]
        return stats


#: A provider is a zero-arg callable returning a JSON-serialisable dict.
Provider = Callable[[], Dict[str, Any]]


class MetricsRegistry:
    """Process-wide metric namespace: primitives plus provider callbacks.

    ``counter``/``gauge``/``histogram`` get-or-create named primitives.
    :meth:`register_provider` attaches an existing stats object's zero-arg
    export (``ServerTelemetry.snapshot``, ``OccupancyLedger.snapshot``,
    ``CompileCache.metrics_snapshot``) under a section name; bound methods
    are held through :class:`weakref.WeakMethod`, so garbage-collected
    owners silently drop out of the snapshot instead of keeping a dead
    server alive.  One :meth:`snapshot` returns the whole system.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Any] = {}  # name -> WeakMethod | callable

    # -- primitives ---------------------------------------------------------

    def counter(self, name: str, description: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, description)
            return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, description)
            return self._gauges[name]

    def histogram(self, name: str, description: str = "",
                  window: int = 2048,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, description,
                                                   window=window,
                                                   bounds=bounds)
            return self._histograms[name]

    # -- providers ----------------------------------------------------------

    @staticmethod
    def _resolve(entry: Any) -> Optional[Provider]:
        if isinstance(entry, weakref.WeakMethod):
            return entry()
        return entry

    def register_provider(self, name: str, provider: Provider,
                          *, weak: bool = True) -> str:
        """Attach a snapshot section; returns the actual section name.

        A live name collision gets a numeric suffix (``cache``, ``cache-2``,
        …) so several instances of the same subsystem can coexist; dead
        (garbage-collected) entries are reclaimed in place.
        """
        entry: Any = provider
        if weak:
            try:
                entry = weakref.WeakMethod(provider)
            except TypeError:
                entry = provider  # plain function/lambda: hold strongly
        with self._lock:
            self._prune_locked()
            actual = name
            suffix = 2
            while actual in self._providers:
                actual = f"{name}-{suffix}"
                suffix += 1
            self._providers[actual] = entry
            return actual

    def unregister_provider(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    def _prune_locked(self) -> None:
        dead = [name for name, entry in self._providers.items()
                if self._resolve(entry) is None]
        for name in dead:
            del self._providers[name]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One plain-dict export of every primitive and provider section."""
        with self._lock:
            self._prune_locked()
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            providers = dict(self._providers)
        out: Dict[str, Any] = {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.as_dict()
                           for name, h in histograms.items()},
        }
        for name, entry in providers.items():
            fn = self._resolve(entry)
            if fn is None:
                continue
            try:
                out[name] = fn()
            except Exception as exc:  # lint: allow-broad-except — a broken provider must not kill export
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._providers.clear()


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem auto-registers into."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests); returns the new one."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = MetricsRegistry()
        return _GLOBAL

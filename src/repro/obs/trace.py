"""Structured tracing: spans, a context-propagating :class:`Tracer`, and a
zero-overhead no-op path when tracing is disabled.

A *span* is one named interval of work with a ``trace_id`` (the request it
belongs to), a ``span_id``, an optional ``parent_id``, free-form attributes,
host wall start/end times and — because the execution backend is a simulated
accelerator — the *modelled device seconds* billed inside the interval.  The
two clocks are deliberately separate: host wall time measures what this
process spent (compiles, queue waits, Python overhead) while device seconds
are what the roofline model says the hardware would spend.

Context propagation uses a :class:`contextvars.ContextVar`, so ``async`` code
and plain nested ``with`` blocks both inherit the correct parent.  Thread
pools do **not** inherit context automatically; code that hops threads (the
server's dispatch worker) re-binds the request span explicitly with
:meth:`Tracer.activate`.

Two entry points create spans:

* ``tracer.span("name", **attrs)`` — explicit handle, used by the layers that
  own a tracer (session, server).
* ``repro.obs.trace.span("name", **attrs)`` — *ambient* helper for deep
  layers (compile cache, engines) that should join whatever trace is active
  without threading a tracer through their signatures.  When no trace is
  active it returns a shared no-op context manager and costs one
  ``ContextVar.get`` plus one attribute check.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_span",
    "span",
]

_span_counter = itertools.count(1)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return f"{next(_span_counter):x}-{uuid.uuid4().hex[:8]}"


class Span:
    """One named interval of work inside a trace.

    ``start_seconds``/``end_seconds`` are relative to the owning tracer's
    epoch (a ``perf_counter`` captured at tracer construction), which keeps
    them monotonic, subtraction-safe and small.  ``device_seconds``
    accumulates the modelled accelerator time billed inside the span.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_seconds",
        "end_seconds",
        "device_seconds",
        "thread",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_seconds: float,
        tracer: "Optional[Tracer]" = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_seconds = start_seconds
        self.end_seconds: Optional[float] = None
        self.device_seconds = 0.0
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.thread = threading.current_thread().name
        self._tracer = tracer

    # -- mutation -----------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on an open (or finished) span."""
        self.attrs.update(attrs)
        return self

    def add_device_seconds(self, seconds: float) -> "Span":
        self.device_seconds += float(seconds)
        return self

    # -- views --------------------------------------------------------------

    @property
    def tracer(self) -> "Optional[Tracer]":
        return self._tracer

    @property
    def finished(self) -> bool:
        return self.end_seconds is not None

    def duration_seconds(self) -> float:
        if self.end_seconds is None:
            return 0.0
        return max(0.0, self.end_seconds - self.start_seconds)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "duration_seconds": self.duration_seconds(),
            "device_seconds": self.device_seconds,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id[:8]}, "
                f"span={self.span_id}, parent={self.parent_id}, "
                f"dur={self.duration_seconds() * 1e3:.3f}ms)")


class _NoopSpan:
    """Inert stand-in returned wherever tracing is disabled.

    Supports the full mutation surface of :class:`Span` as no-ops so call
    sites never branch on whether tracing is on.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    device_seconds = 0.0
    start_seconds = 0.0
    end_seconds = 0.0
    finished = True
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def add_device_seconds(self, seconds: float) -> "_NoopSpan":
        return self

    def duration_seconds(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class _NoopSpanContext:
    """Shared, allocation-free context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()

#: The active span for the current thread/context.  ``None`` means "no trace
#: in flight here" and is the fast path everywhere.
_ACTIVE: ContextVar[Optional[Span]] = ContextVar("repro_obs_active_span",
                                                default=None)


def current_span() -> Optional[Span]:
    """The span active in the calling context, or ``None``."""
    return _ACTIVE.get()


def span(name: str, **attrs: Any):
    """Ambient span helper: open a child of the active span, if any.

    Deep layers (compile cache, engines) call this instead of carrying a
    tracer.  With no active trace — the common, untraced case — it returns a
    shared no-op context manager without allocating.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NOOP_CONTEXT
    tracer = parent.tracer
    if tracer is None or not tracer.enabled:
        return _NOOP_CONTEXT
    return tracer.span(name, parent=parent, **attrs)


class Tracer:
    """Collects finished spans for later export.

    One tracer usually serves one :class:`~repro.session.StencilSession`
    (plus the server it spawns).  The instance is thread-safe: spans may be
    begun/finished from any thread; the finished-span buffer is guarded by a
    lock and bounded by ``max_spans`` (oldest spans are dropped and counted
    in :attr:`dropped` once the buffer is full — a tracing buffer must never
    become the memory leak it was meant to find).

    ``enabled=False`` (or :data:`NULL_TRACER`) turns every call into a
    constant-time no-op that allocates nothing.
    """

    def __init__(self, *, enabled: bool = True, max_spans: int = 100_000) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        # Pair the perf_counter epoch with a unix timestamp so exporters can
        # place relative span times on an absolute clock.
        self.epoch_perf = time.perf_counter()
        self.epoch_unix = time.time()
        self.pid = os.getpid()

    # -- clock --------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self.epoch_perf

    def to_epoch(self, perf_counter_value: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to epoch-relative."""
        return perf_counter_value - self.epoch_perf

    # -- span lifecycle -----------------------------------------------------

    def begin(self, name: str, *, parent: Optional[Span] = None,
              trace_id: Optional[str] = None, **attrs: Any) -> Span:
        """Open a span without activating it (explicit handle management).

        ``parent`` defaults to the ambient active span; pass ``trace_id`` to
        force a fresh root into an existing trace (used when adopting server
        requests whose submitting context carried no span).
        """
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        if parent is None:
            parent = _ACTIVE.get()
            if parent is not None and parent.tracer is not self:
                parent = None  # never parent across tracers
        if parent is not None and isinstance(parent, _NoopSpan):
            parent = None
        tid = trace_id or (parent.trace_id if parent is not None
                           else _new_trace_id())
        return Span(
            name,
            trace_id=tid,
            span_id=_new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_seconds=self.now(),
            tracer=self,
            attrs=attrs,
        )

    def end(self, span_: Span) -> Span:
        """Finish a span begun with :meth:`begin` and buffer it.

        Idempotent: a span that already finished (and was buffered) is left
        untouched, so racing resolution paths (e.g. a server request settled
        once with a result and once with a late error) cannot duplicate it.
        """
        if not self.enabled or isinstance(span_, _NoopSpan):
            return span_
        if span_.end_seconds is not None:
            return span_
        span_.end_seconds = self.now()
        self._append(span_)
        return span_

    @contextmanager
    def _span_context(self, span_: Span) -> Iterator[Span]:
        token = _ACTIVE.set(span_)
        try:
            yield span_
        finally:
            _ACTIVE.reset(token)
            self.end(span_)

    def span(self, name: str, *, parent: Optional[Span] = None, **attrs: Any):
        """``with tracer.span("compile", fingerprint=fp) as sp:`` — open a
        span, activate it for the duration of the block, finish it on exit."""
        if not self.enabled:
            return _NOOP_CONTEXT
        return self._span_context(self.begin(name, parent=parent, **attrs))

    @contextmanager
    def _activate_context(self, span_: Span) -> Iterator[Span]:
        token = _ACTIVE.set(span_)
        try:
            yield span_
        finally:
            _ACTIVE.reset(token)

    def activate(self, span_: Optional[Span]):
        """Bind an *already-open* span as the active context without ending
        it on exit.  Used when a request span crosses threads (server
        dispatch workers re-bind the span the submitter opened)."""
        if not self.enabled or span_ is None or isinstance(span_, _NoopSpan):
            return _NOOP_CONTEXT
        return self._activate_context(span_)

    def record(self, name: str, start: float, end: float, *,
               parent: Optional[Span] = None, device_seconds: float = 0.0,
               **attrs: Any) -> Span:
        """Retroactively record an interval measured with raw
        ``time.perf_counter()`` readings (queue waits, sweep launches).

        ``start``/``end`` are absolute ``perf_counter`` values; they are
        rebased onto the tracer epoch.
        """
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        span_ = self.begin(name, parent=parent, **attrs)
        span_.start_seconds = self.to_epoch(start)
        span_.end_seconds = self.to_epoch(max(start, end))
        span_.device_seconds = float(device_seconds)
        self._append(span_)
        return span_

    # -- buffer -------------------------------------------------------------

    def _append(self, span_: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                overflow = len(self._finished) - self.max_spans + 1
                del self._finished[:overflow]
                self.dropped += overflow
            self._finished.append(span_)

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first; optionally filtered to one trace."""
        with self._lock:
            snapshot = list(self._finished)
        if trace_id is None:
            return snapshot
        return [s for s in snapshot if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in buffer order of first appearance."""
        seen: Dict[str, None] = {}
        for s in self.spans():
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    # -- convenience export hooks ------------------------------------------

    def export_jsonl(self, path, trace_id: Optional[str] = None):
        from repro.obs.export import write_jsonl
        return write_jsonl(path, self.spans(trace_id))

    def export_chrome(self, path, trace_id: Optional[str] = None):
        from repro.obs.export import write_chrome_trace
        return write_chrome_trace(path, self.spans(trace_id), tracer=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, spans={len(self._finished)})"


#: Shared disabled tracer — the default everywhere tracing is optional.
NULL_TRACER = Tracer(enabled=False)

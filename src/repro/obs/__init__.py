"""Observability substrate: structured tracing and unified metrics.

``repro.obs`` replaces the repo's patchwork of ad-hoc ``perf_counter``
timers with two first-class primitives:

* :class:`~repro.obs.trace.Tracer` — structured spans
  (``trace_id``/``span_id``/``parent_id``, attrs, host wall time *and*
  modelled device seconds) with context propagation and a zero-overhead
  no-op path when disabled.  Exportable as JSONL or Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``).
* :class:`~repro.obs.metrics.MetricsRegistry` — process-wide counters,
  gauges and rolling-percentile histograms that the serving telemetry,
  compile cache and occupancy ledger re-register into, so one
  ``snapshot()`` covers the whole system.

The ROADMAP's autotuning (measured sweep times to calibrate the perf model)
and async-serving (per-tenant latency attribution) items consume this
substrate.
"""

from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingLatency,
    global_registry,
    reset_global_registry,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, current_span, span

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "current_span",
    "span",
    "RollingLatency",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
]

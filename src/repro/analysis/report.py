"""Render a consolidated markdown report from the benchmark results.

The benchmark harness writes each figure/table's rows to
``benchmarks/results/*.json``.  This module turns whatever subset of those
files exists into one human-readable markdown report — handy for comparing a
fresh run against EXPERIMENTS.md without re-reading nine JSON files.

Usage::

    from repro.analysis.report import write_report
    write_report("benchmarks/results", "benchmarks/results/REPORT.md")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["render_markdown_report", "write_report"]


def _load(results_dir: Path, name: str) -> Optional[dict]:
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    with path.open() as handle:
        payload = json.load(handle)
    # benchmarks/_emit.py wraps rows in a {timestamp, config, metrics}
    # envelope; older result files are the bare rows — accept both
    if isinstance(payload, dict) and "metrics" in payload \
            and "timestamp" in payload:
        return payload["metrics"]
    return payload


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return lines


def _section_fig6(data: dict) -> List[str]:
    lines = ["## Figure 6 — comparison with state-of-the-art", ""]
    summary = data.get("summary", {})
    rows = [[baseline,
             f"{stats['geomean_speedup']:.2f}x",
             f"{stats['max_speedup']:.2f}x",
             f"{stats['min_speedup']:.2f}x"]
            for baseline, stats in sorted(summary.items())]
    lines += _table(["SparStencil speedup vs", "geomean", "max", "min"], rows)
    return lines + [""]


def _section_fig7(data: dict) -> List[str]:
    lines = ["## Figure 7 — stage breakdown (Box-2D49P, speedup over CUDA)", ""]
    sizes = sorted(data, key=lambda s: int(s))
    stages = list(data[sizes[0]].keys())
    rows = [[size] + [f"{data[size][stage]:.2f}x" for stage in stages]
            for size in sizes]
    lines += _table(["size"] + stages, rows)
    return lines + [""]


def _section_fig10(data: dict) -> List[str]:
    lines = ["## Figure 10 — 79-kernel catalog", ""]
    summary = data.get("summary", {})
    rows = [[key, f"{value:.2f}" if isinstance(value, float) else str(value)]
            for key, value in summary.items()]
    lines += _table(["quantity", "value"], rows)
    return lines + [""]


def _section_fig11(data: dict) -> List[str]:
    lines = ["## Figure 11 — hardware utilisation (percent)", ""]
    methods = list(data.keys())
    metrics = list(next(iter(data.values())).keys())
    rows = [[metric] + [f"{data[m][metric]:.1f}" for m in methods]
            for metric in metrics]
    lines += _table(["metric"] + methods, rows)
    return lines + [""]


def _section_table3(data: dict) -> List[str]:
    lines = ["## Table 3 — FP64 on dense Tensor Cores (GFlops/s, simulated)", ""]
    kernels = list(data.keys())
    methods = list(next(iter(data.values())).keys())
    rows = [[method] + [f"{data[kernel][method]:.1f}" for kernel in kernels]
            for method in methods]
    lines += _table(["method"] + kernels, rows)
    return lines + [""]


def _section_service_cache(data: dict) -> List[str]:
    lines = ["## Service layer — compile cache and batched solves", ""]
    latency = data.get("compile_latency", {})
    if latency:
        rows = [[kernel,
                 f"{entry['cold_seconds'] * 1e3:.2f} ms",
                 f"{entry['warm_seconds'] * 1e6:.2f} us",
                 f"{entry['speedup']:,.0f}x"]
                for kernel, entry in sorted(latency.items())]
        lines += _table(["kernel", "cold compile", "warm lookup", "speedup"],
                        rows)
        lines.append("")
    batch = data.get("batch_throughput")
    if batch:
        rows = [["requests (distinct plans)",
                 f"{batch['requests']} ({batch['distinct_plans']})"],
                ["sequential uncached",
                 f"{batch['sequential_uncached_seconds'] * 1e3:.1f} ms"],
                ["warm batched",
                 f"{batch['warm_batched_seconds'] * 1e3:.1f} ms"],
                ["speedup", f"{batch['speedup']:.1f}x"],
                ["aggregate throughput",
                 f"{batch['aggregate_gstencil_per_second']:.1f} GStencil/s"]]
        lines += _table(["quantity", "value"], rows)
    return lines + [""]


def _section_sharded_scaling(data: dict) -> List[str]:
    lines = ["## Sharded execution — modelled multi-device scaling", ""]
    for name, entry in data.items():
        grid = "x".join(str(s) for s in entry.get("grid_shape", []))
        lines.append(f"**{name}** ({grid}, {entry.get('iterations', '?')} "
                     f"iterations)")
        lines.append("")
        rows = [[point["devices"],
                 "x".join(str(c) for c in point["shard_grid"]),
                 f"{point['elapsed_seconds'] * 1e6:.1f} us",
                 f"{point['speedup']:.2f}x",
                 f"{point['efficiency']:.2f}",
                 f"{100 * point['halo_traffic_fraction']:.2f}%",
                 f"{point['load_balance']:.3f}"]
                for point in entry.get("points", [])]
        lines += _table(["devices", "shards", "modelled time", "speedup",
                         "efficiency", "halo traffic", "balance"], rows)
        lines.append("")
    return lines


def _ms(value: Optional[float]) -> str:
    """Seconds as milliseconds, degrading to ``?`` when absent."""
    if not isinstance(value, (int, float)):
        return "?"
    return f"{value * 1e3:.1f} ms"


def _section_server_load(data: dict) -> List[str]:
    lines = ["## Online serving — coalesced server vs sequential solves", ""]
    comparison = data.get("comparison")
    if comparison:
        speedup = comparison.get("speedup")
        rows = [["requests", comparison.get("requests", "?")],
                ["distinct fingerprints",
                 comparison.get("distinct_fingerprints", "?")],
                ["sequential one-at-a-time",
                 _ms(comparison.get("sequential_seconds"))],
                ["coalesced serving", _ms(comparison.get("server_seconds"))],
                ["throughput gain",
                 f"{speedup:.1f}x" if isinstance(speedup, (int, float))
                 else "?"]]
        lines += _table(["quantity", "value"], rows)
        lines.append("")
    telemetry = data.get("telemetry", {})
    coalescing = telemetry.get("coalescing", {})
    cache = telemetry.get("cache", {})
    latency = telemetry.get("latency", {}).get("total", {})
    if telemetry:
        rows = [["coalescing ratio (requests / plan dispatch)",
                 f"{coalescing.get('ratio', 0.0):.2f}"],
                ["cache hit rate", f"{cache.get('hit_rate', 0.0):.2%}"],
                ["p50 latency", f"{latency.get('p50_seconds', 0.0) * 1e3:.1f} ms"],
                ["p95 latency", f"{latency.get('p95_seconds', 0.0) * 1e3:.1f} ms"],
                ["p99 latency", f"{latency.get('p99_seconds', 0.0) * 1e3:.1f} ms"],
                ["peak queue depth",
                 telemetry.get("queue", {}).get("peak_depth", 0)],
                ["peak devices in use",
                 telemetry.get("devices", {}).get("peak_in_use", 0)]]
        lines += _table(["serving metric", "value"], rows)
    return lines + [""]


def _section_backend_comparison(data: dict) -> List[str]:
    lines = ["## Execution backends — host wall-clock per backend", ""]
    rows = []
    for name, entry in sorted(data.items()):
        if not isinstance(entry, dict) \
                or "tcu_sim_wall_seconds" not in entry:
            continue
        grid = "x".join(str(s) for s in entry.get("grid_shape", []))
        fast_key = next((k for k in entry
                         if k.endswith("_wall_seconds")
                         and k != "tcu_sim_wall_seconds"), None)
        rows.append([name, grid,
                     _ms(entry.get("tcu_sim_wall_seconds")),
                     _ms(entry.get(fast_key) if fast_key else None),
                     f"{entry.get('wall_clock_speedup', 0.0):.1f}x",
                     f"{entry.get('max_abs_drift', 0.0):.1e}"])
    lines += _table(["kernel", "grid", "tcu-sim", "fast backend",
                     "speedup", "max |drift|"], rows)
    return lines + [""]


def _section_obs_overhead(data: dict) -> List[str]:
    lines = ["## Observability — tracing overhead on a hot cached solve", ""]
    ratio = data.get("disabled_over_bypassed")
    enabled_ratio = data.get("enabled_over_disabled")
    rows = [["uninstrumented baseline (hooks bypassed)",
             _ms(data.get("bypassed_seconds"))],
            ["tracing disabled (shipped default)",
             _ms(data.get("disabled_seconds"))],
            ["tracing enabled (full span tree)",
             _ms(data.get("enabled_seconds"))],
            ["disabled / bypassed",
             f"{ratio:.3f}x" if isinstance(ratio, (int, float)) else "?"],
            ["enabled / disabled",
             f"{enabled_ratio:.3f}x"
             if isinstance(enabled_ratio, (int, float)) else "?"]]
    lines += _table(["quantity", "value"], rows)
    return lines + [""]


def _section_program_fusion(data: dict) -> List[str]:
    lines = ["## Stencil programs — cross-stage fusion exchange savings", ""]
    rows = []
    for name, entry in sorted(data.get("modelled", {}).items()):
        groups = entry.get("fused_groups", [])
        stage_count = sum(len(group) for group in groups)
        rows.append([name, stage_count,
                     entry.get("unfused_exchanges", "?"),
                     f"{entry.get('fused_exchanges', '?')} "
                     f"(depth {entry.get('halo_depth', '?')})",
                     f"{entry.get('exchange_reduction', 0.0):.0%}",
                     _ms(entry.get("exposed_seconds_saved"))])
    lines += _table(["program", "stages", "unfused exchanges",
                     "fused exchanges", "removed", "exposed comm saved"],
                    rows)
    executed = data.get("executed")
    if executed:
        lines += ["",
                  f"Executed check: fused {executed.get('fused_exchanges')} "
                  f"vs unfused {executed.get('unfused_exchanges')} exchanges, "
                  "bit-identical output "
                  f"({'yes' if executed.get('bit_identical') else 'NO'})."]
    return lines + [""]


def _section_lint(data: dict) -> List[str]:
    """Summarise a ``python -m repro.lint --json`` export: severity counts
    plus the per-code tally, with each code's worst finding as a sample."""
    lines = ["## Static analysis — repro.lint report", ""]
    counts = data.get("counts", {})
    lines.append(f"Checked `{', '.join(data.get('paths', []) or ['?'])}`: "
                 f"{counts.get('error', 0)} errors, "
                 f"{counts.get('warning', 0)} warnings, "
                 f"{counts.get('info', 0)} infos.")
    lines.append("")
    diagnostics = data.get("diagnostics", [])
    if diagnostics:
        by_code: Dict[str, List[dict]] = {}
        for diag in diagnostics:
            by_code.setdefault(diag.get("code", "?"), []).append(diag)
        rows = [[code, group[0].get("severity", "?"), len(group),
                 f"`{group[0].get('location', '?')}`: "
                 f"{group[0].get('message', '')}"]
                for code, group in sorted(by_code.items())]
        lines += _table(["code", "severity", "count", "first finding"], rows)
    else:
        lines.append("_Clean — no findings._")
    return lines + [""]


_SECTIONS = {
    "fig6_sota_comparison": _section_fig6,
    "fig7_breakdown": _section_fig7,
    "fig10_catalog": _section_fig10,
    "fig11_utilization": _section_fig11,
    "table3_fp64": _section_table3,
    "service_cache": _section_service_cache,
    "sharded_scaling": _section_sharded_scaling,
    "server_load": _section_server_load,
    "backend_comparison": _section_backend_comparison,
    "obs_overhead": _section_obs_overhead,
    "program_fusion": _section_program_fusion,
    "lint_report": _section_lint,
}


def render_markdown_report(results_dir: str | Path) -> str:
    """Render a markdown report from whatever results files are present.

    Missing files are skipped (their section simply does not appear), so the
    report can be produced after running any subset of the benchmarks.
    """
    results_dir = Path(results_dir)
    lines: List[str] = [
        "# SparStencil reproduction — benchmark report",
        "",
        "Generated from the JSON files in `benchmarks/results/`; see",
        "EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    rendered_any = False
    for name, renderer in _SECTIONS.items():
        data = _load(results_dir, name)
        if data is None:
            continue
        lines.extend(renderer(data))
        rendered_any = True
    if not rendered_any:
        lines.append("_No benchmark results found — run "
                     "`pytest benchmarks/ --benchmark-only` first._")
    return "\n".join(lines) + "\n"


def write_report(results_dir: str | Path, output_path: str | Path) -> Path:
    """Render the report and write it to ``output_path``."""
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(render_markdown_report(results_dir))
    return output_path

"""Throughput metrics and method comparison (the Figure 6 / Figure 10 core).

``GStencil/s`` follows Eq. 12 of the paper: stencil points updated per second
in billions.  ``compute density`` is useful FLOPs per byte of device memory
traffic, the quantity the bottom half of Figure 10 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import Baseline, BaselineResult
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import stencil_points_updated
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec
from repro.util.validation import require, require_positive_int

__all__ = [
    "gstencil_per_second",
    "gflops_per_second",
    "compute_density",
    "speedup",
    "geometric_mean",
    "MethodComparison",
    "compare_methods",
]


def gstencil_per_second(pattern: StencilPattern, grid_shape, iterations: int,
                        elapsed_seconds: float) -> float:
    """Eq. 12: ``T * prod(N_i) / (t * 1e9)``."""
    require(elapsed_seconds > 0.0, "elapsed_seconds must be positive")
    points = stencil_points_updated(pattern, grid_shape, iterations)
    return points / elapsed_seconds / 1e9


def gflops_per_second(pattern: StencilPattern, grid_shape, iterations: int,
                      elapsed_seconds: float) -> float:
    """Useful floating-point throughput of the direct method (Table 3 metric)."""
    require(elapsed_seconds > 0.0, "elapsed_seconds must be positive")
    points = stencil_points_updated(pattern, grid_shape, iterations)
    return 2.0 * pattern.points * points / elapsed_seconds / 1e9


def compute_density(useful_flops: float, traffic_bytes: float) -> float:
    """Useful FLOPs per byte of device memory traffic (arithmetic intensity)."""
    require(useful_flops >= 0.0, "useful_flops must be non-negative")
    if traffic_bytes <= 0.0:
        return 0.0
    return useful_flops / traffic_bytes


def speedup(baseline_seconds: float, method_seconds: float) -> float:
    """``baseline / method`` — how much faster the method is."""
    require(baseline_seconds > 0.0 and method_seconds > 0.0,
            "times must be positive")
    return baseline_seconds / method_seconds


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's "average speedup" aggregation)."""
    array = np.asarray(list(values), dtype=np.float64)
    require(array.size > 0, "geometric_mean needs at least one value")
    require(bool(np.all(array > 0)), "geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


@dataclass
class MethodComparison:
    """Results of running several methods on the same workload.

    ``results`` keeps the per-method :class:`BaselineResult` (the historical
    shape every figure script consumes); ``solutions`` additionally keeps the
    session-layer :class:`repro.session.Solution` wrappers, whose provenance
    records which engine each method actually ran on.
    """

    pattern_name: str
    grid_shape: tuple
    iterations: int
    results: Dict[str, BaselineResult] = field(default_factory=dict)
    solutions: Dict[str, "object"] = field(default_factory=dict)

    def gstencil(self) -> Dict[str, float]:
        return {name: r.gstencil_per_second for name, r in self.results.items()}

    def gflops(self) -> Dict[str, float]:
        return {name: r.gflops_per_second for name, r in self.results.items()}

    def speedup_over(self, reference: str) -> Dict[str, float]:
        """Speedup of every method relative to ``reference``."""
        require(reference in self.results,
                f"{reference!r} not among {sorted(self.results)}")
        ref_time = self.results[reference].elapsed_seconds
        return {name: speedup(ref_time, r.elapsed_seconds)
                for name, r in self.results.items()}

    def fastest(self) -> str:
        return min(self.results, key=lambda n: self.results[n].elapsed_seconds)

    def max_error_vs(self, reference_output: np.ndarray) -> Dict[str, float]:
        """Maximum absolute deviation of each method from a reference field."""
        return {
            name: float(np.max(np.abs(r.output - reference_output)))
            for name, r in self.results.items()
        }


def compare_methods(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    methods: Sequence,
    *,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    temporal_fusion: Optional[Dict[str, int]] = None,
    session=None,
) -> MethodComparison:
    """Run every method on the identical workload and collect the results.

    Each entry of ``methods`` is a :class:`Baseline` instance or a registry
    key (``"cudnn"``); every method runs through the session layer
    (:meth:`repro.StencilSession.solve_baseline`) on the *same*
    :class:`repro.session.Problem`, so cross-method comparison uses exactly
    the routing and provenance machinery a production caller would.
    ``session`` defaults to the process-wide default session.

    ``temporal_fusion`` maps method names to fusion factors (the Figure-6
    protocol applies 3x fusion to SparStencil and ConvStencil on small
    kernels); methods not listed run unfused.
    """
    from repro.baselines.registry import get_baseline
    from repro.session import Problem

    require_positive_int(iterations, "iterations")
    if session is None:
        from repro.session import default_session
        session = default_session()
    fusion_map = dict(temporal_fusion or {})
    comparison = MethodComparison(
        pattern_name=pattern.name,
        grid_shape=tuple(grid.shape),
        iterations=iterations,
    )
    for method in methods:
        baseline = get_baseline(method) if isinstance(method, str) else method
        fusion = int(fusion_map.get(baseline.name, 1))
        problem = Problem(
            pattern, grid, iterations,
            options={"dtype": dtype, "spec": spec, "temporal_fusion": fusion},
            tag=baseline.name)
        solution = session.solve_baseline(problem, baseline)
        comparison.results[baseline.name] = solution.result
        comparison.solutions[baseline.name] = solution
    return comparison

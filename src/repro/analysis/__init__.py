"""Analysis and experiment-support utilities.

These modules turn raw run results into the quantities the paper's evaluation
section reports: GStencil/s and GFlops/s throughput, compute density,
sparsity ratios, NCU-style utilisation reports, preprocessing-overhead splits
and the stage-by-stage performance breakdown.
"""

from repro.analysis.metrics import (
    gstencil_per_second,
    gflops_per_second,
    compute_density,
    speedup,
    geometric_mean,
    MethodComparison,
    compare_methods,
)
from repro.analysis.sparsity import SparsityReport, analyze_sparsity
from repro.analysis.utilization import utilization_comparison
from repro.analysis.overhead import (
    CacheAmortization,
    OverheadBreakdown,
    cache_amortization,
    preprocessing_overhead,
)
from repro.analysis.breakdown import BreakdownStage, performance_breakdown
from repro.analysis.scaling import (
    DeepHaloPoint,
    DeepHaloTradeoff,
    ScalingReport,
    ShardScalingPoint,
    deep_halo_tradeoff,
    per_shard_utilization,
    sharded_scaling,
)
from repro.analysis.programs import (
    ProgramFusionSummary,
    program_fusion_summary,
)
from repro.analysis.report import render_markdown_report, write_report
from repro.analysis.tracing import (
    SpanNode,
    build_span_tree,
    render_span_tree,
    validate_spans,
)

__all__ = [
    "gstencil_per_second",
    "gflops_per_second",
    "compute_density",
    "speedup",
    "geometric_mean",
    "MethodComparison",
    "compare_methods",
    "SparsityReport",
    "analyze_sparsity",
    "utilization_comparison",
    "OverheadBreakdown",
    "preprocessing_overhead",
    "CacheAmortization",
    "cache_amortization",
    "BreakdownStage",
    "performance_breakdown",
    "DeepHaloPoint",
    "DeepHaloTradeoff",
    "ScalingReport",
    "ShardScalingPoint",
    "deep_halo_tradeoff",
    "per_shard_utilization",
    "sharded_scaling",
    "ProgramFusionSummary",
    "program_fusion_summary",
    "render_markdown_report",
    "write_report",
    "SpanNode",
    "build_span_tree",
    "render_span_tree",
    "validate_spans",
]

"""Span-tree analysis: build, validate and pretty-print traces.

Works on live :class:`~repro.obs.trace.Span` objects *or* on the plain
dicts produced by :func:`repro.obs.export.read_jsonl`, so a trace can be
inspected in-process or from a file a server wrote yesterday.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SpanNode",
    "build_span_tree",
    "validate_spans",
    "render_span_tree",
]


def _get(span: Any, name: str, default: Any = None) -> Any:
    """Field access over both Span objects and span dicts."""
    if isinstance(span, dict):
        return span.get(name, default)
    return getattr(span, name, default)


def _attrs(span: Any) -> Dict[str, Any]:
    attrs = _get(span, "attrs", {}) or {}
    return dict(attrs)


def _duration(span: Any) -> float:
    end = _get(span, "end_seconds")
    start = _get(span, "start_seconds", 0.0) or 0.0
    if end is None:
        duration = _get(span, "duration_seconds", 0.0)
        if callable(duration):
            return duration()
        return float(duration or 0.0)
    return max(0.0, float(end) - float(start))


@dataclass
class SpanNode:
    """One span plus its children, ordered by start time."""

    span: Any
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return _get(self.span, "name", "?")

    @property
    def duration_seconds(self) -> float:
        return _duration(self.span)

    @property
    def device_seconds(self) -> float:
        return float(_get(self.span, "device_seconds", 0.0) or 0.0)

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_tree(spans: Sequence[Any],
                    trace_id: Optional[str] = None) -> List[SpanNode]:
    """Assemble spans into parent→child trees; returns the roots.

    A span whose ``parent_id`` does not resolve within the set is treated as
    a root (so a partially exported trace still renders);
    :func:`validate_spans` is the strict check that flags such orphans.
    """
    if trace_id is not None:
        spans = [s for s in spans if _get(s, "trace_id") == trace_id]
    nodes = {_get(s, "span_id"): SpanNode(s) for s in spans}
    roots: List[SpanNode] = []
    for span in spans:
        node = nodes[_get(span, "span_id")]
        parent_id = _get(span, "parent_id")
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: _get(n.span, "start_seconds", 0.0))
    roots.sort(key=lambda n: _get(n.span, "start_seconds", 0.0))
    return roots


def validate_spans(spans: Sequence[Any]) -> List[str]:
    """Well-formedness check; returns a list of human-readable problems.

    An empty list means the trace is sound: unique span ids, every
    ``parent_id`` resolves to a span of the *same* trace, every finished
    span has ``end >= start``, and no span is left unfinished.
    """
    problems: List[str] = []
    by_id: Dict[str, Any] = {}
    for span in spans:
        span_id = _get(span, "span_id")
        if not span_id:
            problems.append(f"span {_get(span, 'name')!r} has no span_id")
            continue
        if span_id in by_id:
            problems.append(f"duplicate span_id {span_id!r}")
        by_id[span_id] = span
    for span in spans:
        name = _get(span, "name")
        span_id = _get(span, "span_id")
        parent_id = _get(span, "parent_id")
        if parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                problems.append(
                    f"span {name!r} ({span_id}) has orphan parent "
                    f"{parent_id!r}")
            elif _get(parent, "trace_id") != _get(span, "trace_id"):
                problems.append(
                    f"span {name!r} ({span_id}) crosses traces: parent "
                    f"{parent_id!r} belongs to another trace_id")
        start = _get(span, "start_seconds")
        end = _get(span, "end_seconds")
        if end is None:
            problems.append(f"span {name!r} ({span_id}) was never finished")
        elif start is not None and float(end) < float(start):
            problems.append(
                f"span {name!r} ({span_id}) ends before it starts "
                f"({end} < {start})")
    return problems


def _format_node(node: SpanNode, prefix: str, is_last: bool,
                 lines: List[str], attr_keys: Optional[Sequence[str]]) -> None:
    connector = "`- " if is_last else "|- "
    wall_ms = node.duration_seconds * 1e3
    parts = [f"{node.name}  {wall_ms:.3f}ms"]
    if node.device_seconds:
        parts.append(f"dev={node.device_seconds * 1e3:.3f}ms")
    attrs = _attrs(node.span)
    if attr_keys is None:
        shown = attrs
    else:
        shown = {k: attrs[k] for k in attr_keys if k in attrs}
    if shown:
        rendered = ", ".join(f"{k}={v}" for k, v in shown.items())
        parts.append(f"[{rendered}]")
    lines.append(prefix + connector + "  ".join(parts))
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(node.children):
        _format_node(child, child_prefix, i == len(node.children) - 1,
                     lines, attr_keys)


def render_span_tree(spans: Sequence[Any], trace_id: Optional[str] = None,
                     attr_keys: Optional[Sequence[str]] = None) -> str:
    """ASCII tree of a trace: name, wall ms, modelled device ms, attrs.

    ``attr_keys`` limits which attributes are shown (all by default)::

        solve  12.847ms  [mode=auto, pattern=heat-2d]
        |- request  12.102ms
        |  |- queue_wait  0.513ms
        |  |- coalesce  2.004ms  [batch_size=3]
        |  `- execute  9.344ms  dev=1.204ms
        `- export  0.281ms
    """
    lines: List[str] = []
    for root in build_span_tree(spans, trace_id=trace_id):
        wall_ms = root.duration_seconds * 1e3
        header = [f"{root.name}  {wall_ms:.3f}ms"]
        if root.device_seconds:
            header.append(f"dev={root.device_seconds * 1e3:.3f}ms")
        attrs = _attrs(root.span)
        if attr_keys is not None:
            attrs = {k: attrs[k] for k in attr_keys if k in attrs}
        if attrs:
            header.append(
                "[" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + "]")
        lines.append("  ".join(header))
        for i, child in enumerate(root.children):
            _format_node(child, "", i == len(root.children) - 1, lines,
                         attr_keys)
    return "\n".join(lines)

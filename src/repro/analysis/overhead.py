"""Preprocessing-overhead analysis (Figure 8).

SparStencil performs three host-side preprocessing steps once per compiled
stencil: the layout transformation (morphing + conversion + layout search),
sparse-metadata generation and lookup-table construction.  Their cost is
fixed while kernel time grows with the iteration count, so the overhead
percentage decays roughly as ``1 / iterations`` — the behaviour Figure 8
shows, with 1D kernels spiking early (tiny kernels, relatively costly LUTs)
and 3D kernels staying flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.pipeline import CompiledStencil, compile_stencil
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec
from repro.util.validation import require, require_positive_int

__all__ = [
    "OverheadBreakdown",
    "CacheAmortization",
    "preprocessing_overhead",
    "cache_amortization",
]

#: Figure 8 category labels.
CATEGORIES = ("transformation", "metadata", "lookup_table")


@dataclass(frozen=True)
class OverheadBreakdown:
    """Overhead percentages for one kernel across iteration counts.

    ``percentages[iterations][category]`` is the share of total runtime
    (host preprocessing + modelled device time) spent in that preprocessing
    category when the stencil runs for ``iterations`` time steps.
    """

    pattern_name: str
    grid_shape: Tuple[int, ...]
    overhead_seconds: Dict[str, float]
    sweep_seconds: float
    percentages: Dict[int, Dict[str, float]]

    def total_percentage(self, iterations: int) -> float:
        return sum(self.percentages[iterations].values())

    def amortized(self, threshold: float = 0.05) -> bool:
        """Whether the total overhead drops below ``threshold`` for the largest
        iteration count measured."""
        largest = max(self.percentages)
        return self.total_percentage(largest) < threshold * 100.0


def preprocessing_overhead(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    iteration_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
    *,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    compiled: CompiledStencil | None = None,
) -> OverheadBreakdown:
    """Measure the Figure-8 overhead split for one kernel.

    The host-side stage timings come from an actual compilation; device time
    per sweep comes from the compiled plan's analytical estimate (so the
    percentages reflect the paper-scale problem rather than the scaled-down
    simulation grid).
    """
    require(len(iteration_counts) > 0, "need at least one iteration count")
    for count in iteration_counts:
        require_positive_int(count, "iteration count")

    if compiled is None:
        compiled = compile_stencil(pattern, grid_shape, dtype=dtype, spec=spec)
    overhead = {name: compiled.overhead_seconds.get(name, 0.0) for name in CATEGORIES}
    sweep_seconds = compiled.plan.estimate.t_total

    percentages: Dict[int, Dict[str, float]] = {}
    for count in iteration_counts:
        device_seconds = sweep_seconds * count
        total = device_seconds + sum(overhead.values())
        percentages[int(count)] = {
            name: (100.0 * value / total if total > 0 else 0.0)
            for name, value in overhead.items()
        }
    return OverheadBreakdown(
        pattern_name=pattern.name,
        grid_shape=tuple(grid_shape),
        overhead_seconds=overhead,
        sweep_seconds=sweep_seconds,
        percentages=percentages,
    )


@dataclass(frozen=True)
class CacheAmortization:
    """How far a :class:`repro.service.CompileCache` amortises compile cost.

    The Figure-8 story is that preprocessing amortises over *iterations of
    one solve*; with the service cache it additionally amortises over
    *requests*: every hit reuses a compilation some earlier request paid for.
    """

    lookups: int
    hits: int
    misses: int
    hit_rate: float
    compile_seconds: float
    saved_seconds: float

    @property
    def amortized_seconds_per_request(self) -> float:
        """Host compile cost divided over every request the cache served."""
        return self.compile_seconds / self.lookups if self.lookups else 0.0

    @property
    def speedup_vs_uncached(self) -> float:
        """Host compile time an uncached service would have spent, relative
        to what was actually spent.

        1.0 when the cache never hit; ``inf`` when every compile was avoided
        (e.g. a fully disk-warmed cache that spent nothing itself).
        """
        if self.compile_seconds <= 0.0:
            return float("inf") if self.saved_seconds > 0.0 else 1.0
        return (self.compile_seconds + self.saved_seconds) / self.compile_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "compile_seconds": self.compile_seconds,
            "saved_seconds": self.saved_seconds,
            "amortized_seconds_per_request": self.amortized_seconds_per_request,
            "speedup_vs_uncached": self.speedup_vs_uncached,
        }


def cache_amortization(cache) -> CacheAmortization:
    """Summarise a :class:`repro.service.CompileCache`'s amortisation.

    Accepts the cache itself or a bare :class:`repro.service.CacheStats`.
    """
    if hasattr(cache, "snapshot_stats"):
        stats = cache.snapshot_stats()  # consistent read on a live cache
    else:
        stats = getattr(cache, "stats", cache)
    return CacheAmortization(
        lookups=stats.lookups,
        hits=stats.hits,
        misses=stats.misses,
        hit_rate=stats.hit_rate,
        compile_seconds=stats.compile_seconds,
        saved_seconds=stats.saved_seconds,
    )

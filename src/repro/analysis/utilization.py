"""Hardware-utilisation comparison (Figure 11).

Runs SparStencil, ConvStencil and cuDNN on the same workload and collects the
six NCU-style counters the simulator derives for each launch.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.baselines.base import Baseline
from repro.baselines.convstencil import ConvStencilBaseline
from repro.baselines.cudnn import CudnnBaseline
from repro.baselines.sparstencil_adapter import SparStencilMethod
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec
from repro.util.validation import require

__all__ = ["utilization_comparison", "FIGURE11_METHODS"]

#: The three methods Figure 11 profiles.
FIGURE11_METHODS = ("SparStencil", "ConvStencil", "cuDNN")


def utilization_comparison(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int = 3,
    *,
    methods: Sequence[Baseline] | None = None,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    temporal_fusion: Dict[str, int] | None = None,
) -> Dict[str, Dict[str, float]]:
    """Return ``{method: {metric: percent}}`` for the Figure-11 metrics.

    ``temporal_fusion`` follows the Figure-6 protocol (3x fusion for the
    Tensor-Core layout methods on small kernels); by default SparStencil and
    ConvStencil fuse 3 steps when ``iterations`` allows it, cuDNN never does.
    """
    if methods is None:
        methods = (SparStencilMethod(), ConvStencilBaseline(), CudnnBaseline())
    if temporal_fusion is None:
        fuse = 3 if iterations % 3 == 0 else 1
        temporal_fusion = {"SparStencil": fuse, "ConvStencil": fuse}
    report: Dict[str, Dict[str, float]] = {}
    for method in methods:
        fusion = int(temporal_fusion.get(method.name, 1))
        result = method.run(pattern, grid, iterations, dtype=dtype, spec=spec,
                            temporal_fusion=fusion)
        require(result.utilization is not None,
                f"method {method.name} did not produce a utilization report")
        report[method.name] = result.utilization.as_dict()
    return report

"""Stage-by-stage performance breakdown (Figure 7).

Figure 7 shows the incremental gain of each SparStencil stage on Box-2D49P
across problem sizes:

1. **CUDA** — the naive scalar kernel;
2. **+ Layout Morphing** — the morphed matrix product on *dense* Tensor
   Cores, without compute/transfer overlap;
3. **+ PIT (sparse TCU)** — the 2:4-converted product on sparse Tensor Cores,
   still without overlap (at small problem sizes the extra padded reduction
   depth can make this step a slight regression, as the paper notes for
   sizes 256 and 768);
4. **+ Optimizations** — the full generated kernel: lookup tables and the
   double-buffered pipeline that overlaps loads with MMA
   (``T = max(T_compute, T_memory)`` instead of their sum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.layout_search import search_layout
from repro.core.morphing import MorphConfig
from repro.core.perf_model import estimate_layout
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import stencil_points_updated
from repro.tcu.memory import memory_time
from repro.tcu.spec import (
    A100_SPEC,
    DENSE_FRAGMENTS,
    DataType,
    GPUSpec,
    SPARSE_FRAGMENTS,
)
from repro.tcu.timing import ffma_time
from repro.util.validation import require

__all__ = ["BreakdownStage", "performance_breakdown", "BREAKDOWN_STAGES"]

BREAKDOWN_STAGES = (
    "CUDA",
    "+Layout Morphing (dense TCU)",
    "+PIT (sparse TCU)",
    "+Optimizations",
)


@dataclass(frozen=True)
class BreakdownStage:
    """One bar of Figure 7: a stage's modelled throughput at one problem size."""

    stage: str
    problem_size: int
    seconds_per_sweep: float
    gstencil_per_second: float
    speedup_over_cuda: float


def _cuda_seconds(pattern: StencilPattern, grid_shape, dtype: DataType,
                  spec: GPUSpec) -> float:
    """Naive-kernel roofline (mirrors :class:`~repro.baselines.naive.NaiveCudaBaseline`)."""
    points = stencil_points_updated(pattern, grid_shape, 1)
    itemsize = dtype.itemsize
    ffma_dtype = dtype if dtype is DataType.FP64 else DataType.TF32
    flops = 2.0 * pattern.points * points / 0.75
    compute = ffma_time(flops, spec, dtype=ffma_dtype)
    from repro.tcu.memory import MemoryTraffic
    traffic = MemoryTraffic(
        global_read_bytes=2.0 * float(np.prod(grid_shape)) * itemsize,
        global_write_bytes=float(points) * itemsize,
    )
    return max(compute, memory_time(traffic, spec))


def performance_breakdown(
    pattern: StencilPattern,
    problem_sizes: Sequence[int],
    *,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
) -> List[BreakdownStage]:
    """Model the four Figure-7 stages for square grids of the given sizes."""
    require(pattern.ndim == 2, "the Figure-7 breakdown uses a 2D kernel")
    rows: List[BreakdownStage] = []
    for size in problem_sizes:
        grid_shape = (int(size), int(size))
        points = stencil_points_updated(pattern, grid_shape, 1)

        cuda_seconds = _cuda_seconds(pattern, grid_shape, dtype, spec)

        # Stages 2 and 3 use the fixed ConvStencil-style layout (r1=16, r2=1)
        # and no compute/transfer overlap; the layout search and the
        # double-buffered pipeline are part of stage 4's "optimizations".
        out_last = size - pattern.diameter + 1
        fixed = MorphConfig.from_r1_r2(2, min(16, out_last), 1)

        dense_est = estimate_layout(
            pattern, grid_shape, fixed, fragment=DENSE_FRAGMENTS[0],
            dtype=dtype, spec=spec, engine="dense_mma")
        morphing_seconds = dense_est.t_compute + dense_est.t_memory

        sparse_fixed_est = estimate_layout(
            pattern, grid_shape, fixed, fragment=SPARSE_FRAGMENTS[1],
            dtype=dtype, spec=spec, engine="sparse_mma")
        pit_seconds = sparse_fixed_est.t_compute + sparse_fixed_est.t_memory

        sparse_search = search_layout(
            pattern, grid_shape, fragment=SPARSE_FRAGMENTS[1], dtype=dtype,
            spec=spec, engine="sparse_mma")
        optimized_seconds = sparse_search.best.estimate.t_total

        for stage, seconds in zip(
            BREAKDOWN_STAGES,
            (cuda_seconds, morphing_seconds, pit_seconds, optimized_seconds),
        ):
            rows.append(BreakdownStage(
                stage=stage,
                problem_size=int(size),
                seconds_per_sweep=seconds,
                gstencil_per_second=points / seconds / 1e9,
                speedup_over_cuda=cuda_seconds / seconds,
            ))
    return rows

"""Program-level analysis: what cross-stage fusion buys.

A fused :class:`~repro.programs.StencilProgram` exchanges halos once per
*group* of consecutive equal-radius stages instead of once per stage.  This
module prices both schedules with :func:`repro.programs.model_program` (the
same arithmetic the routing scheduler and the sharded program runner bill
with) and reports the modelled savings — exchange count, exposed
communication seconds and wall time — so the fusion benchmark and the README
table can quote numbers without executing a single sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.util.validation import require

__all__ = ["ProgramFusionSummary", "program_fusion_summary"]


@dataclass(frozen=True)
class ProgramFusionSummary:
    """Modelled fused-vs-unfused comparison of one compiled program.

    ``exchanges_removed`` is the number of halo exchanges fusion eliminates
    over the whole run; ``fused``/``unfused`` are the underlying
    :class:`~repro.programs.ProgramCostModel` records.  When the program
    cannot shard at all, both models carry ``sharded_seconds=None`` and the
    savings are zero by construction.
    """

    program: str
    steps: int
    devices: int
    fused: Any      # repro.programs.ProgramCostModel
    unfused: Any    # repro.programs.ProgramCostModel

    @property
    def shardable(self) -> bool:
        return self.fused.sharded_seconds is not None

    @property
    def exchanges_removed(self) -> int:
        return self.unfused.exchange_count - self.fused.exchange_count

    @property
    def exchange_reduction(self) -> float:
        """Fraction of the unfused run's exchanges that fusion removes."""
        if self.unfused.exchange_count == 0:
            return 0.0
        return self.exchanges_removed / self.unfused.exchange_count

    @property
    def exposed_seconds_saved(self) -> float:
        return self.unfused.exposed_seconds - self.fused.exposed_seconds

    @property
    def wall_seconds_saved(self) -> float:
        if not self.shardable:
            return 0.0
        return self.unfused.sharded_seconds - self.fused.sharded_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "steps": self.steps,
            "devices": self.devices,
            "shardable": self.shardable,
            "fused_groups": [list(group) for group in self.fused.groups],
            "halo_depth": self.fused.halo_depth,
            "fused_exchanges": self.fused.exchange_count,
            "unfused_exchanges": self.unfused.exchange_count,
            "exchanges_removed": self.exchanges_removed,
            "exchange_reduction": self.exchange_reduction,
            "exposed_seconds_saved": self.exposed_seconds_saved,
            "wall_seconds_saved": self.wall_seconds_saved,
            "single_seconds": self.fused.single_seconds,
            "fused_sharded_seconds": self.fused.sharded_seconds,
            "unfused_sharded_seconds": self.unfused.sharded_seconds,
        }


def program_fusion_summary(plan: Any, *, devices: int = 2, steps: int = 1,
                           shard_grid: Optional[Sequence[int]] = None,
                           overlap: bool = True) -> ProgramFusionSummary:
    """Price ``plan`` fused and unfused on the same partition geometry.

    ``plan`` is a :class:`~repro.programs.ProgramPlan` (from
    :func:`repro.programs.compile_program`); the two cost models differ only
    in the ``fuse`` flag, so every other term — partition, interconnect,
    overlap arithmetic — cancels and the delta is purely what grouped
    exchanges buy.
    """
    from repro.programs import ProgramPlan, model_program

    require(isinstance(plan, ProgramPlan),
            f"plan must be a ProgramPlan, got {type(plan).__name__}")
    fused = model_program(plan, devices=devices, steps=steps,
                          shard_grid=shard_grid, fuse=True, overlap=overlap)
    unfused = model_program(plan, devices=devices, steps=steps,
                            shard_grid=shard_grid, fuse=False,
                            overlap=overlap)
    return ProgramFusionSummary(
        program=plan.program.name,
        steps=steps,
        devices=devices,
        fused=fused,
        unfused=unfused,
    )

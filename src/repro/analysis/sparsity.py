"""Sparsity analysis of morphed and converted layouts (Figure 9, right axis).

The paper tracks two sparsity quantities: the *clustered* sparsity the layout
morphing leaves in the kernel matrix (50–80 % for dense-TCU approaches) and
the *residual* sparsity after 2:4 conversion, which SparStencil keeps below
60 % across stencil sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.conversion import convert_to_24
from repro.core.morphing import MorphConfig, morph_kernel_matrix
from repro.core.staircase import block_structure_from_morph
from repro.stencils.pattern import StencilPattern
from repro.tcu.sparsity24 import sparsity_ratio, violations_24

__all__ = ["SparsityReport", "analyze_sparsity"]


@dataclass(frozen=True)
class SparsityReport:
    """Sparsity characteristics of one (pattern, layout) pair."""

    pattern_name: str
    r1: int
    r2: int
    morphed_sparsity: float
    converted_sparsity: float
    clustered_violations: int
    padded_columns: int
    k_prime: int
    k_padded: int

    @property
    def padding_overhead(self) -> float:
        """Fraction of the converted reduction depth that is zero padding."""
        if self.k_padded == 0:
            return 0.0
        return self.padded_columns / self.k_padded


def analyze_sparsity(pattern: StencilPattern, config: MorphConfig) -> SparsityReport:
    """Measure clustered vs structured sparsity for one layout candidate."""
    a_prime = morph_kernel_matrix(pattern, config)
    morphed_sparsity = sparsity_ratio(a_prime)
    clustered = len(violations_24(a_prime))

    structure = block_structure_from_morph(pattern, config)
    conversion = convert_to_24(a_prime, structure=structure)

    return SparsityReport(
        pattern_name=pattern.name,
        r1=config.r1,
        r2=config.r2,
        morphed_sparsity=float(morphed_sparsity),
        converted_sparsity=float(conversion.sparsity()),
        clustered_violations=clustered,
        padded_columns=conversion.n_pad,
        k_prime=a_prime.shape[1],
        k_padded=conversion.n_total,
    )

"""Multi-device scaling analysis: shard utilization and halo traffic.

The sharded execution engine models a weak-scaling deployment — one grid
decomposed over N simulated devices with per-sweep halo exchange.  This
module turns its :class:`repro.engine.ShardedRunResult` into the quantities
a scaling study reports: modelled speedup and parallel efficiency against
the single-device run, the halo-traffic fraction (the communication tax the
decomposition pays), and per-shard utilization (how evenly the devices are
loaded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import CompiledStencil, execute_compiled
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import MultiDeviceSpec
from repro.util.validation import require, require_positive_int

__all__ = ["ShardScalingPoint", "ScalingReport", "sharded_scaling",
           "per_shard_utilization"]


@dataclass(frozen=True)
class ShardScalingPoint:
    """One shard count of a scaling sweep."""

    devices: int
    shard_grid: Tuple[int, ...]
    elapsed_seconds: float
    speedup: float
    efficiency: float
    halo_traffic_fraction: float
    halo_exchange_seconds: float
    load_balance: float
    gstencil_per_second: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "devices": self.devices,
            "shard_grid": list(self.shard_grid),
            "elapsed_seconds": self.elapsed_seconds,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "halo_traffic_fraction": self.halo_traffic_fraction,
            "halo_exchange_seconds": self.halo_exchange_seconds,
            "load_balance": self.load_balance,
            "gstencil_per_second": self.gstencil_per_second,
        }


@dataclass(frozen=True)
class ScalingReport:
    """Scaling sweep of one workload over increasing device counts."""

    pattern_name: str
    grid_shape: Tuple[int, ...]
    iterations: int
    single_device_seconds: float
    points: Tuple[ShardScalingPoint, ...]

    def as_rows(self) -> List[Dict[str, Any]]:
        return [point.as_dict() for point in self.points]

    @property
    def best(self) -> ShardScalingPoint:
        return min(self.points, key=lambda p: p.elapsed_seconds)


def sharded_scaling(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    device_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    interconnect: Optional[MultiDeviceSpec] = None,
    cache=None,
    compiled: Optional[CompiledStencil] = None,
    **compile_kwargs,
) -> ScalingReport:
    """Sweep shard counts and compare against the single-device run.

    The single-device baseline and every sharded point execute the *same*
    compiled plan family (the sharded executor pins its per-shard plans to
    the baseline layout), so the outputs are bit-identical and the comparison
    isolates the execution model: per-device kernel time shrinking with the
    shard size versus the growing halo-exchange tax.
    """
    from repro.engine.sharded import ShardedExecutor

    require_positive_int(iterations, "iterations")
    require(len(device_counts) > 0, "need at least one device count")
    for count in device_counts:
        require_positive_int(count, "device count")

    grid_shape = tuple(grid.shape)
    if compiled is None:
        from repro.core.pipeline import compile_cached
        compiled = compile_cached(pattern, grid_shape, cache=cache,
                                  **compile_kwargs)
    require(iterations % compiled.temporal_fusion == 0,
            f"sharded scaling requires iterations divisible by the temporal "
            f"fusion factor {compiled.temporal_fusion} (got {iterations})")

    baseline = execute_compiled(compiled, grid, iterations)
    single_seconds = baseline.elapsed_seconds

    points = []
    for count in device_counts:
        # a bare count clusters the baseline's own device (the executor
        # resolves it), so speedup compares like with like even when the
        # workload targets a custom GPUSpec
        spec = count if interconnect is None \
            else interconnect.with_overrides(device_count=count)
        result = ShardedExecutor(spec, cache=cache).execute(
            compiled, grid, iterations)
        speedup = single_seconds / result.elapsed_seconds \
            if result.elapsed_seconds > 0 else 0.0
        points.append(ShardScalingPoint(
            devices=count,
            shard_grid=result.shard_grid,
            elapsed_seconds=result.elapsed_seconds,
            speedup=speedup,
            efficiency=speedup / count,
            halo_traffic_fraction=result.halo_traffic_fraction,
            halo_exchange_seconds=result.halo_exchange_seconds,
            load_balance=result.load_balance,
            gstencil_per_second=result.gstencil_per_second,
        ))

    return ScalingReport(
        pattern_name=pattern.name,
        grid_shape=grid_shape,
        iterations=iterations,
        single_device_seconds=single_seconds,
        points=tuple(points),
    )


def per_shard_utilization(result) -> List[Dict[str, float]]:
    """Per-shard utilization rows of a :class:`repro.engine.ShardedRunResult`.

    One row per shard with its device time and the six NCU-style counters —
    the multi-device analogue of the Figure-11 comparison.
    """
    rows = []
    for i, (elapsed, report) in enumerate(zip(result.shard_elapsed_seconds,
                                              result.shard_utilization)):
        row = {"shard": float(i), "elapsed_seconds": elapsed}
        row.update(report.as_dict())
        rows.append(row)
    return rows

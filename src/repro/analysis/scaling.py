"""Multi-device scaling analysis: shard utilization, halo traffic, and the
deep-halo tradeoff.

The sharded execution engine models a weak-scaling deployment — one grid
decomposed over N simulated devices with communication-avoiding halo
exchange.  This module turns its :class:`repro.engine.ShardedRunResult` into
the quantities a scaling study reports: modelled speedup and parallel
efficiency against the single-device run, the halo-traffic fraction (the
share of wall time exposed to communication), per-shard utilization (how
evenly the devices are loaded) — and the analytic deep-halo tradeoff: how
``halo_depth`` trades redundant ghost-zone compute against exchange latency,
and where the crossover sits for a given workload and interconnect
(:func:`deep_halo_tradeoff`, built on the same
:func:`repro.engine.sharded.model_round` the routing scheduler prices with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import CompiledStencil, execute_compiled
from repro.stencils.grid import Grid
from repro.stencils.partition import GridPartition
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import MultiDeviceSpec
from repro.util.validation import require, require_positive_int

__all__ = ["ShardScalingPoint", "ScalingReport", "sharded_scaling",
           "per_shard_utilization", "DeepHaloPoint", "DeepHaloTradeoff",
           "deep_halo_tradeoff"]


@dataclass(frozen=True)
class ShardScalingPoint:
    """One shard count of a scaling sweep.

    ``halo_traffic_fraction`` is the share of the modelled wall time exposed
    to halo exchange (what overlap could not hide); ``halo_bytes_fraction``
    is the byte-level share of all modelled data movement.  The envelope
    fields (``halo_depth``, ``halo_exchange_count``, ``halo_exchange_bytes``,
    ``redundant_compute_fraction``) record the communication-avoiding
    schedule the point ran under.
    """

    devices: int
    shard_grid: Tuple[int, ...]
    elapsed_seconds: float
    speedup: float
    efficiency: float
    halo_traffic_fraction: float
    halo_exchange_seconds: float
    load_balance: float
    gstencil_per_second: float
    halo_depth: int = 1
    overlap: bool = True
    halo_exchange_count: int = 0
    halo_exchange_bytes: float = 0.0
    halo_exposed_seconds: float = 0.0
    halo_bytes_fraction: float = 0.0
    redundant_compute_fraction: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "devices": self.devices,
            "shard_grid": list(self.shard_grid),
            "elapsed_seconds": self.elapsed_seconds,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "halo_traffic_fraction": self.halo_traffic_fraction,
            "halo_exchange_seconds": self.halo_exchange_seconds,
            "load_balance": self.load_balance,
            "gstencil_per_second": self.gstencil_per_second,
            "halo_depth": self.halo_depth,
            "overlap": self.overlap,
            "halo_exchange_count": self.halo_exchange_count,
            "halo_exchange_bytes": self.halo_exchange_bytes,
            "halo_exposed_seconds": self.halo_exposed_seconds,
            "halo_bytes_fraction": self.halo_bytes_fraction,
            "redundant_compute_fraction": self.redundant_compute_fraction,
        }


@dataclass(frozen=True)
class ScalingReport:
    """Scaling sweep of one workload over increasing device counts."""

    pattern_name: str
    grid_shape: Tuple[int, ...]
    iterations: int
    single_device_seconds: float
    points: Tuple[ShardScalingPoint, ...]

    def as_rows(self) -> List[Dict[str, Any]]:
        return [point.as_dict() for point in self.points]

    @property
    def best(self) -> ShardScalingPoint:
        return min(self.points, key=lambda p: p.elapsed_seconds)


def sharded_scaling(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    device_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    interconnect: Optional[MultiDeviceSpec] = None,
    cache=None,
    compiled: Optional[CompiledStencil] = None,
    halo_depth: int = 1,
    overlap: bool = True,
    shard_grids: Optional[Sequence[Optional[Sequence[int]]]] = None,
    **compile_kwargs,
) -> ScalingReport:
    """Sweep shard counts and compare against the single-device run.

    The single-device baseline and every sharded point execute the *same*
    compiled plan family (the sharded executor pins its per-shard plans to
    the baseline layout), so the outputs are bit-identical and the comparison
    isolates the execution model: per-device kernel time shrinking with the
    shard size versus the halo-exchange tax the communication-avoiding
    schedule (``halo_depth``, ``overlap``) leaves exposed.

    ``shard_grids`` optionally pins the shards-per-axis of each point (one
    entry per device count, ``None`` entries defer to the surface-minimising
    default).
    """
    from repro.engine.sharded import ShardedExecutor

    require_positive_int(iterations, "iterations")
    require(len(device_counts) > 0, "need at least one device count")
    for count in device_counts:
        require_positive_int(count, "device count")
    if shard_grids is not None:
        require(len(shard_grids) == len(device_counts),
                f"{len(shard_grids)} shard grids for {len(device_counts)} "
                f"device counts")

    grid_shape = tuple(grid.shape)
    if compiled is None:
        from repro.core.pipeline import compile_cached
        compiled = compile_cached(pattern, grid_shape, cache=cache,
                                  **compile_kwargs)
    require(iterations % compiled.temporal_fusion == 0,
            f"sharded scaling requires iterations divisible by the temporal "
            f"fusion factor {compiled.temporal_fusion} (got {iterations})")

    baseline = execute_compiled(compiled, grid, iterations)
    single_seconds = baseline.elapsed_seconds

    points = []
    for position, count in enumerate(device_counts):
        # a bare count clusters the baseline's own device (the executor
        # resolves it), so speedup compares like with like even when the
        # workload targets a custom GPUSpec
        spec = count if interconnect is None \
            else interconnect.with_overrides(device_count=count)
        shard_grid = shard_grids[position] if shard_grids is not None else None
        result = ShardedExecutor(spec, shard_grid=shard_grid, cache=cache,
                                 halo_depth=halo_depth,
                                 overlap=overlap).execute(
            compiled, grid, iterations)
        speedup = single_seconds / result.elapsed_seconds \
            if result.elapsed_seconds > 0 else 0.0
        points.append(ShardScalingPoint(
            devices=count,
            shard_grid=result.shard_grid,
            elapsed_seconds=result.elapsed_seconds,
            speedup=speedup,
            efficiency=speedup / count,
            halo_traffic_fraction=result.halo_traffic_fraction,
            halo_exchange_seconds=result.halo_exchange_seconds,
            load_balance=result.load_balance,
            gstencil_per_second=result.gstencil_per_second,
            halo_depth=result.halo_depth,
            overlap=result.overlap,
            halo_exchange_count=result.halo_exchange_count,
            halo_exchange_bytes=result.halo_exchange_bytes,
            halo_exposed_seconds=result.halo_exposed_seconds,
            halo_bytes_fraction=result.halo_bytes_fraction,
            redundant_compute_fraction=result.redundant_compute_fraction,
        ))

    return ScalingReport(
        pattern_name=pattern.name,
        grid_shape=grid_shape,
        iterations=iterations,
        single_device_seconds=single_seconds,
        points=tuple(points),
    )


# --------------------------------------------------------------------- #
# deep-halo tradeoff model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeepHaloPoint:
    """Modelled cost of one ``halo_depth`` candidate (steady-state round)."""

    halo_depth: int
    per_sweep_seconds: float
    halo_seconds: float          # one exchange's interconnect time
    exposed_seconds: float       # per round, after overlap
    halo_fraction: float         # exposed share of the round's wall time
    redundant_fraction: float    # redundant updates / useful updates

    def as_dict(self) -> Dict[str, Any]:
        return {
            "halo_depth": self.halo_depth,
            "per_sweep_seconds": self.per_sweep_seconds,
            "halo_seconds": self.halo_seconds,
            "exposed_seconds": self.exposed_seconds,
            "halo_fraction": self.halo_fraction,
            "redundant_fraction": self.redundant_fraction,
        }


@dataclass(frozen=True)
class DeepHaloTradeoff:
    """The redundant-compute vs exchange-latency tradeoff of deep halos.

    Each extra step of ``halo_depth`` removes one exchange (its latency and
    its exposure) from every round and adds one ring of redundant ghost-zone
    compute to every shard.  Exchange latency is constant per message while
    the redundant ring's cost grows with the shard surface, so the amortised
    per-sweep cost is convex: it falls while latency dominates and rises once
    redundant compute does.  ``predicted_depth`` is the argmin — the
    crossover the benchmark asserts against measured elapsed times.
    """

    devices: int
    shard_grid: Tuple[int, ...]
    overlap: bool
    points: Tuple[DeepHaloPoint, ...]

    @property
    def predicted_depth(self) -> int:
        """The modelled-cheapest ``halo_depth`` (the crossover)."""
        return min(self.points, key=lambda p: p.per_sweep_seconds).halo_depth

    def as_rows(self) -> List[Dict[str, Any]]:
        return [point.as_dict() for point in self.points]


def deep_halo_tradeoff(
    compiled: CompiledStencil,
    devices: Union[MultiDeviceSpec, int],
    *,
    shard_grid: Optional[Sequence[int]] = None,
    max_depth: int = 4,
    overlap: bool = True,
    cache=None,
    window_estimates: bool = True,
    iterations: Optional[int] = None,
) -> DeepHaloTradeoff:
    """Price every feasible ``halo_depth`` for one compiled workload.

    Builds the real partition geometry at each depth and prices its
    steady-state round with :func:`repro.engine.sharded.model_round` — the
    identical model the :class:`~repro.server.scheduler.DevicePoolScheduler`
    routes with and the :class:`~repro.engine.sharded.ShardedExecutor`
    bills, so the predicted crossover is directly comparable to measured
    elapsed times from :func:`sharded_scaling`.

    With ``window_estimates`` (the default), per-window compute is priced
    from each window's own compiled roofline
    (:func:`repro.engine.sharded.window_plan_seconds`, through ``cache`` —
    share the executor's cache and nothing compiles twice) rather than the
    scheduler's compile-free linear-in-cells approximation; the roofline's
    fixed costs make redundant ghost compute sublinear, and the prediction
    must bill what the executor will bill for the crossover to land on the
    measured depth.

    With ``iterations``, the finite schedule is priced instead
    (:func:`repro.engine.sharded.model_schedule`): the first round skips
    its exchange and the last round may be partial, exactly as the executor
    runs them, so the predicted depth matches a measured sweep of that
    iteration count rather than the steady-state amortisation.
    """
    from repro.engine.sharded import (model_round, model_schedule,
                                      window_plan_seconds)

    require_positive_int(max_depth, "max_depth")
    if isinstance(devices, MultiDeviceSpec):
        spec = devices
    else:
        require_positive_int(int(devices), "devices")
        spec = MultiDeviceSpec(device=compiled.spec,
                               device_count=int(devices))
    align = compiled.plan.config.r
    radius = compiled.pattern.radius
    grid_arg = shard_grid if shard_grid is not None else spec.device_count
    feasible = GridPartition.max_halo_depth(
        compiled.grid_shape, radius, grid_arg, align=align,
        boundary=compiled.boundary)
    sweep = compiled.plan.estimate.t_total
    itemsize = compiled.plan.dtype.itemsize

    points = []
    resolved_grid: Tuple[int, ...] = ()
    for depth in range(1, min(max_depth, feasible) + 1):
        partition = GridPartition.build(
            compiled.grid_shape, radius, grid_arg, align=align,
            boundary=compiled.boundary, halo_depth=depth)
        resolved_grid = partition.shard_grid
        window_seconds = window_plan_seconds(
            compiled, spec, partition, cache=cache) \
            if window_estimates else None
        if iterations is not None:
            model = model_schedule(partition, spec, itemsize, iterations,
                                   sweep, overlap=overlap,
                                   window_seconds=window_seconds)
        else:
            model = model_round(partition, spec, itemsize, sweep,
                                overlap=overlap,
                                window_seconds=window_seconds)
        points.append(DeepHaloPoint(
            halo_depth=depth,
            per_sweep_seconds=model.per_sweep_seconds,
            halo_seconds=model.halo_seconds,
            exposed_seconds=model.exposed_seconds,
            halo_fraction=model.halo_fraction,
            redundant_fraction=model.redundant_fraction,
        ))
    require(len(points) > 0, "no feasible halo depth — grid too small to "
                             "shard at all")
    return DeepHaloTradeoff(
        devices=spec.device_count,
        shard_grid=resolved_grid,
        overlap=overlap,
        points=tuple(points),
    )


def per_shard_utilization(result) -> List[Dict[str, float]]:
    """Per-shard utilization rows of a :class:`repro.engine.ShardedRunResult`.

    One row per shard with its device time and the six NCU-style counters —
    the multi-device analogue of the Figure-11 comparison.
    """
    rows = []
    for i, (elapsed, report) in enumerate(zip(result.shard_elapsed_seconds,
                                              result.shard_utilization)):
        row = {"shard": float(i), "elapsed_seconds": elapsed}
        row.update(report.as_dict())
        rows.append(row)
    return rows

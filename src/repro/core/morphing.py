"""Adaptive Layout Morphing (§3.1): flatten + Duplicates Crush.

The morphing stage turns a stencil sweep into a *matrix–matrix* product

    ``D = A' @ B'``,    A' ∈ R^{m' × k'},   B' ∈ R^{k' × n'}

where each column of ``B'`` is one duplicate-free input *tile patch* and each
row of ``A'`` places the kernel weights at the offsets of one output point
inside that tile.  With tile extents ``r = (r_1, …, r_d)`` (outputs per tile
along each axis — the paper's ``(r1, r2)`` for the two fastest axes):

* ``m' = prod(r_i)``                        (outputs per tile),
* ``k' = prod(k + r_i - 1)``                (patch elements per tile),
* ``n' = prod(ceil(out_i / r_i))``           (number of tiles).

``A'`` carries the *self-similar staircase* sparsity the Structured Sparsity
Conversion stage relies on: along every axis the kernel weights shift by the
output offset, so nonzeros of row ``a`` live in the band ``[a, a + k)`` at
each block level (Definition 4 / Figure 5(a) of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.flatten import flatten_output_shape
from repro.stencils.pattern import StencilPattern
from repro.util.arrays import ceil_div
from repro.util.validation import require, require_array, require_positive_int

__all__ = [
    "MorphConfig",
    "MorphResult",
    "morph_kernel_matrix",
    "morph_stencil",
    "morphed_shapes",
    "assemble_output",
]


@dataclass(frozen=True)
class MorphConfig:
    """Layout-morphing parameters: outputs per tile along each grid axis.

    ``r`` is ordered like the grid axes.  The paper's scalar parameters map to
    the two fastest-varying axes: ``r1`` is the tile extent along the last
    (contiguous) axis and ``r2`` along the second-to-last; leading axes of 3D
    grids keep a tile extent of 1.
    """

    r: Tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.r) >= 1, "r must have at least one entry")
        for value in self.r:
            require_positive_int(value, "tile extent")
        object.__setattr__(self, "r", tuple(int(v) for v in self.r))

    @staticmethod
    def from_r1_r2(ndim: int, r1: int, r2: int = 1) -> "MorphConfig":
        """Build a config from the paper's ``(r1, r2)`` scalars."""
        require_positive_int(ndim, "ndim")
        require_positive_int(r1, "r1")
        require_positive_int(r2, "r2")
        if ndim == 1:
            return MorphConfig(r=(r1,))
        if ndim == 2:
            return MorphConfig(r=(r2, r1))
        return MorphConfig(r=tuple([1] * (ndim - 2) + [r2, r1]))

    @property
    def r1(self) -> int:
        """Tile extent along the fastest (last) axis."""
        return self.r[-1]

    @property
    def r2(self) -> int:
        """Tile extent along the second-fastest axis (1 for 1D grids)."""
        return self.r[-2] if len(self.r) >= 2 else 1

    @property
    def outputs_per_tile(self) -> int:
        return int(np.prod(self.r))

    def patch_shape(self, k: int) -> Tuple[int, ...]:
        """Input patch extents per tile: ``k + r_i - 1`` along each axis."""
        return tuple(k + ri - 1 for ri in self.r)


@dataclass(frozen=True)
class MorphResult:
    """Operands and bookkeeping of one morphed stencil application.

    Attributes
    ----------
    a_prime: ``(m', k')`` staircase kernel matrix.
    b_prime: ``(k', n')`` duplicate-free input matrix (tile patches).
    config: the tile extents used.
    pattern_k: kernel diameter.
    out_shape: true (un-padded) output shape.
    padded_out_shape: output shape rounded up to whole tiles.
    tile_grid: number of tiles along each axis (``padded_out / r``).
    """

    a_prime: np.ndarray
    b_prime: np.ndarray
    config: MorphConfig
    pattern_k: int
    out_shape: Tuple[int, ...]
    padded_out_shape: Tuple[int, ...]
    tile_grid: Tuple[int, ...]

    @property
    def m_prime(self) -> int:
        return int(self.a_prime.shape[0])

    @property
    def k_prime(self) -> int:
        return int(self.a_prime.shape[1])

    @property
    def n_prime(self) -> int:
        return int(self.b_prime.shape[1])

    def compute(self) -> np.ndarray:
        """Evaluate ``A' @ B'`` and reassemble the output grid (crops padding)."""
        return assemble_output(self.a_prime @ self.b_prime, self)


def morphed_shapes(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    config: MorphConfig,
) -> Tuple[int, int, int]:
    """Return ``(m', k', n')`` for a morph without materialising operands.

    Used by the analytical performance model (Eq. 9) during layout search.
    """
    require(len(config.r) == pattern.ndim,
            f"config has {len(config.r)} tile extents for a {pattern.ndim}D pattern")
    k = pattern.diameter
    out_shape = flatten_output_shape(pattern, grid_shape)
    m_prime = config.outputs_per_tile
    k_prime = int(np.prod(config.patch_shape(k)))
    n_prime = int(np.prod([ceil_div(o, ri) for o, ri in zip(out_shape, config.r)]))
    return m_prime, k_prime, n_prime


def morph_kernel_matrix(pattern: StencilPattern, config: MorphConfig,
                        dtype=np.float64) -> np.ndarray:
    """Build the staircase kernel matrix ``A'`` for ``pattern`` and ``config``.

    ``A'[row, col]`` holds kernel weight ``K[p]`` where ``row`` enumerates the
    output offsets ``a`` inside a tile (row-major over ``r``) and ``col``
    enumerates patch positions ``a + p`` (row-major over ``k + r - 1``).
    Zero-weight taps of star/custom kernels stay zero, which is extra sparsity
    the conversion stage happily keeps.
    """
    require(len(config.r) == pattern.ndim,
            f"config has {len(config.r)} tile extents for a {pattern.ndim}D pattern")
    k = pattern.diameter
    radius = pattern.radius
    patch_shape = config.patch_shape(k)
    m_prime = config.outputs_per_tile
    k_prime = int(np.prod(patch_shape))

    a_prime = np.zeros((m_prime, k_prime), dtype=dtype)
    offsets_in_tile = list(np.ndindex(*config.r))
    patch_strides = np.array(
        [int(np.prod(patch_shape[axis + 1:])) for axis in range(pattern.ndim)],
        dtype=np.int64,
    )
    for row, tile_offset in enumerate(offsets_in_tile):
        for tap_offset, weight in zip(pattern.offsets, pattern.weights):
            # tap position within the patch: tile offset + (tap + radius)
            position = [tile_offset[axis] + tap_offset[axis] + radius
                        for axis in range(pattern.ndim)]
            col = int(np.dot(position, patch_strides))
            a_prime[row, col] = weight
    return a_prime


def morph_input_matrix(
    pattern: StencilPattern,
    data: np.ndarray,
    config: MorphConfig,
) -> Tuple[np.ndarray, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Build the duplicate-free input matrix ``B'``.

    Returns ``(b_prime, out_shape, padded_out_shape, tile_grid)``.  When the
    output extents are not divisible by the tile extents, the input is padded
    with zeros on the high side; the padded outputs are cropped again by
    :func:`assemble_output`.
    """
    data = require_array(data, "data", ndim=pattern.ndim)
    data = np.asarray(data, dtype=np.float64)
    k = pattern.diameter
    out_shape = flatten_output_shape(pattern, data.shape)
    tile_grid = tuple(ceil_div(o, ri) for o, ri in zip(out_shape, config.r))
    padded_out_shape = tuple(t * ri for t, ri in zip(tile_grid, config.r))

    pad = [(0, (po - o)) for po, o in zip(padded_out_shape, out_shape)]
    if any(hi for _, hi in pad):
        data = np.pad(data, pad, mode="constant")

    patch_shape = config.patch_shape(k)
    windows = np.lib.stride_tricks.sliding_window_view(data, patch_shape)
    # Keep one window per tile: stride r_i along each axis.
    slices = tuple(slice(0, t * ri, ri) for t, ri in zip(tile_grid, config.r))
    tiles = windows[slices]
    n_prime = int(np.prod(tile_grid))
    k_prime = int(np.prod(patch_shape))
    b_prime = tiles.reshape(n_prime, k_prime).T.copy()
    return b_prime, out_shape, padded_out_shape, tile_grid


def morph_stencil(
    pattern: StencilPattern,
    data: np.ndarray,
    config: MorphConfig,
) -> MorphResult:
    """Run Adaptive Layout Morphing on one stencil application."""
    a_prime = morph_kernel_matrix(pattern, config)
    b_prime, out_shape, padded_out_shape, tile_grid = morph_input_matrix(
        pattern, data, config)
    return MorphResult(
        a_prime=a_prime,
        b_prime=b_prime,
        config=config,
        pattern_k=pattern.diameter,
        out_shape=out_shape,
        padded_out_shape=padded_out_shape,
        tile_grid=tile_grid,
    )


def assemble_output(d_matrix: np.ndarray, morph: MorphResult) -> np.ndarray:
    """Reassemble ``D = A' @ B'`` into the output grid and crop tile padding.

    ``D[row, col]`` holds the output at tile ``col`` (row-major over the tile
    grid) and intra-tile offset ``row`` (row-major over ``r``); the output
    grid index along each axis is ``tile_i * r_i + offset_i``.
    """
    d_matrix = require_array(d_matrix, "d_matrix", ndim=2)
    r = morph.config.r
    ndim = len(r)
    require(d_matrix.shape == (morph.m_prime, morph.n_prime),
            f"D has shape {d_matrix.shape}, expected "
            f"{(morph.m_prime, morph.n_prime)}")
    # (r_0..r_{d-1}, t_0..t_{d-1}) → interleave to (t_0, r_0, t_1, r_1, ...)
    shaped = d_matrix.reshape(*r, *morph.tile_grid)
    order = []
    for axis in range(ndim):
        order.extend([ndim + axis, axis])
    interleaved = shaped.transpose(order)
    padded = interleaved.reshape(morph.padded_out_shape)
    crop = tuple(slice(0, o) for o in morph.out_shape)
    return np.ascontiguousarray(padded[crop])

"""k-staircase structure (§3.2, Definition 4 and Figure 5(a)).

A matrix is *k-staircase* when every nonzero of row ``r`` sits in the column
band ``[r, r + k)``.  The morphed kernel matrix ``A'`` exhibits this property
*self-similarly*: at the block level (blocks induced by the slower tile axis)
and inside each nonzero block (induced by the faster tile axis).  The
property is what makes the Hierarchical Two-Level Matching algorithm both
valid and optimal (Theorems 1–2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.morphing import MorphConfig
from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_array, require_positive_int

__all__ = [
    "is_staircase",
    "staircase_bandwidth",
    "BlockStructure",
    "block_structure_from_morph",
]


def is_staircase(matrix: np.ndarray, k: int) -> bool:
    """True when every nonzero of row ``r`` lies in columns ``[r, r + k)``.

    Rows beyond the column count may be entirely zero; a zero matrix is
    trivially staircase.
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    require_positive_int(k, "k")
    rows, cols = np.nonzero(matrix)
    if rows.size == 0:
        return True
    return bool(np.all((cols >= rows) & (cols < rows + k)))


def staircase_bandwidth(matrix: np.ndarray) -> Optional[int]:
    """Smallest ``k`` for which :func:`is_staircase` holds, or ``None``.

    Returns ``None`` when some nonzero sits left of the diagonal (the matrix
    is not staircase for any ``k``); returns 1 for a zero matrix.
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    rows, cols = np.nonzero(matrix)
    if rows.size == 0:
        return 1
    if np.any(cols < rows):
        return None
    return int(np.max(cols - rows) + 1)


@dataclass(frozen=True)
class BlockStructure:
    """Self-similar block layout of a morphed kernel matrix ``A'``.

    The columns of ``A'`` are partitioned into ``n_blocks`` consecutive blocks
    of ``block_size`` columns each (the partition induced by the slower tile
    axes); ``k`` is the staircase bandwidth at both levels — the kernel
    diameter.
    """

    n_columns: int
    block_size: int
    k: int

    def __post_init__(self) -> None:
        require_positive_int(self.n_columns, "n_columns")
        require_positive_int(self.block_size, "block_size")
        require_positive_int(self.k, "k")
        require(self.n_columns % self.block_size == 0,
                f"{self.n_columns} columns cannot be split into blocks of "
                f"{self.block_size}")

    @property
    def n_blocks(self) -> int:
        return self.n_columns // self.block_size

    def block_of(self, column: int) -> int:
        """Index of the block containing ``column``."""
        require(0 <= column < self.n_columns, f"column {column} out of range")
        return column // self.block_size

    def columns_of_block(self, block: int) -> range:
        """Column indices of ``block``."""
        require(0 <= block < self.n_blocks, f"block {block} out of range")
        start = block * self.block_size
        return range(start, start + self.block_size)


def block_structure_from_morph(pattern: StencilPattern,
                               config: MorphConfig) -> BlockStructure:
    """Derive the block structure of ``A' = morph_kernel_matrix(pattern, config)``.

    The innermost (fastest) axis contributes blocks of ``k + r1 - 1`` columns;
    all slower axes multiply into the number of blocks.  The staircase
    bandwidth at both levels is the kernel diameter ``k``.
    """
    require(len(config.r) == pattern.ndim,
            f"config has {len(config.r)} tile extents for a {pattern.ndim}D pattern")
    k = pattern.diameter
    patch_shape = config.patch_shape(k)
    block_size = patch_shape[-1]
    n_columns = int(np.prod(patch_shape))
    return BlockStructure(n_columns=n_columns, block_size=block_size, k=k)

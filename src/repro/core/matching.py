"""Column matching for 2:4 conversion (§3.2, Algorithm 1).

The 2:4 constraint decomposes into 1:2 sub-patterns: if columns are arranged
in consecutive *pairs* such that no row holds a nonzero in both columns of a
pair, then any two adjacent pairs form a 4-group with at most two nonzeros
per row.  Finding such pairs while inserting as few all-zero columns as
possible is the Minimum Zero-Column Matching problem (Problem 1).

Two solvers are provided:

* :func:`hierarchical_matching` — Algorithm 1 of the paper.  It exploits the
  self-similar k-staircase structure of the morphed kernel matrix: blocks at
  least ``k`` apart never conflict (Theorem 1), so pairing block ``i`` with
  block ``i + s1`` (``s1 = max(⌊m/2⌋, k)``) and, inside leftover blocks,
  column ``u`` with ``u + s2`` (``s2 = max(⌊g/2⌋, k)``) yields a valid
  matching with the minimum number of zero columns (Theorem 2) in ``O(|V|)``.
* :func:`blossom_matching` — the general fallback for arbitrary sparsity:
  a maximum-cardinality matching on the *complement* of the conflict graph
  via networkx's Blossom implementation (Edmonds 1965).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.conflict import conflict_matrix
from repro.core.staircase import BlockStructure
from repro.util.arrays import ceil_div
from repro.util.validation import require, require_array

__all__ = [
    "MatchingResult",
    "hierarchical_matching",
    "greedy_matching",
    "blossom_matching",
    "matching_to_permutation",
]

#: Partner value meaning "paired with an inserted all-zero column".
ZERO_PAD = None


@dataclass(frozen=True)
class MatchingResult:
    """A pairing of the kernel-matrix columns.

    Attributes
    ----------
    pairs:
        One entry per pair ``(i, j)``; ``j is None`` means column ``i`` is
        paired with an inserted zero column.
    n_columns:
        Number of original columns covered.
    method:
        ``"hierarchical"`` or ``"blossom"``.
    """

    pairs: Tuple[Tuple[int, Optional[int]], ...]
    n_columns: int
    method: str

    @property
    def n_pad(self) -> int:
        """Zero columns required by the pairing itself (before 4-alignment)."""
        return sum(1 for _, j in self.pairs if j is None)

    def covered_columns(self) -> List[int]:
        """All original column indices covered by the matching, in pair order."""
        covered: List[int] = []
        for i, j in self.pairs:
            covered.append(i)
            if j is not None:
                covered.append(j)
        return covered

    def is_cover(self) -> bool:
        """Coverage requirement of Definition 3: every column in exactly one pair."""
        covered = self.covered_columns()
        return len(covered) == self.n_columns and set(covered) == set(range(self.n_columns))

    def is_conflict_free(self, matrix: np.ndarray) -> bool:
        """Conflict-freedom requirement of Definition 3 against a concrete matrix."""
        adjacency = conflict_matrix(matrix)
        for i, j in self.pairs:
            if j is not None and adjacency[i, j]:
                return False
        return True


def hierarchical_matching(structure: BlockStructure) -> MatchingResult:
    """Algorithm 1: Hierarchical Two-Level Matching.

    Operates purely on the block structure — the k-staircase property
    guarantees that the produced pairs are conflict-free, which callers can
    (and the conversion stage does) double-check against the actual matrix.
    """
    g = structure.block_size
    k = structure.k
    m_blocks = structure.n_blocks

    # ----- level 1: match whole blocks that are >= s1 apart ----------------
    s1 = max(m_blocks // 2, k)
    block_matched = [False] * m_blocks
    block_pairs: List[Tuple[int, int]] = []
    for i in range(m_blocks):
        if not block_matched[i] and i + s1 < m_blocks and not block_matched[i + s1]:
            block_pairs.append((i, i + s1))
            block_matched[i] = True
            block_matched[i + s1] = True

    # ----- level 2: match columns inside the leftover blocks ----------------
    s2 = max(g // 2, k)
    column_pairs: List[Tuple[int, Optional[int]]] = []
    for block in range(m_blocks):
        if block_matched[block]:
            continue
        base = block * g
        col_matched = [False] * g
        for u in range(g):
            if col_matched[u]:
                continue
            v = u + s2
            if v < g and not col_matched[v]:
                column_pairs.append((base + u, base + v))
                col_matched[u] = True
                col_matched[v] = True
            else:
                column_pairs.append((base + u, ZERO_PAD))
                col_matched[u] = True

    # ----- merge: expand block pairs column-by-column -----------------------
    pairs: List[Tuple[int, Optional[int]]] = []
    for p, q in block_pairs:
        base_p, base_q = p * g, q * g
        for t in range(g):
            pairs.append((base_p + t, base_q + t))
    pairs.extend(column_pairs)

    return MatchingResult(pairs=tuple(pairs),
                          n_columns=structure.n_columns,
                          method="hierarchical")


def greedy_matching(matrix: np.ndarray) -> MatchingResult:
    """First-fit pairing on the conflict graph.

    Scans columns left to right and pairs each unmatched column with the first
    later unmatched column it does not conflict with, padding with a zero
    column when none exists.  Runs in ``O(|V|^2)`` with vectorised adjacency
    lookups and produces minimal padding on the banded conflict structures the
    morphed kernel matrices exhibit; it is the default fallback for layouts
    whose block structure is not a clean two-level staircase (e.g. 3D tiles),
    where Blossom's cubic cost would dominate compilation time.
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    adjacency = conflict_matrix(matrix)
    n = adjacency.shape[0]
    matched = np.zeros(n, dtype=bool)
    pairs: List[Tuple[int, Optional[int]]] = []
    for column in range(n):
        if matched[column]:
            continue
        matched[column] = True
        tail = ~adjacency[column, column + 1:] & ~matched[column + 1:]
        candidates = np.nonzero(tail)[0]
        if candidates.size:
            partner = column + 1 + int(candidates[0])
            matched[partner] = True
            pairs.append((column, partner))
        else:
            pairs.append((column, ZERO_PAD))
    return MatchingResult(pairs=tuple(pairs), n_columns=n, method="greedy")


def blossom_matching(matrix: np.ndarray) -> MatchingResult:
    """General fallback: maximum matching on the complement of the conflict graph.

    Any two columns *not* connected in the conflict graph may share a pair;
    maximising the number of such pairs minimises the zero columns needed.
    Runs Edmonds' Blossom algorithm via networkx (worst case ``O(|E||V|^2)``,
    fine for the small conflict graphs real stencils produce).
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    adjacency = conflict_matrix(matrix)
    n = adjacency.shape[0]

    complement = nx.Graph()
    complement.add_nodes_from(range(n))
    free_rows, free_cols = np.nonzero(np.triu(~adjacency, k=1))
    complement.add_edges_from(zip(free_rows.tolist(), free_cols.tolist()))

    matching = nx.algorithms.matching.max_weight_matching(
        complement, maxcardinality=True)

    pairs: List[Tuple[int, Optional[int]]] = []
    matched: set[int] = set()
    for u, v in sorted((min(u, v), max(u, v)) for u, v in matching):
        pairs.append((u, v))
        matched.add(u)
        matched.add(v)
    for column in range(n):
        if column not in matched:
            pairs.append((column, ZERO_PAD))

    return MatchingResult(pairs=tuple(pairs), n_columns=n, method="blossom")


def matching_to_permutation(matching: MatchingResult) -> Tuple[np.ndarray, int]:
    """Turn a matching into a column permutation over the zero-padded matrix.

    Returns ``(order, n_total)`` where ``n_total`` is the padded column count
    (a multiple of 4 so fragments tile cleanly) and ``order`` is an index
    array of length ``n_total``: entries below ``matching.n_columns`` select
    original columns, entries at or above it select inserted zero columns.
    Laying columns out in ``order`` puts each matched pair in adjacent slots,
    which is exactly what makes every 4-group 2:4-compliant.
    """
    require(matching.is_cover(),
            "matching does not cover every column exactly once")
    n = matching.n_columns
    order: List[int] = []
    next_pad = n
    for i, j in matching.pairs:
        order.append(i)
        if j is None:
            order.append(next_pad)
            next_pad += 1
        else:
            order.append(j)

    # Pad with whole zero pairs until the column count is a multiple of 4.
    while len(order) % 4 != 0:
        order.append(next_pad)
        next_pad += 1

    return np.asarray(order, dtype=np.int64), len(order)

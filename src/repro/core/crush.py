"""Duplicates Crush helpers (§3.1, Figures 3–4).

The flattened input matrix ``B`` contains two families of duplicates created
by the kernel sliding over the grid:

* **horizontal duplicates** (Eq. 3) — within each sub-matrix ``B_i`` (the rows
  of ``B`` contributed by input row ``i``), adjacent columns share ``k - 1``
  elements: ``B_i(i+1, j) = B_i(i, j+1)``;
* **vertical duplicates** (Eq. 4) — between sub-matrices: ``B'_{i+1, j} =
  B'_{i, j+1}`` at the sub-matrix level.

This module provides predicates that *verify* those identities on a flattened
matrix (they are the properties the property-based tests exercise) and the
counting helpers the memory model uses.  The actual crushing — building the
duplicate-free ``B'`` and the staircase ``A'`` — is implemented directly from
the tile formulation in :mod:`repro.core.morphing`, which is mathematically
equivalent to crushing every ``r1`` columns horizontally and every ``r2``
columns vertically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.flatten import FlattenResult
from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_array

__all__ = [
    "has_horizontal_duplicates",
    "has_vertical_duplicates",
    "count_duplicates",
    "crush_ratio",
]


def _split_submatrices(b_matrix: np.ndarray, k: int) -> np.ndarray:
    """View ``B`` (k^2, P) as (k, k, P): sub-matrix ``B_i`` is ``[i, :, :]``.

    Only meaningful for 2D stencils where the flattening enumerated the patch
    row-major: rows ``i*k .. (i+1)*k - 1`` of ``B`` all come from input row
    offset ``i`` of the patch.
    """
    b_matrix = require_array(b_matrix, "b_matrix", ndim=2)
    require(b_matrix.shape[0] == k * k,
            f"expected {k * k} rows for a {k}x{k} kernel, got {b_matrix.shape[0]}")
    return b_matrix.reshape(k, k, b_matrix.shape[1])


def has_horizontal_duplicates(pattern: StencilPattern, flattened: FlattenResult) -> bool:
    """Check Eq. 3 on a flattened 2D stencil: adjacent output columns in the
    same output row share ``k*(k-1)`` elements, shifted by one within each
    sub-matrix row."""
    require(pattern.ndim == 2, "horizontal-duplicate check is defined for 2D stencils")
    k = pattern.diameter
    out_h, out_w = flattened.out_shape
    if out_w < 2:
        return True
    subs = _split_submatrices(flattened.b_matrix, k)          # (k, k, P)
    cols = subs.reshape(k, k, out_h, out_w)
    # Column j+1 of the same output row: its patch rows are shifted left by 1.
    left = cols[:, 1:, :, :-1]     # elements 1..k-1 of column j
    right = cols[:, :-1, :, 1:]    # elements 0..k-2 of column j+1
    return bool(np.array_equal(left, right))


def has_vertical_duplicates(pattern: StencilPattern, flattened: FlattenResult) -> bool:
    """Check Eq. 4 on a flattened 2D stencil: vertically adjacent outputs share
    ``k-1`` whole sub-matrix rows (patch rows shifted by one)."""
    require(pattern.ndim == 2, "vertical-duplicate check is defined for 2D stencils")
    k = pattern.diameter
    out_h, out_w = flattened.out_shape
    if out_h < 2:
        return True
    subs = _split_submatrices(flattened.b_matrix, k)
    rows = subs.reshape(k, k, out_h, out_w)
    upper = rows[1:, :, :-1, :]    # sub-matrices 1..k-1 of output row i
    lower = rows[:-1, :, 1:, :]    # sub-matrices 0..k-2 of output row i+1
    return bool(np.array_equal(upper, lower))


def count_duplicates(pattern: StencilPattern, grid_shape: Tuple[int, ...]) -> int:
    """Number of redundant elements in the flattened ``B`` for ``grid_shape``.

    Every interior input element appears once per kernel position covering it;
    all appearances beyond the first are duplicates.
    """
    k = pattern.diameter
    out_shape = tuple(int(s) - k + 1 for s in grid_shape)
    require(all(s > 0 for s in out_shape),
            f"grid shape {grid_shape} too small for kernel diameter {k}")
    flattened_elements = int(np.prod(out_shape)) * (k ** pattern.ndim)
    distinct_elements = int(np.prod(grid_shape))
    return max(0, flattened_elements - distinct_elements)


def crush_ratio(pattern: StencilPattern, grid_shape: Tuple[int, ...],
                r: Tuple[int, ...]) -> float:
    """Fraction of the flattened ``B`` footprint removed by crushing with ``r``.

    With tile extents ``r`` the crushed matrix stores one
    ``prod(k + r_i - 1)``-element patch per ``prod(r_i)`` outputs instead of
    ``prod(r_i)`` full ``k^d`` patches.
    """
    k = pattern.diameter
    require(len(r) == pattern.ndim, "r must have one entry per dimension")
    dense = float(k ** pattern.ndim) * float(np.prod(r))
    crushed = float(np.prod([k + ri - 1 for ri in r]))
    if dense == 0.0:
        return 0.0
    return 1.0 - crushed / dense

"""Permutation Invariant Transformation (§3.2, Eq. 5).

PIT permutes the columns of ``A`` and the rows of ``B`` with the *same*
permutation ``P``.  Because a matrix product is a sum of rank-1 outer
products over the shared K dimension, the product is invariant under any such
shared reordering:

    ``A @ B = Σ_i a_i b_iᵀ = Σ_i a_{P(i)} b_{P(i)}ᵀ``

which is what lets the conversion stage reorder the K dimension freely to
satisfy the 2:4 constraint without touching the stencil's semantics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.validation import require, require_array

__all__ = ["pad_operands", "apply_pit", "invert_permutation"]


def pad_operands(a: np.ndarray, b: np.ndarray | None, n_total: int
                 ) -> Tuple[np.ndarray, np.ndarray | None]:
    """Append zero columns to ``A`` (and zero rows to ``B``) up to ``n_total``.

    The inserted columns/rows are the "zero nodes" of the augmented matching
    graph (Definition 2); they contribute nothing to the product.
    """
    a = require_array(a, "a", ndim=2)
    require(n_total >= a.shape[1],
            f"n_total={n_total} is smaller than A's {a.shape[1]} columns")
    pad_cols = n_total - a.shape[1]
    a_padded = np.pad(a, ((0, 0), (0, pad_cols)), mode="constant")
    b_padded = None
    if b is not None:
        b = require_array(b, "b", ndim=2)
        require(b.shape[0] == a.shape[1],
                f"B has {b.shape[0]} rows but A has {a.shape[1]} columns")
        b_padded = np.pad(b, ((0, pad_cols), (0, 0)), mode="constant")
    return a_padded, b_padded


def apply_pit(a: np.ndarray, b: np.ndarray | None, permutation: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray | None]:
    """Apply the shared permutation: ``A[:, P]`` and ``B[P, :]``.

    ``permutation`` must be a permutation of ``range(a.shape[1])`` (operands
    already padded).  ``b`` may be ``None`` when only the kernel matrix is
    being prepared (the input matrix is permuted later, per iteration).
    """
    a = require_array(a, "a", ndim=2)
    permutation = np.asarray(permutation, dtype=np.int64)
    require(permutation.ndim == 1 and permutation.shape[0] == a.shape[1],
            f"permutation length {permutation.shape[0]} does not match A's "
            f"{a.shape[1]} columns")
    require(np.array_equal(np.sort(permutation), np.arange(a.shape[1])),
            "permutation is not a valid permutation of the column indices")
    a_perm = a[:, permutation]
    b_perm = None
    if b is not None:
        b = require_array(b, "b", ndim=2)
        require(b.shape[0] == a.shape[1],
                f"B has {b.shape[0]} rows but A has {a.shape[1]} columns")
        b_perm = b[permutation, :]
    return a_perm, b_perm


def invert_permutation(permutation: np.ndarray) -> np.ndarray:
    """Return the inverse permutation (``inv[p[i]] = i``)."""
    permutation = np.asarray(permutation, dtype=np.int64)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.shape[0])
    return inverse

"""Temporal kernel fusion.

ConvStencil applies 3x temporal fusion to small kernels (composing three time
steps into one larger stencil) and the paper's Figure-6 comparison has
SparStencil do the same for fairness.  Composing two correlation stencils is
the full convolution of their dense kernels, so the fused kernel of ``t``
steps has diameter ``t*(k-1) + 1``.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import convolve

from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_positive_int

__all__ = ["fuse_pattern", "fused_iterations"]


def fuse_pattern(pattern: StencilPattern, times: int) -> StencilPattern:
    """Return the stencil equivalent to applying ``pattern`` ``times`` in a row.

    The fused pattern keeps zero-weight positions out of its tap set, so any
    sparsity created by cancellation is preserved for the conversion stage.
    """
    require_positive_int(times, "times")
    if times == 1:
        return pattern
    dense = pattern.to_dense()
    fused = dense
    for _ in range(times - 1):
        fused = convolve(fused, dense, mode="full", method="direct")
    fused_pattern = StencilPattern.from_dense(
        fused, name=f"{pattern.name}-x{times}")
    fused_pattern.metadata.update(pattern.metadata)
    fused_pattern.metadata["temporal_fusion"] = times
    return fused_pattern


def fused_iterations(iterations: int, times: int) -> tuple[int, int]:
    """Split ``iterations`` into ``(fused_sweeps, leftover_plain_sweeps)``."""
    require_positive_int(iterations, "iterations")
    require_positive_int(times, "times")
    return iterations // times, iterations % times

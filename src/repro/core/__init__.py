"""SparStencil core: the paper's contribution.

The three stages map one-to-one onto the paper's Section 3:

* :mod:`repro.core.flatten` / :mod:`repro.core.crush` /
  :mod:`repro.core.morphing` — Adaptive Layout Morphing (§3.1);
* :mod:`repro.core.staircase` / :mod:`repro.core.conflict` /
  :mod:`repro.core.matching` / :mod:`repro.core.pit` /
  :mod:`repro.core.conversion` — Structured Sparsity Conversion (§3.2);
* :mod:`repro.core.perf_model` / :mod:`repro.core.layout_search` /
  :mod:`repro.core.metadata` / :mod:`repro.core.lookup_table` /
  :mod:`repro.core.codegen` / :mod:`repro.core.pipeline` — Automatic Kernel
  Generation (§3.3).
"""

from repro.core.flatten import FlattenResult, flatten_stencil
from repro.core.morphing import MorphConfig, MorphResult, morph_stencil, assemble_output
from repro.core.staircase import (
    is_staircase,
    staircase_bandwidth,
    BlockStructure,
    block_structure_from_morph,
)
from repro.core.conflict import conflict_graph, conflict_matrix, ConflictGraphs, build_conflict_graphs
from repro.core.matching import (
    MatchingResult,
    hierarchical_matching,
    greedy_matching,
    blossom_matching,
    matching_to_permutation,
)
from repro.core.fusion import fuse_pattern, fused_iterations
from repro.core.pit import apply_pit, invert_permutation, pad_operands
from repro.core.conversion import ConversionResult, convert_to_24
from repro.core.perf_model import PerfEstimate, estimate_layout
from repro.core.layout_search import (
    LayoutCandidate,
    LayoutSearchResult,
    search_layout,
    search_layout_many,
)
from repro.core.metadata import SparseMetadata, build_metadata
from repro.core.lookup_table import LookupTable, build_lookup_table, gather_b_matrix
from repro.core.codegen import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelPlan,
    NumbaBackend,
    NumpyBackend,
    StencilBackend,
    TcuSimBackend,
    available_backends,
    generate_kernel,
    get_backend,
    register_backend,
    registered_backends,
    render_cuda_source,
    resolve_backend,
)
from repro.core.pipeline import (
    SparStencilCompiler,
    CompileOptions,
    CompiledStencil,
    StencilRunResult,
    compile_cached,
    compile_resolved,
    compile_stencil,
    resolve_compile_options,
    run_stencil,
)

__all__ = [
    "FlattenResult",
    "flatten_stencil",
    "MorphConfig",
    "MorphResult",
    "morph_stencil",
    "assemble_output",
    "is_staircase",
    "staircase_bandwidth",
    "BlockStructure",
    "block_structure_from_morph",
    "conflict_graph",
    "conflict_matrix",
    "ConflictGraphs",
    "build_conflict_graphs",
    "MatchingResult",
    "hierarchical_matching",
    "greedy_matching",
    "blossom_matching",
    "matching_to_permutation",
    "fuse_pattern",
    "fused_iterations",
    "apply_pit",
    "invert_permutation",
    "pad_operands",
    "ConversionResult",
    "convert_to_24",
    "PerfEstimate",
    "estimate_layout",
    "LayoutCandidate",
    "LayoutSearchResult",
    "search_layout",
    "search_layout_many",
    "SparseMetadata",
    "build_metadata",
    "LookupTable",
    "build_lookup_table",
    "gather_b_matrix",
    "KernelPlan",
    "generate_kernel",
    "render_cuda_source",
    "StencilBackend",
    "TcuSimBackend",
    "NumpyBackend",
    "NumbaBackend",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "registered_backends",
    "available_backends",
    "SparStencilCompiler",
    "CompileOptions",
    "CompiledStencil",
    "StencilRunResult",
    "compile_cached",
    "compile_resolved",
    "compile_stencil",
    "resolve_compile_options",
    "run_stencil",
]

"""Automatic Kernel Generation (§3.3): kernel plans, backends, CUDA-like source.

A :class:`KernelPlan` bundles everything the simulated device needs to run a
compiled stencil sweep — the converted kernel operand and its sparse
metadata, the lookup tables, the fragment/precision choice, the memory-traffic
estimate and the launch geometry — plus a rendered CUDA-C-like source string
mirroring the three-stage double-buffered pipeline the paper's generator
emits (async LUT-driven loads → sparse MMA with metadata → write-back).

The rendered source is illustrative output of the code generator (there is no
CUDA toolchain in this environment); the *plan* is what actually executes via
:mod:`repro.core.pipeline` on one of the registered **backends**.

Backends (the ctree-style frontend/backend split)
-------------------------------------------------
One kernel frontend — morphing, conversion, LUTs, the perf model — feeds
pluggable host execution backends, mirroring how the stencil_code lineage
hangs C/OpenMP/OpenCL transformers off a single kernel frontend:

* ``"tcu-sim"`` (the default) — the simulated sparse/dense Tensor-Core
  pipeline: per sweep, gather ``B'`` through the LUTs, run the fragment MMA
  on the functional device model, assemble the interior.  Slow on the host
  (it faithfully simulates the device data path) but it *is* the paper's
  pipeline, and every golden fixture freezes its numerics.
* ``"numpy"`` — a vectorised fast path: the effective (fused) kernel is
  applied directly as one shifted-view accumulation per tap, in float64.
  Elementwise and shape-independent, so sharded runs stay bit-identical to
  single-device; per-sweep device timing/utilisation are billed from the
  plan's roofline estimate, so modelled metrics stay comparable across
  backends.
* ``"numba"`` — a JIT-compiled flat-gather loop, registered only when the
  optional :mod:`numba` dependency imports.

Every backend executes the *same* :class:`KernelPlan` (the compile pipeline
is backend-independent); what changes is how a sweep is carried out on the
host.  The backend name joins the compile fingerprint
(:mod:`repro.service.fingerprint`), so caches can never serve a plan across
backends, and it is recorded in :class:`repro.session.Provenance`.

Tolerance contract: ``tcu-sim`` carries the simulated device's precision
(fp16/bf16/tf32 operand rounding with fp32 accumulation); ``numpy`` /
``numba`` compute in float64.  Outputs of any two backends therefore agree
within the *device* tolerance of the dtype (the ``ref_tol`` the golden suite
already uses against the float64 reference — e.g. ~2e-2 absolute for fp16
Table-2 workloads), and are bit-identical only where the math permits
(backends never reorder each other's summation).
"""

from __future__ import annotations

import abc
import importlib.util
import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.conversion import ConversionResult, convert_to_24
from repro.core.lookup_table import LookupTable, build_lookup_table
from repro.core.metadata import SparseMetadata, build_metadata
from repro.core.morphing import MorphConfig, morph_kernel_matrix
from repro.core.perf_model import PerfEstimate, estimate_layout
from repro.core.staircase import block_structure_from_morph
from repro.stencils.pattern import StencilPattern
from repro.tcu.counters import derive_utilization
from repro.tcu.executor import LaunchResult
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec, SPARSE_FRAGMENTS
from repro.util.validation import ValidationError, require, require_in

__all__ = [
    "KernelPlan",
    "generate_kernel",
    "render_cuda_source",
    "StencilBackend",
    "TcuSimBackend",
    "NumpyBackend",
    "NumbaBackend",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "registered_backends",
    "available_backends",
]

#: Per-thread register budgets of the generated kernels.  The sparse kernel
#: is register-lean (the compressed operand and metadata halve the A-fragment
#: footprint); the dense-TCU variant (ConvStencil-style execution) carries
#: roughly the register budget reported for hand-written dense-TCU stencil
#: kernels.  Recorded on the plan so executors carry no engine-specific
#: magic numbers.
SPARSE_KERNEL_REGISTERS = 32
DENSE_KERNEL_REGISTERS = 52


@dataclass(frozen=True)
class KernelPlan:
    """A fully lowered stencil kernel, ready for the simulated device."""

    pattern: StencilPattern
    grid_shape: Tuple[int, ...]
    config: MorphConfig
    fragment: FragmentShape
    dtype: DataType
    engine: str
    a_prime: np.ndarray
    a_operand: np.ndarray
    conversion: Optional[ConversionResult]
    metadata: Optional[SparseMetadata]
    lut: LookupTable
    estimate: PerfEstimate
    threads_per_block: int
    blocks: int
    registers_per_thread: int = SPARSE_KERNEL_REGISTERS
    cuda_source: str = ""

    @property
    def m_prime(self) -> int:
        return int(self.a_operand.shape[0])

    @property
    def k_operand(self) -> int:
        """Reduction depth of the operand actually issued to the MMA engine."""
        return int(self.a_operand.shape[1])

    @property
    def n_prime(self) -> int:
        return self.lut.n_prime

    def summary(self) -> dict:
        """Human-readable plan summary (used by examples and reports)."""
        return {
            "pattern": self.pattern.name,
            "grid": self.grid_shape,
            "engine": self.engine,
            "fragment": self.fragment.label,
            "dtype": self.dtype.value,
            "r1": self.config.r1,
            "r2": self.config.r2,
            "m_prime": self.m_prime,
            "k_prime": int(self.a_prime.shape[1]),
            "k_operand": self.k_operand,
            "n_prime": self.n_prime,
            "n_mma_per_sweep": self.estimate.n_mma,
            "sparsity": self.estimate.sparsity,
            "compute_density": self.estimate.compute_density,
            "modeled_sweep_seconds": self.estimate.t_total,
            "bound": self.estimate.bound,
        }


def _launch_geometry(plan_blocks_hint: Optional[Tuple[int, ...]],
                     n_prime: int, spec: GPUSpec) -> Tuple[int, int]:
    """Derive (threads_per_block, blocks) from a Table-2 block hint or defaults."""
    if plan_blocks_hint:
        threads = int(np.prod(plan_blocks_hint))
    else:
        threads = 256
    threads = max(32, min(1024, threads))
    blocks = max(1, min(spec.sm_count * 32, -(-n_prime // max(1, threads // 32))))
    return threads, blocks


def generate_kernel(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    config: MorphConfig,
    *,
    fragment: FragmentShape = SPARSE_FRAGMENTS[0],
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "sparse_mma",
    conversion_method: str = "auto",
    block_hint: Optional[Tuple[int, ...]] = None,
    render_source: bool = True,
    prebuilt_conversion: Optional[ConversionResult] = None,
    prebuilt_metadata: Optional[SparseMetadata] = None,
    prebuilt_lut: Optional[LookupTable] = None,
) -> KernelPlan:
    """Lower one (pattern, grid, layout) triple into a :class:`KernelPlan`.

    The ``prebuilt_*`` arguments let callers (notably
    :func:`repro.core.pipeline.compile_stencil`, which times each
    preprocessing stage separately for the Figure-8 overhead split) supply
    already-constructed pieces instead of rebuilding them here.
    """
    require_in(engine, ("sparse_mma", "dense_mma"), "engine")
    dtype = DataType(dtype)
    grid_shape = tuple(int(s) for s in grid_shape)

    a_prime = morph_kernel_matrix(pattern, config)

    conversion: Optional[ConversionResult] = None
    metadata: Optional[SparseMetadata] = None
    if engine == "sparse_mma":
        if prebuilt_conversion is not None:
            conversion = prebuilt_conversion
        else:
            structure = block_structure_from_morph(pattern, config)
            conversion = convert_to_24(a_prime, structure=structure,
                                       method=conversion_method)
        a_operand = conversion.a_converted
        metadata = prebuilt_metadata if prebuilt_metadata is not None \
            else build_metadata(a_operand)
    else:
        a_operand = a_prime

    lut = prebuilt_lut if prebuilt_lut is not None \
        else build_lookup_table(pattern, grid_shape, config)
    estimate = estimate_layout(
        pattern, grid_shape, config,
        fragment=fragment, dtype=dtype, spec=spec, engine=engine,
        conversion_method=conversion_method,
    )
    threads, blocks = _launch_geometry(block_hint, lut.n_prime, spec)

    plan = KernelPlan(
        pattern=pattern,
        grid_shape=grid_shape,
        config=config,
        fragment=fragment,
        dtype=dtype,
        engine=engine,
        a_prime=a_prime,
        a_operand=a_operand,
        conversion=conversion,
        metadata=metadata,
        lut=lut,
        estimate=estimate,
        threads_per_block=threads,
        blocks=blocks,
        registers_per_thread=(SPARSE_KERNEL_REGISTERS if engine == "sparse_mma"
                              else DENSE_KERNEL_REGISTERS),
        cuda_source="",
    )
    if render_source:
        object.__setattr__(plan, "cuda_source", render_cuda_source(plan))
    return plan


# --------------------------------------------------------------------------- #
# CUDA-like source rendering
# --------------------------------------------------------------------------- #
_KERNEL_TEMPLATE = """\
// Auto-generated by SparStencil (reproduction) — do not edit.
// pattern: {pattern} ({points} taps, {ndim}D, k={k})
// layout:  r1={r1}, r2={r2}  ->  A''[{m_prime} x {k_operand}]  B'[{k_operand} x {n_prime}]
// engine:  {engine}  fragment {fragment}  dtype {dtype}
#include <cuda_fp16.h>
#include <mma.h>

#define M_PRIME   {m_prime}
#define K_OPERAND {k_operand}
#define N_PRIME   {n_prime}
#define FRAG_M    {frag_m}
#define FRAG_K    {frag_k}
#define FRAG_N    {frag_n}
#define TILE_COLS {tile_cols}

// Host-precomputed lookup tables (§3.3): one flat base offset per tile column
// and one patch-relative offset per K element — no div/mod on the device.
__constant__ int lut_patch_offset[K_OPERAND];

extern "C" __global__ void sparstencil_{safe_name}(
    const {ctype}* __restrict__ input,       // padded input grid
    {ctype}* __restrict__ output,            // output grid (valid region)
    const {ctype}* __restrict__ a_values,    // compressed A'' values (K/2)
    const uint32_t* __restrict__ a_metadata, // 2-bit sparse indices
    const int* __restrict__ lut_column_base) // per-tile base offsets
{{
    extern __shared__ {ctype} smem[];
    {ctype}* buf[2] = {{ smem, smem + K_OPERAND * TILE_COLS }};

    const int tile0 = blockIdx.x * TILE_COLS;
    int stage = 0;

    // ---- stage 1: async LUT-driven prefetch of the first tile batch --------
    #pragma unroll
    for (int c = threadIdx.x; c < TILE_COLS; c += blockDim.x) {{
        const int base = lut_column_base[tile0 + c];
        for (int e = 0; e < K_OPERAND; ++e)
            __pipeline_memcpy_async(&buf[stage][e * TILE_COLS + c],
                                    &input[base + lut_patch_offset[e]],
                                    sizeof({ctype}));
    }}
    __pipeline_commit();

    for (int col = tile0; col < min(tile0 + TILE_COLS, N_PRIME); col += FRAG_N) {{
        __pipeline_wait_prior(0);
        __syncthreads();

        // ---- stage 2: sparse MMA over the K fragments -----------------------
        float acc[FRAG_M * FRAG_N / 32] = {{0.f}};
        #pragma unroll
        for (int kk = 0; kk < K_OPERAND; kk += FRAG_K) {{
            asm volatile(
                "{mma_instruction}\\n"
                : "+f"(acc[0]), "+f"(acc[1]), "+f"(acc[2]), "+f"(acc[3])
                : "r"(__cvta_generic_to_shared(&buf[stage][kk * TILE_COLS])),
                  "l"(a_values), "r"(a_metadata[kk / FRAG_K]));
        }}

        // ---- stage 3: write back while the next batch streams in ------------
        stage ^= 1;
        #pragma unroll
        for (int row = threadIdx.x / 32; row < M_PRIME; row += blockDim.x / 32)
            output[/* tile-major store, assembled on the host side */
                   (size_t)col * M_PRIME + row] = ({ctype})acc[row % 4];
    }}
}}
"""


def render_cuda_source(plan: KernelPlan) -> str:
    """Render the CUDA-C-like kernel source for a plan."""
    if plan.engine == "sparse_mma":
        mma = (f"mma.sp.sync.aligned.m{plan.fragment.m}n{plan.fragment.n}"
               f"k{plan.fragment.k}.row.col.f32.f16.f16.f32")
    else:
        mma = (f"mma.sync.aligned.m{plan.fragment.m}n{plan.fragment.n}"
               f"k{plan.fragment.k}.row.col.f32.f16.f16.f32")
    ctype = {"fp16": "__half", "bf16": "__nv_bfloat16",
             "tf32": "float", "fp64": "double"}[plan.dtype.value]
    safe_name = plan.pattern.name.replace("-", "_").replace("/", "_")
    return _KERNEL_TEMPLATE.format(
        pattern=plan.pattern.name,
        points=plan.pattern.points,
        ndim=plan.pattern.ndim,
        k=plan.pattern.diameter,
        r1=plan.config.r1,
        r2=plan.config.r2,
        m_prime=plan.m_prime,
        k_operand=plan.k_operand,
        n_prime=plan.n_prime,
        engine=plan.engine,
        fragment=plan.fragment.label,
        dtype=plan.dtype.value,
        frag_m=plan.fragment.m,
        frag_k=plan.fragment.k,
        frag_n=plan.fragment.n,
        tile_cols=max(plan.fragment.n, 32),
        ctype=ctype,
        safe_name=safe_name,
        mma_instruction=mma,
    )


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
#: The backend compile options resolve to when neither the caller nor the
#: environment picks one.
DEFAULT_BACKEND = "tcu-sim"

#: Environment override for the default backend (the CI backend matrix runs
#: the test suite once per registered backend through this variable).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class StencilBackend(abc.ABC):
    """One way to execute a compiled plan's sweeps on the host.

    The compile pipeline is backend-independent: every backend receives the
    same fully lowered :class:`KernelPlan` (via the engine layer's
    ``SweepContext``) and must preserve the functional sweep contract —
    ``current[interior]`` advances by one application of the plan's
    (possibly fused) pattern, the halo ring is left untouched (boundary
    handling belongs to the executor) — while returning a
    :class:`~repro.tcu.executor.LaunchResult` carrying the sweep's modelled
    device timing and utilisation.
    """

    #: Registry key; also what ``CompileOptions.backend`` stores and the
    #: compile fingerprint hashes.
    name: str = "backend"
    description: str = ""

    def is_available(self) -> bool:
        """Whether this backend can run in the current environment.

        Backends gated on optional dependencies (``numba``) report ``False``
        instead of failing at import time; resolving an unavailable backend
        raises a :class:`~repro.util.validation.ValidationError`.
        """
        return True

    @abc.abstractmethod
    def make_sweep(self, context: "Any") -> Callable[[np.ndarray], LaunchResult]:
        """Build the per-sweep callable for one prepared plan.

        ``context`` is a :class:`repro.engine.base.SweepContext` (duck-typed
        here to keep the core → engine dependency one-way).  The returned
        callable mutates the grid array in place and returns the sweep's
        :class:`LaunchResult`.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _modelled_launch(context: "Any") -> LaunchResult:
    """A :class:`LaunchResult` billing the plan's roofline estimate.

    Host-side backends (``numpy`` / ``numba``) skip the functional device
    simulation, so they have no measured fragment path to derive timing
    from; they bill the same per-sweep model
    (:class:`~repro.core.perf_model.PerfEstimate`) the layout search and the
    device-pool scheduler already trust, keeping modelled metrics — and the
    scheduler's single-vs-sharded estimates — comparable across backends.
    ``output`` is ``None``: the sweep assembles the interior in place.
    """
    plan = context.plan
    estimate: PerfEstimate = plan.estimate
    elapsed = max(estimate.t_total, 1e-30)
    utilization = derive_utilization(
        compute_seconds=estimate.t_compute,
        memory_seconds=estimate.t_memory,
        elapsed_seconds=elapsed,
        traffic=estimate.traffic,
        spec=context.spec,
        threads_per_block=plan.threads_per_block,
        blocks=plan.blocks,
        registers_per_thread=plan.registers_per_thread,
    )
    return LaunchResult(
        name=context.launch_name,
        output=None,
        elapsed_seconds=elapsed,
        compute_seconds=estimate.t_compute,
        memory_seconds=estimate.t_memory,
        fragment_ops=estimate.n_mma,
        utilization=utilization,
    )


class TcuSimBackend(StencilBackend):
    """The simulated-Tensor-Core pipeline (the paper's execution path)."""

    name = "tcu-sim"
    description = ("gather B' through the LUTs, sparse/dense fragment MMA on "
                   "the functional device model, assemble the interior")

    def make_sweep(self, context):
        # Imported lazily: repro.engine.base imports this module (via
        # core.pipeline), so a module-level import would be circular.
        from repro.engine.base import assemble_step, gather_step, mma_step

        def sweep(current: np.ndarray) -> LaunchResult:
            b_operand = gather_step(context, current)
            result = mma_step(context, b_operand)
            assemble_step(context, result, current)
            return result

        return sweep


class NumpyBackend(StencilBackend):
    """Vectorised float64 fast path: the raw-speed lever.

    The sweep accumulates one shifted view of the grid per tap, in the
    pattern's fixed tap order.  Every operation is elementwise, so each
    output cell's value depends only on its stencil neighbourhood and the
    tap order — **never on the array's shape**.  That shape-independence is
    load-bearing: the sharded engine runs the same plan on shard-shaped
    subgrids, and the repo-wide invariant that sharded output is
    bit-identical to single-device holds only because the sweep computes
    the same bits on a (50, 96) shard as on the (96, 96) grid.  A
    ``sliding_window_view`` + ``tensordot`` contraction would be faster for
    dense (box-like) kernels, but it lowers to a BLAS matmul whose
    reduction order varies with operand shape, breaking that invariant at
    the ULP level — so the tap loop is the only path.
    """

    name = "numpy"
    description = ("direct vectorised sweep: one shifted-view accumulation "
                   "per tap, elementwise and shape-independent")

    def make_sweep(self, context):
        compiled = context.compiled
        pattern = compiled.pattern  # the effective (fused) pattern
        shape = compiled.grid_shape
        radius = pattern.radius
        interior = context.interior
        template = _modelled_launch(context)

        taps = [
            (float(weight),
             tuple(slice(radius + off, size - radius + off)
                   for off, size in zip(offsets, shape)))
            for offsets, weight in zip(pattern.offsets, pattern.weights)
        ]

        def sweep(current: np.ndarray) -> LaunchResult:
            first_weight, first_view = taps[0]
            acc = first_weight * current[first_view]
            for weight, view in taps[1:]:
                acc += weight * current[view]
            current[interior] = acc
            return template

        return sweep


#: Process-wide memo of the JIT-compiled numba gather kernel (compiled once,
#: reused by every plan).
_NUMBA_KERNEL: Optional[Callable] = None
_NUMBA_KERNEL_LOCK = threading.Lock()


def _numba_kernel() -> Callable:
    global _NUMBA_KERNEL
    with _NUMBA_KERNEL_LOCK:
        if _NUMBA_KERNEL is None:
            import numba

            @numba.njit(parallel=True, cache=False)
            def kernel(flat, base_idx, tap_offsets, weights, out):  # pragma: no cover - needs numba
                for i in numba.prange(base_idx.size):
                    acc = 0.0
                    base = base_idx[i]
                    for j in range(tap_offsets.size):
                        acc += weights[j] * flat[base + tap_offsets[j]]
                    out[i] = acc

            _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


class NumbaBackend(StencilBackend):
    """JIT flat-gather sweep, gated on the optional :mod:`numba` import.

    Every tap becomes one flat offset into the raveled grid; the JIT kernel
    gathers and accumulates per interior cell in parallel.  Registered
    unconditionally but :meth:`is_available` only when ``numba`` imports, so
    environments without the dependency simply cannot resolve it.
    """

    name = "numba"
    description = "numba-JIT flat-gather sweep over precomputed tap offsets"

    def is_available(self) -> bool:
        return importlib.util.find_spec("numba") is not None

    def make_sweep(self, context):  # pragma: no cover - exercised only with numba installed
        compiled = context.compiled
        pattern = compiled.pattern
        shape = compiled.grid_shape
        radius = pattern.radius
        interior = context.interior
        template = _modelled_launch(context)

        strides = np.asarray(
            [int(np.prod(shape[axis + 1:], dtype=np.int64))
             for axis in range(len(shape))], dtype=np.int64)
        tap_offsets = np.asarray(
            [int(np.dot(offsets, strides)) for offsets in pattern.offsets],
            dtype=np.int64)
        weights = np.asarray(pattern.weights, dtype=np.float64)
        interior_shape = tuple(size - 2 * radius for size in shape)
        mesh = np.meshgrid(*[np.arange(radius, size - radius)
                             for size in shape], indexing="ij")
        base_idx = np.ravel_multi_index(
            tuple(m.reshape(-1) for m in mesh), shape).astype(np.int64)
        kernel = _numba_kernel()

        def sweep(current: np.ndarray) -> LaunchResult:
            flat = np.ascontiguousarray(current).reshape(-1)
            out = np.empty(base_idx.size, dtype=np.float64)
            kernel(flat, base_idx, tap_offsets, weights, out)
            current[interior] = out.reshape(interior_shape)
            return template

        return sweep


_BACKENDS: Dict[str, StencilBackend] = {}
_BACKENDS_LOCK = threading.Lock()


def register_backend(backend: StencilBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry under ``backend.name``."""
    require(isinstance(backend, StencilBackend),
            f"backend must be a StencilBackend, got {type(backend).__name__}")
    require(isinstance(backend.name, str) and backend.name != "",
            "backend.name must be a non-empty string")
    with _BACKENDS_LOCK:
        if not replace and backend.name in _BACKENDS:
            raise ValidationError(
                f"backend {backend.name!r} already registered "
                f"(pass replace=True to override)")
        _BACKENDS[backend.name] = backend


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, available or not."""
    with _BACKENDS_LOCK:
        return tuple(_BACKENDS)


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose dependencies import in this environment."""
    with _BACKENDS_LOCK:
        backends = list(_BACKENDS.values())
    return tuple(b.name for b in backends if b.is_available())


def get_backend(name: str) -> StencilBackend:
    """Look up one registered, available backend by name."""
    with _BACKENDS_LOCK:
        backend = _BACKENDS.get(name)
    if backend is None:
        raise ValidationError(
            f"unknown backend {name!r}; registered: "
            f"{sorted(registered_backends())}")
    if not backend.is_available():
        raise ValidationError(
            f"backend {name!r} is registered but unavailable in this "
            f"environment (missing optional dependency?); available: "
            f"{sorted(available_backends())}")
    return backend


def resolve_backend(name: Optional[str] = None) -> str:
    """Canonicalise a backend request to a registered, available name.

    ``None`` falls back to the ``REPRO_BACKEND`` environment override, then
    to :data:`DEFAULT_BACKEND` — which is how the CI backend matrix pivots a
    whole test run onto one backend without touching call sites.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(name).name


register_backend(TcuSimBackend())
register_backend(NumpyBackend())
register_backend(NumbaBackend())

"""Automatic Kernel Generation (§3.3): kernel plans and CUDA-like source.

A :class:`KernelPlan` bundles everything the simulated device needs to run a
compiled stencil sweep — the converted kernel operand and its sparse
metadata, the lookup tables, the fragment/precision choice, the memory-traffic
estimate and the launch geometry — plus a rendered CUDA-C-like source string
mirroring the three-stage double-buffered pipeline the paper's generator
emits (async LUT-driven loads → sparse MMA with metadata → write-back).

The rendered source is illustrative output of the code generator (there is no
CUDA toolchain in this environment); the *plan* is what actually executes on
the simulator via :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.conversion import ConversionResult, convert_to_24
from repro.core.lookup_table import LookupTable, build_lookup_table
from repro.core.metadata import SparseMetadata, build_metadata
from repro.core.morphing import MorphConfig, morph_kernel_matrix
from repro.core.perf_model import PerfEstimate, estimate_layout
from repro.core.staircase import block_structure_from_morph
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec, SPARSE_FRAGMENTS
from repro.util.validation import require, require_in

__all__ = ["KernelPlan", "generate_kernel", "render_cuda_source"]

#: Per-thread register budgets of the generated kernels.  The sparse kernel
#: is register-lean (the compressed operand and metadata halve the A-fragment
#: footprint); the dense-TCU variant (ConvStencil-style execution) carries
#: roughly the register budget reported for hand-written dense-TCU stencil
#: kernels.  Recorded on the plan so executors carry no engine-specific
#: magic numbers.
SPARSE_KERNEL_REGISTERS = 32
DENSE_KERNEL_REGISTERS = 52


@dataclass(frozen=True)
class KernelPlan:
    """A fully lowered stencil kernel, ready for the simulated device."""

    pattern: StencilPattern
    grid_shape: Tuple[int, ...]
    config: MorphConfig
    fragment: FragmentShape
    dtype: DataType
    engine: str
    a_prime: np.ndarray
    a_operand: np.ndarray
    conversion: Optional[ConversionResult]
    metadata: Optional[SparseMetadata]
    lut: LookupTable
    estimate: PerfEstimate
    threads_per_block: int
    blocks: int
    registers_per_thread: int = SPARSE_KERNEL_REGISTERS
    cuda_source: str = ""

    @property
    def m_prime(self) -> int:
        return int(self.a_operand.shape[0])

    @property
    def k_operand(self) -> int:
        """Reduction depth of the operand actually issued to the MMA engine."""
        return int(self.a_operand.shape[1])

    @property
    def n_prime(self) -> int:
        return self.lut.n_prime

    def summary(self) -> dict:
        """Human-readable plan summary (used by examples and reports)."""
        return {
            "pattern": self.pattern.name,
            "grid": self.grid_shape,
            "engine": self.engine,
            "fragment": self.fragment.label,
            "dtype": self.dtype.value,
            "r1": self.config.r1,
            "r2": self.config.r2,
            "m_prime": self.m_prime,
            "k_prime": int(self.a_prime.shape[1]),
            "k_operand": self.k_operand,
            "n_prime": self.n_prime,
            "n_mma_per_sweep": self.estimate.n_mma,
            "sparsity": self.estimate.sparsity,
            "compute_density": self.estimate.compute_density,
            "modeled_sweep_seconds": self.estimate.t_total,
            "bound": self.estimate.bound,
        }


def _launch_geometry(plan_blocks_hint: Optional[Tuple[int, ...]],
                     n_prime: int, spec: GPUSpec) -> Tuple[int, int]:
    """Derive (threads_per_block, blocks) from a Table-2 block hint or defaults."""
    if plan_blocks_hint:
        threads = int(np.prod(plan_blocks_hint))
    else:
        threads = 256
    threads = max(32, min(1024, threads))
    blocks = max(1, min(spec.sm_count * 32, -(-n_prime // max(1, threads // 32))))
    return threads, blocks


def generate_kernel(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    config: MorphConfig,
    *,
    fragment: FragmentShape = SPARSE_FRAGMENTS[0],
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "sparse_mma",
    conversion_method: str = "auto",
    block_hint: Optional[Tuple[int, ...]] = None,
    render_source: bool = True,
    prebuilt_conversion: Optional[ConversionResult] = None,
    prebuilt_metadata: Optional[SparseMetadata] = None,
    prebuilt_lut: Optional[LookupTable] = None,
) -> KernelPlan:
    """Lower one (pattern, grid, layout) triple into a :class:`KernelPlan`.

    The ``prebuilt_*`` arguments let callers (notably
    :func:`repro.core.pipeline.compile_stencil`, which times each
    preprocessing stage separately for the Figure-8 overhead split) supply
    already-constructed pieces instead of rebuilding them here.
    """
    require_in(engine, ("sparse_mma", "dense_mma"), "engine")
    dtype = DataType(dtype)
    grid_shape = tuple(int(s) for s in grid_shape)

    a_prime = morph_kernel_matrix(pattern, config)

    conversion: Optional[ConversionResult] = None
    metadata: Optional[SparseMetadata] = None
    if engine == "sparse_mma":
        if prebuilt_conversion is not None:
            conversion = prebuilt_conversion
        else:
            structure = block_structure_from_morph(pattern, config)
            conversion = convert_to_24(a_prime, structure=structure,
                                       method=conversion_method)
        a_operand = conversion.a_converted
        metadata = prebuilt_metadata if prebuilt_metadata is not None \
            else build_metadata(a_operand)
    else:
        a_operand = a_prime

    lut = prebuilt_lut if prebuilt_lut is not None \
        else build_lookup_table(pattern, grid_shape, config)
    estimate = estimate_layout(
        pattern, grid_shape, config,
        fragment=fragment, dtype=dtype, spec=spec, engine=engine,
        conversion_method=conversion_method,
    )
    threads, blocks = _launch_geometry(block_hint, lut.n_prime, spec)

    plan = KernelPlan(
        pattern=pattern,
        grid_shape=grid_shape,
        config=config,
        fragment=fragment,
        dtype=dtype,
        engine=engine,
        a_prime=a_prime,
        a_operand=a_operand,
        conversion=conversion,
        metadata=metadata,
        lut=lut,
        estimate=estimate,
        threads_per_block=threads,
        blocks=blocks,
        registers_per_thread=(SPARSE_KERNEL_REGISTERS if engine == "sparse_mma"
                              else DENSE_KERNEL_REGISTERS),
        cuda_source="",
    )
    if render_source:
        object.__setattr__(plan, "cuda_source", render_cuda_source(plan))
    return plan


# --------------------------------------------------------------------------- #
# CUDA-like source rendering
# --------------------------------------------------------------------------- #
_KERNEL_TEMPLATE = """\
// Auto-generated by SparStencil (reproduction) — do not edit.
// pattern: {pattern} ({points} taps, {ndim}D, k={k})
// layout:  r1={r1}, r2={r2}  ->  A''[{m_prime} x {k_operand}]  B'[{k_operand} x {n_prime}]
// engine:  {engine}  fragment {fragment}  dtype {dtype}
#include <cuda_fp16.h>
#include <mma.h>

#define M_PRIME   {m_prime}
#define K_OPERAND {k_operand}
#define N_PRIME   {n_prime}
#define FRAG_M    {frag_m}
#define FRAG_K    {frag_k}
#define FRAG_N    {frag_n}
#define TILE_COLS {tile_cols}

// Host-precomputed lookup tables (§3.3): one flat base offset per tile column
// and one patch-relative offset per K element — no div/mod on the device.
__constant__ int lut_patch_offset[K_OPERAND];

extern "C" __global__ void sparstencil_{safe_name}(
    const {ctype}* __restrict__ input,       // padded input grid
    {ctype}* __restrict__ output,            // output grid (valid region)
    const {ctype}* __restrict__ a_values,    // compressed A'' values (K/2)
    const uint32_t* __restrict__ a_metadata, // 2-bit sparse indices
    const int* __restrict__ lut_column_base) // per-tile base offsets
{{
    extern __shared__ {ctype} smem[];
    {ctype}* buf[2] = {{ smem, smem + K_OPERAND * TILE_COLS }};

    const int tile0 = blockIdx.x * TILE_COLS;
    int stage = 0;

    // ---- stage 1: async LUT-driven prefetch of the first tile batch --------
    #pragma unroll
    for (int c = threadIdx.x; c < TILE_COLS; c += blockDim.x) {{
        const int base = lut_column_base[tile0 + c];
        for (int e = 0; e < K_OPERAND; ++e)
            __pipeline_memcpy_async(&buf[stage][e * TILE_COLS + c],
                                    &input[base + lut_patch_offset[e]],
                                    sizeof({ctype}));
    }}
    __pipeline_commit();

    for (int col = tile0; col < min(tile0 + TILE_COLS, N_PRIME); col += FRAG_N) {{
        __pipeline_wait_prior(0);
        __syncthreads();

        // ---- stage 2: sparse MMA over the K fragments -----------------------
        float acc[FRAG_M * FRAG_N / 32] = {{0.f}};
        #pragma unroll
        for (int kk = 0; kk < K_OPERAND; kk += FRAG_K) {{
            asm volatile(
                "{mma_instruction}\\n"
                : "+f"(acc[0]), "+f"(acc[1]), "+f"(acc[2]), "+f"(acc[3])
                : "r"(__cvta_generic_to_shared(&buf[stage][kk * TILE_COLS])),
                  "l"(a_values), "r"(a_metadata[kk / FRAG_K]));
        }}

        // ---- stage 3: write back while the next batch streams in ------------
        stage ^= 1;
        #pragma unroll
        for (int row = threadIdx.x / 32; row < M_PRIME; row += blockDim.x / 32)
            output[/* tile-major store, assembled on the host side */
                   (size_t)col * M_PRIME + row] = ({ctype})acc[row % 4];
    }}
}}
"""


def render_cuda_source(plan: KernelPlan) -> str:
    """Render the CUDA-C-like kernel source for a plan."""
    if plan.engine == "sparse_mma":
        mma = (f"mma.sp.sync.aligned.m{plan.fragment.m}n{plan.fragment.n}"
               f"k{plan.fragment.k}.row.col.f32.f16.f16.f32")
    else:
        mma = (f"mma.sync.aligned.m{plan.fragment.m}n{plan.fragment.n}"
               f"k{plan.fragment.k}.row.col.f32.f16.f16.f32")
    ctype = {"fp16": "__half", "bf16": "__nv_bfloat16",
             "tf32": "float", "fp64": "double"}[plan.dtype.value]
    safe_name = plan.pattern.name.replace("-", "_").replace("/", "_")
    return _KERNEL_TEMPLATE.format(
        pattern=plan.pattern.name,
        points=plan.pattern.points,
        ndim=plan.pattern.ndim,
        k=plan.pattern.diameter,
        r1=plan.config.r1,
        r2=plan.config.r2,
        m_prime=plan.m_prime,
        k_operand=plan.k_operand,
        n_prime=plan.n_prime,
        engine=plan.engine,
        fragment=plan.fragment.label,
        dtype=plan.dtype.value,
        frag_m=plan.fragment.m,
        frag_k=plan.fragment.k,
        frag_n=plan.fragment.n,
        tile_cols=max(plan.fragment.n, 32),
        ctype=ctype,
        safe_name=safe_name,
        mma_instruction=mma,
    )

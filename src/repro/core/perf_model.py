"""Analytical performance model (§3.3, Eq. 6–10 and Table 1).

The model evaluates one candidate layout ``(r1, r2)`` without executing
anything: it derives the morphed operand shapes, runs the (cheap, exact)
structured-sparsity conversion on the kernel matrix to learn the padded
reduction depth, and converts fragment counts plus memory volumes into the
roofline time ``T = max(T_compute, T_memory)``.

The same estimate later feeds the simulated end-to-end timing, so the layout
the search picks is optimal *for the simulator by construction* — the role
the model plays for the real GPU in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.conversion import ConversionResult, convert_to_24
from repro.core.morphing import MorphConfig, morph_kernel_matrix, morphed_shapes
from repro.core.staircase import block_structure_from_morph
from repro.stencils.pattern import StencilPattern
from repro.tcu.memory import MemoryTraffic, memory_time
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec, SPARSE_FRAGMENTS
from repro.tcu.timing import compute_time, mma_count
from repro.util.validation import require, require_in

__all__ = ["PerfEstimate", "estimate_layout"]


@dataclass(frozen=True)
class PerfEstimate:
    """Model outputs for one candidate layout.

    All times are seconds for a single stencil sweep over the full grid.
    """

    config: MorphConfig
    fragment: FragmentShape
    dtype: DataType
    engine: str
    m_prime: int
    k_prime: int
    k_padded: int
    n_prime: int
    n_mma: int
    t_compute: float
    t_memory: float
    traffic: MemoryTraffic
    sparsity: float
    compute_density: float
    conversion: Optional[ConversionResult]

    @property
    def t_total(self) -> float:
        """Eq. 6: the roofline maximum of compute and memory time."""
        return max(self.t_compute, self.t_memory)

    @property
    def bound(self) -> str:
        return "compute" if self.t_compute >= self.t_memory else "memory"

    @property
    def r1(self) -> int:
        return self.config.r1

    @property
    def r2(self) -> int:
        return self.config.r2


def estimate_layout(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    config: MorphConfig,
    *,
    fragment: FragmentShape = SPARSE_FRAGMENTS[0],
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "sparse_mma",
    conversion_method: str = "auto",
) -> PerfEstimate:
    """Evaluate the analytical model for one layout candidate.

    Parameters
    ----------
    engine:
        ``"sparse_mma"`` — 2:4 conversion is performed and the sparse
        Tensor-Core rate is used (requires a sparse-capable dtype);
        ``"dense_mma"`` — the morphed operands run on dense Tensor Cores
        (the ConvStencil-style execution and the FP64 path of Table 3).
    """
    require_in(engine, ("sparse_mma", "dense_mma"), "engine")
    dtype = DataType(dtype)
    if engine == "sparse_mma":
        require(dtype.supports_sparse_tcu,
                f"{dtype.value} is not supported by sparse Tensor Cores; "
                "use engine='dense_mma'")
        require(fragment.sparse, "sparse_mma estimation needs a sparse fragment")
    else:
        require(not fragment.sparse, "dense_mma estimation needs a dense fragment")

    m_prime, k_prime, n_prime = morphed_shapes(pattern, grid_shape, config)

    conversion: Optional[ConversionResult] = None
    if engine == "sparse_mma":
        a_prime = morph_kernel_matrix(pattern, config)
        structure = block_structure_from_morph(pattern, config)
        conversion = convert_to_24(a_prime, structure=structure,
                                   method=conversion_method)
        k_padded = conversion.n_total
        sparsity = conversion.sparsity()
    else:
        a_prime = morph_kernel_matrix(pattern, config)
        k_padded = k_prime
        sparsity = 1.0 - np.count_nonzero(a_prime) / a_prime.size

    n_mma = mma_count(m_prime, k_padded, n_prime, fragment)
    t_compute = compute_time(n_mma, spec, fragment, dtype=dtype)

    itemsize = dtype.itemsize
    outputs = int(np.prod([s - pattern.diameter + 1 for s in grid_shape]))
    # Eq. 8 inputs: the original grid is read once and the outputs written once
    # per sweep; shared-memory staging follows Eq. 10 with the padded depth.
    data_r = float(np.prod(grid_shape)) * itemsize
    data_w = float(outputs) * itemsize
    data_trans = float(k_padded) * (m_prime / 2.0 + n_prime) * itemsize
    # Lookup tables, the (tiny) kernel operand and its 2-bit metadata are
    # copied to the device once per compilation and stay resident in L1/L2,
    # so they are not charged per sweep; their one-time cost shows up in the
    # Figure-8 overhead analysis instead.
    traffic = MemoryTraffic(
        global_read_bytes=data_r,
        global_write_bytes=data_w,
        shared_read_bytes=data_trans,
        shared_write_bytes=data_trans,
    )
    t_memory = memory_time(traffic, spec)

    useful_flops = 2.0 * pattern.points * outputs
    issued_flops = 2.0 * n_mma * fragment.macs
    compute_density = useful_flops / issued_flops if issued_flops else 0.0

    return PerfEstimate(
        config=config,
        fragment=fragment,
        dtype=dtype,
        engine=engine,
        m_prime=m_prime,
        k_prime=k_prime,
        k_padded=k_padded,
        n_prime=n_prime,
        n_mma=n_mma,
        t_compute=t_compute,
        t_memory=t_memory,
        traffic=traffic,
        sparsity=float(sparsity),
        compute_density=float(compute_density),
        conversion=conversion,
    )

"""Sparse metadata generation (§3.3, "Metadata").

``mma.sp`` consumes, alongside the compressed A values, a metadata word
stream holding the 2-bit in-group index of every retained element.  The
kernel generator produces this once per compiled stencil (the kernel matrix
is iteration-invariant), and the preprocessing-overhead analysis of Figure 8
charges its construction cost to the "MD" category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tcu.sparsity24 import Compressed24, compress_24
from repro.util.validation import require, require_array

__all__ = ["SparseMetadata", "build_metadata", "pack_indices", "unpack_indices"]


def pack_indices(indices: np.ndarray) -> np.ndarray:
    """Pack 2-bit indices into uint32 words (16 indices per word, row-major).

    Rows are padded with zero indices so each row starts on a word boundary,
    matching how the hardware expects per-row metadata alignment.
    """
    indices = require_array(indices, "indices", ndim=2)
    require(np.all((indices >= 0) & (indices <= 3)), "indices must be 2-bit values")
    m, half_k = indices.shape
    per_word = 16
    words_per_row = -(-half_k // per_word)
    padded = np.zeros((m, words_per_row * per_word), dtype=np.uint32)
    padded[:, :half_k] = indices.astype(np.uint32)
    shifts = (2 * (np.arange(per_word, dtype=np.uint32)))[None, None, :]
    grouped = padded.reshape(m, words_per_row, per_word)
    return np.bitwise_or.reduce(grouped << shifts, axis=2)


def unpack_indices(words: np.ndarray, half_k: int) -> np.ndarray:
    """Inverse of :func:`pack_indices` (drops the per-row padding)."""
    words = require_array(words, "words", ndim=2)
    m, words_per_row = words.shape
    per_word = 16
    shifts = (2 * np.arange(per_word, dtype=np.uint32))[None, None, :]
    unpacked = (words[:, :, None] >> shifts) & np.uint32(0x3)
    unpacked = unpacked.reshape(m, words_per_row * per_word)
    return unpacked[:, :half_k].astype(np.uint8)


@dataclass(frozen=True)
class SparseMetadata:
    """Compressed kernel operand plus its packed hardware metadata."""

    compressed: Compressed24
    packed_words: np.ndarray

    @property
    def values(self) -> np.ndarray:
        return self.compressed.values

    @property
    def nbytes(self) -> int:
        """Device bytes occupied by the packed metadata words."""
        return int(self.packed_words.nbytes)

    def roundtrip_ok(self) -> bool:
        """Verify the packed words decode back to the raw 2-bit indices."""
        decoded = unpack_indices(self.packed_words, self.compressed.indices.shape[1])
        return bool(np.array_equal(decoded, self.compressed.indices))


def build_metadata(a_converted: np.ndarray) -> SparseMetadata:
    """Compress a 2:4 kernel matrix and pack its metadata words."""
    compressed = compress_24(a_converted)
    packed = pack_indices(compressed.indices)
    return SparseMetadata(compressed=compressed, packed_words=packed)

"""Structured Sparsity Conversion (§3.2).

Turns the staircase kernel matrix ``A'`` produced by layout morphing into a
2:4-compliant matrix ``A''`` by

1. building the (two-level) column conflict graph,
2. pairing conflict-free columns — Hierarchical Two-Level Matching when the
   self-similar staircase structure is available, Blossom otherwise,
3. inserting the required all-zero columns and applying the Permutation
   Invariant Transformation so matched pairs land in adjacent K slots.

The returned :class:`ConversionResult` also knows how to apply the same
row permutation to any input matrix ``B'`` (done once per sweep by the
generated kernel), preserving ``A' @ B' = A'' @ B''`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.matching import (
    MatchingResult,
    blossom_matching,
    greedy_matching,
    hierarchical_matching,
    matching_to_permutation,
)
from repro.core.pit import apply_pit, pad_operands
from repro.core.staircase import BlockStructure
from repro.tcu.sparsity24 import is_24_sparse, sparsity_ratio
from repro.util.validation import require, require_array, require_in

__all__ = ["ConversionResult", "convert_to_24"]


@dataclass(frozen=True)
class ConversionResult:
    """Outcome of Structured Sparsity Conversion.

    Attributes
    ----------
    a_converted:
        ``(m', n_total)`` kernel matrix satisfying the 2:4 constraint.
    permutation:
        Length-``n_total`` index array over the zero-padded column space;
        entries ``< n_original`` are original columns of ``A'``.
    n_original:
        Column count of the un-padded ``A'`` (the logical reduction depth).
    n_total:
        Padded column count (multiple of 4).
    matching:
        The column pairing that produced the permutation.
    method:
        Matching method actually used (``"hierarchical"`` or ``"blossom"``).
    """

    a_converted: np.ndarray
    permutation: np.ndarray
    n_original: int
    n_total: int
    matching: MatchingResult
    method: str

    @property
    def n_pad(self) -> int:
        """Zero columns inserted (including the round-up to a multiple of 4)."""
        return self.n_total - self.n_original

    @property
    def scatter_rows(self) -> np.ndarray:
        """Destination row (in the permuted space) of each original B' row.

        ``b_converted[scatter_rows[i]] = b_prime[i]`` reproduces
        :meth:`apply_to_b` without materialising the padded matrix first —
        this is what the generated kernel's lookup table encodes.
        """
        positions = np.empty(self.n_original, dtype=np.int64)
        for slot, source in enumerate(self.permutation):
            if source < self.n_original:
                positions[source] = slot
        return positions

    def apply_to_b(self, b_prime: np.ndarray) -> np.ndarray:
        """Pad and permute an input matrix ``B'`` to match ``a_converted``."""
        b_prime = require_array(b_prime, "b_prime", ndim=2)
        require(b_prime.shape[0] == self.n_original,
                f"B' has {b_prime.shape[0]} rows, expected {self.n_original}")
        b_converted = np.zeros((self.n_total, b_prime.shape[1]),
                               dtype=b_prime.dtype)
        b_converted[self.scatter_rows] = b_prime
        return b_converted

    def sparsity(self) -> float:
        """Zero fraction of the converted kernel matrix."""
        return sparsity_ratio(self.a_converted)


def _validate(a_prime: np.ndarray, matching: MatchingResult) -> bool:
    """Definition 3 checks: coverage and conflict-freedom."""
    return matching.is_cover() and matching.is_conflict_free(a_prime)


def convert_to_24(
    a_prime: np.ndarray,
    *,
    structure: Optional[BlockStructure] = None,
    method: str = "auto",
) -> ConversionResult:
    """Convert a morphed kernel matrix to 2:4 structured sparsity.

    Parameters
    ----------
    a_prime:
        The ``(m', k')`` staircase kernel matrix from layout morphing.
    structure:
        Block structure of ``a_prime`` (from
        :func:`repro.core.staircase.block_structure_from_morph`).  Required for
        the hierarchical method; optional otherwise.
    method:
        ``"hierarchical"`` — Algorithm 1, requires ``structure`` and raises if
        the produced matching is invalid for this matrix;
        ``"greedy"`` — first-fit pairing on the conflict graph (fast, near
        optimal on banded conflict structures);
        ``"blossom"`` — general maximum matching on the conflict-graph
        complement (optimal padding, cubic worst case);
        ``"auto"`` — hierarchical when a structure is supplied and valid;
        otherwise Blossom for small matrices and greedy for large ones (the
        §3.2 fallback behaviour, bounded so compilation stays fast).
    """
    a_prime = require_array(a_prime, "a_prime", ndim=2)
    require_in(method, ("auto", "hierarchical", "greedy", "blossom"), "method")

    #: Above this column count `auto` prefers the quadratic greedy fallback
    #: over Blossom, whose worst case is cubic in the column count.
    blossom_column_limit = 256

    matching: Optional[MatchingResult] = None
    used = method
    if method in ("auto", "hierarchical"):
        if structure is None:
            require(method == "auto",
                    "hierarchical conversion requires a block structure")
        else:
            require(structure.n_columns == a_prime.shape[1],
                    f"structure covers {structure.n_columns} columns but A' has "
                    f"{a_prime.shape[1]}")
            candidate = hierarchical_matching(structure)
            if _validate(a_prime, candidate):
                matching = candidate
                used = "hierarchical"
            else:
                require(method == "auto",
                        "hierarchical matching produced conflicting pairs for "
                        "this matrix (it is not k-staircase); use method='auto', "
                        "'greedy' or 'blossom'")
    if matching is None and method == "greedy":
        matching = greedy_matching(a_prime)
        used = "greedy"
    if matching is None and (method == "blossom" or
                             a_prime.shape[1] <= blossom_column_limit):
        matching = blossom_matching(a_prime)
        used = "blossom"
    if matching is None:
        matching = greedy_matching(a_prime)
        used = "greedy"
    require(_validate(a_prime, matching),
            f"{used} matching failed to produce a valid cover")

    permutation, n_total = matching_to_permutation(matching)
    a_padded, _ = pad_operands(a_prime, None, n_total)
    a_converted, _ = apply_pit(a_padded, None, permutation)

    require(is_24_sparse(a_converted),
            "conversion produced a matrix that violates 2:4 sparsity — "
            "this indicates an invalid matching")

    return ConversionResult(
        a_converted=a_converted,
        permutation=permutation,
        n_original=a_prime.shape[1],
        n_total=n_total,
        matching=matching,
        method=used,
    )

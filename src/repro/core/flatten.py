"""Stencil Flattening (§3.1, Figure 2).

Stencil Flattening turns a stencil sweep into a vector–matrix product: the
kernel weights become a single-row *kernel vector* ``A`` of length ``k^d``
and every sliding-window patch of the input becomes one column of the *input
matrix* ``B``, so that ``A @ B`` reproduces every output point.

This is the canonical im2row mapping.  It is numerically exact but, as the
paper points out, wasteful on its own: the kernel vector fills only one row
of a Tensor-Core fragment (Figure 1(a)) and ``B`` duplicates each input
element up to ``k^d`` times.  Duplicates Crush (:mod:`repro.core.crush`)
removes that redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stencils.pattern import StencilPattern
from repro.util.validation import require, require_array

__all__ = ["FlattenResult", "flatten_stencil", "flatten_output_shape"]


def flatten_output_shape(pattern: StencilPattern, grid_shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Valid-region output shape of one stencil application."""
    k = pattern.diameter
    out = tuple(int(s) - k + 1 for s in grid_shape)
    require(all(s > 0 for s in out),
            f"grid shape {tuple(grid_shape)} too small for kernel diameter {k}")
    return out


@dataclass(frozen=True)
class FlattenResult:
    """Operands of the flattened vector–matrix form.

    Attributes
    ----------
    a_vector:
        ``(1, k^d)`` kernel vector (row-major flattening of the dense kernel).
    b_matrix:
        ``(k^d, P)`` input matrix; column ``p`` is the patch that produces
        output point ``p`` (outputs enumerated row-major).
    out_shape:
        Valid-region output shape; ``P = prod(out_shape)``.
    duplication_factor:
        How many times each interior input element is replicated in
        ``b_matrix`` on average (the redundancy that Duplicates Crush removes).
    """

    a_vector: np.ndarray
    b_matrix: np.ndarray
    out_shape: Tuple[int, ...]
    duplication_factor: float

    @property
    def output_points(self) -> int:
        return int(np.prod(self.out_shape))

    def compute(self) -> np.ndarray:
        """Evaluate ``A @ B`` and reshape to the output grid."""
        product = self.a_vector @ self.b_matrix
        return product.reshape(self.out_shape)


def flatten_stencil(pattern: StencilPattern, data: np.ndarray) -> FlattenResult:
    """Flatten one stencil application over ``data`` into ``A`` and ``B``.

    The implementation uses ``sliding_window_view`` so ``B`` is produced by a
    single reshape of a strided view (one copy, no Python loop over patches).
    """
    data = require_array(data, "data", ndim=pattern.ndim)
    data = np.asarray(data, dtype=np.float64)
    k = pattern.diameter
    out_shape = flatten_output_shape(pattern, data.shape)

    windows = np.lib.stride_tricks.sliding_window_view(data, (k,) * pattern.ndim)
    # windows: out_shape + (k,)*d  →  (P, k^d)  →  transpose to (k^d, P)
    p = int(np.prod(out_shape))
    b_matrix = windows.reshape(p, k ** pattern.ndim).T.copy()

    a_vector = pattern.weight_vector().reshape(1, -1)

    total_elements = float(data.size)
    duplication = float(b_matrix.size) / total_elements if total_elements else 0.0

    return FlattenResult(
        a_vector=a_vector,
        b_matrix=b_matrix,
        out_shape=out_shape,
        duplication_factor=duplication,
    )

"""End-to-end SparStencil pipeline: compile once, sweep many times.

:func:`compile_stencil` runs the three stages of the paper — Adaptive Layout
Morphing, Structured Sparsity Conversion and Automatic Kernel Generation
(with layout exploration) — and returns a :class:`CompiledStencil`.
:func:`execute_compiled` then executes the compiled kernel for a number of
time iterations on the simulated device, producing both the numerical result
(validated against the golden reference in the test suite) and the modelled
performance metrics the benchmark harness reports.

User-facing solves go through the session layer
(:class:`repro.StencilSession`); the historical :func:`run_stencil` /
:func:`sparstencil_solve` entry points remain as deprecation-warning shims
that delegate to the default session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.codegen import KernelPlan, generate_kernel, resolve_backend
from repro.core.fusion import fuse_pattern
from repro.core.layout_search import LayoutSearchResult, search_layout
from repro.core.morphing import MorphConfig
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.counters import UtilizationReport
from repro.tcu.spec import (
    A100_SPEC,
    DENSE_FRAGMENTS,
    DataType,
    FragmentShape,
    GPUSpec,
    SPARSE_FRAGMENTS,
)
from repro.util.timing import StageTimer
from repro.util.validation import require, require_in, require_positive_int

__all__ = [
    "CompileOptions",
    "CompiledStencil",
    "StencilRunResult",
    "SparStencilCompiler",
    "resolve_compile_options",
    "compile_resolved",
    "compile_stencil",
    "compile_cached",
    "execute_compiled",
    "run_stencil",
    "sparstencil_solve",
]


@dataclass(frozen=True)
class _MorphGeometry:
    """The morph bookkeeping :func:`assemble_output` needs (no operands)."""

    config: MorphConfig
    m_prime: int
    n_prime: int
    out_shape: Tuple[int, ...]
    padded_out_shape: Tuple[int, ...]
    tile_grid: Tuple[int, ...]


@dataclass(frozen=True)
class CompiledStencil:
    """A stencil lowered to a sparse/dense Tensor-Core kernel plan.

    Attributes
    ----------
    original_pattern / pattern:
        The user's stencil and the (possibly temporally fused) stencil the
        kernel actually implements.
    plan:
        The generated kernel plan.
    search:
        Layout-search result (``None`` when a fixed layout was requested).
    overhead_seconds:
        Host-side preprocessing cost per stage: ``transformation`` (morphing +
        conversion + layout search), ``metadata`` and ``lookup_table`` — the
        three categories of Figure 8.
    temporal_fusion:
        Number of time steps folded into one sweep.
    boundary:
        Boundary condition the plan was compiled for (see
        :mod:`repro.stencils.boundary`).  The kernel operands are identical
        across conditions, but executors select their halo handling from
        this field, so plans are *not* interchangeable across boundaries —
        which is why it is part of the compile fingerprint.
    backend:
        Registered execution backend the plan's sweeps run on (see
        :mod:`repro.core.codegen`).  Plans compile identically across
        backends, but their numerics differ (``tcu-sim`` carries device
        precision; host backends compute in float64), so — like ``boundary``
        — the backend is part of the compile fingerprint and a cached plan
        is never served across backends.
    """

    original_pattern: StencilPattern
    pattern: StencilPattern
    grid_shape: Tuple[int, ...]
    plan: KernelPlan
    search: Optional[LayoutSearchResult]
    spec: GPUSpec
    overhead_seconds: Dict[str, float]
    temporal_fusion: int = 1
    conversion_method: str = "auto"
    boundary: str = "dirichlet"
    backend: str = "tcu-sim"

    @property
    def engine(self) -> str:
        return self.plan.engine

    @property
    def config(self) -> MorphConfig:
        return self.plan.config

    def geometry(self) -> _MorphGeometry:
        lut = self.plan.lut
        return _MorphGeometry(
            config=self.plan.config,
            m_prime=self.plan.m_prime,
            n_prime=self.plan.n_prime,
            out_shape=lut.out_shape,
            padded_out_shape=lut.padded_out_shape,
            tile_grid=lut.tile_grid,
        )


@dataclass(frozen=True)
class StencilRunResult:
    """Functional and modelled outcome of running a compiled stencil."""

    output: np.ndarray
    iterations: int
    elapsed_seconds: float
    compute_seconds: float
    memory_seconds: float
    gstencil_per_second: float
    gflops_per_second: float
    utilization: UtilizationReport
    overhead_seconds: Dict[str, float]
    sweeps: int
    #: sweeps executed with the unfused pattern when ``iterations`` is not a
    #: multiple of the temporal-fusion factor (0 for divisible runs)
    leftover_sweeps: int = 0
    #: original-resolution stencil updates performed (fused sweeps count for
    #: ``temporal_fusion`` updates each) — the numerator of Eq. 12
    points_updated: float = 0.0
    #: caller-supplied request label, propagated by the batch service and the
    #: online server so a result can be attributed without positional lookup
    tag: Optional[str] = None

    @property
    def overhead_fraction(self) -> Dict[str, float]:
        """Host preprocessing cost relative to the modelled device time."""
        total = self.elapsed_seconds
        if total <= 0.0:
            return {name: 0.0 for name in self.overhead_seconds}
        return {name: value / (value + total)
                for name, value in self.overhead_seconds.items()}


@dataclass(frozen=True)
class CompileOptions:
    """Fully resolved compile inputs: the canonical form of every argument
    :func:`compile_stencil` accepts.

    Resolution normalises the user-facing conveniences — ``engine="auto"`` is
    pinned to the concrete engine, the default fragment is materialised and
    the grid shape is coerced to an int tuple — so that two calls that
    *mean* the same compilation resolve to equal options.
    :func:`compile_resolved` is a pure function of this object, which is what
    lets the service-layer compilation cache key on it (see
    :mod:`repro.service.fingerprint`).
    """

    pattern: StencilPattern
    grid_shape: Tuple[int, ...]
    dtype: DataType
    spec: GPUSpec
    engine: str
    fragment: FragmentShape
    search: bool
    r1: Optional[int]
    r2: Optional[int]
    temporal_fusion: int
    conversion_method: str
    block_hint: Optional[Tuple[int, ...]]
    boundary: str = "dirichlet"
    backend: str = "tcu-sim"

    @cached_property
    def effective_pattern(self) -> StencilPattern:
        """The (possibly temporally fused) pattern the kernel implements.

        Computed lazily: it is a pure function of ``pattern`` and
        ``temporal_fusion`` (both fingerprinted), and fusing large kernels
        costs dense convolutions — work a warm cache lookup must not pay.
        """
        effective = fuse_pattern(self.pattern, self.temporal_fusion)
        require(all(s >= effective.diameter for s in self.grid_shape),
                f"grid {self.grid_shape} too small for the fused kernel "
                f"(diameter {effective.diameter})")
        return effective


def resolve_compile_options(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    *,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "auto",
    fragment: Optional[FragmentShape] = None,
    search: bool = True,
    r1: Optional[int] = None,
    r2: Optional[int] = None,
    temporal_fusion: int = 1,
    conversion_method: str = "auto",
    block_hint: Optional[Tuple[int, ...]] = None,
    boundary: str = "dirichlet",
    backend: Optional[str] = None,
) -> CompileOptions:
    """Validate and canonicalise every compile argument (no compilation).

    ``backend=None`` resolves through :func:`repro.core.codegen.resolve_backend`
    (the ``REPRO_BACKEND`` environment override, then ``"tcu-sim"``), so the
    canonical options always carry a concrete registered backend name.
    """
    from repro.stencils.boundary import normalize_boundary

    dtype = DataType(dtype)
    require_in(engine, ("auto", "sparse_mma", "dense_mma"), "engine")
    require_positive_int(temporal_fusion, "temporal_fusion")
    grid_shape = tuple(int(s) for s in grid_shape)
    boundary = normalize_boundary(boundary)
    backend = resolve_backend(backend)

    if engine == "auto":
        engine = "sparse_mma" if dtype.supports_sparse_tcu else "dense_mma"
    if fragment is None:
        fragment = SPARSE_FRAGMENTS[1] if engine == "sparse_mma" else DENSE_FRAGMENTS[0]
    require(fragment.sparse == (engine == "sparse_mma"),
            f"fragment {fragment.label} does not match engine {engine!r}")
    if not search:
        require(r1 is not None,
                "search=False requires an explicit r1 (and r2 for >=2D)")
    # cheap unfused bound here; the exact fused-diameter check runs when
    # `effective_pattern` is first materialised (i.e. at compile time)
    require(all(s >= pattern.diameter for s in grid_shape),
            f"grid {grid_shape} too small for pattern {pattern.name} "
            f"(diameter {pattern.diameter})")

    return CompileOptions(
        pattern=pattern,
        grid_shape=grid_shape,
        dtype=dtype,
        spec=spec,
        engine=engine,
        fragment=fragment,
        search=bool(search),
        # with search=True the explicit extents are never read, and with
        # search=False an omitted r2 (or any r2 on a 1D pattern) means 1 —
        # canonicalise both so equal-meaning calls resolve (and fingerprint)
        # equally
        r1=None if search else int(r1),
        r2=None if search else (1 if pattern.ndim == 1 else int(r2 or 1)),
        temporal_fusion=int(temporal_fusion),
        conversion_method=conversion_method,
        block_hint=None if block_hint is None else tuple(int(b) for b in block_hint),
        boundary=boundary,
        backend=backend,
    )


def compile_stencil(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    *,
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "auto",
    fragment: Optional[FragmentShape] = None,
    search: bool = True,
    r1: Optional[int] = None,
    r2: Optional[int] = None,
    temporal_fusion: int = 1,
    conversion_method: str = "auto",
    block_hint: Optional[Tuple[int, ...]] = None,
    boundary: str = "dirichlet",
    backend: Optional[str] = None,
) -> CompiledStencil:
    """Compile a stencil for the simulated sparse Tensor Cores.

    Parameters
    ----------
    engine:
        ``"sparse_mma"``, ``"dense_mma"`` or ``"auto"`` (sparse when the dtype
        supports it — the FP64 path of Table 3 falls back to dense TCUs).
    search:
        Run the layout exploration of §3.3.  When ``False``, ``r1`` (and
        ``r2`` for 2D/3D stencils) must be given.
    temporal_fusion:
        Fold this many time steps into one sweep (3 is what ConvStencil uses
        for small kernels; Figure 6 applies the same to SparStencil).
    boundary:
        Halo behaviour between sweeps (``"dirichlet"`` / ``"periodic"`` /
        ``"reflect"`` / ``"neumann(flux=...)"``, see
        :mod:`repro.stencils.boundary`).  Must match the
        boundary condition of the grids the plan will execute on.
    backend:
        Execution backend for the plan's sweeps (a registered name from
        :mod:`repro.core.codegen`, e.g. ``"tcu-sim"`` or ``"numpy"``).
        ``None`` resolves via the ``REPRO_BACKEND`` environment variable,
        then the default ``"tcu-sim"``.
    """
    options = resolve_compile_options(
        pattern, grid_shape,
        dtype=dtype, spec=spec, engine=engine, fragment=fragment,
        search=search, r1=r1, r2=r2, temporal_fusion=temporal_fusion,
        conversion_method=conversion_method, block_hint=block_hint,
        boundary=boundary, backend=backend,
    )
    return compile_resolved(options)


def compile_resolved(options: CompileOptions) -> CompiledStencil:
    """Run the three compilation stages on fully resolved options.

    This is a pure function of ``options`` (plus wall-clock stage timings):
    equal options produce plans with identical operands, metadata, lookup
    tables and estimates, which is the invariant the compilation cache relies
    on.
    """
    effective = options.effective_pattern
    grid_shape = options.grid_shape
    dtype, spec, engine = options.dtype, options.spec, options.engine
    fragment = options.fragment
    conversion_method = options.conversion_method

    timer = StageTimer()
    search_result: Optional[LayoutSearchResult] = None
    with timer.stage("transformation"):
        if options.search:
            search_result = search_layout(
                effective, grid_shape,
                fragment=fragment, dtype=dtype, spec=spec, engine=engine,
                conversion_method=conversion_method,
            )
            config = search_result.best_config
        else:
            config = MorphConfig.from_r1_r2(
                effective.ndim, int(options.r1), int(options.r2))

    # The remaining preprocessing is timed per stage so Figure 8 can split the
    # cost into transformation (morphing + conversion), metadata and LUT.
    from repro.core.conversion import convert_to_24
    from repro.core.lookup_table import build_lookup_table
    from repro.core.metadata import build_metadata
    from repro.core.morphing import morph_kernel_matrix
    from repro.core.staircase import block_structure_from_morph

    conversion = None
    metadata = None
    with timer.stage("transformation"):
        a_prime = morph_kernel_matrix(effective, config)
        if engine == "sparse_mma":
            structure = block_structure_from_morph(effective, config)
            conversion = convert_to_24(a_prime, structure=structure,
                                       method=conversion_method)
    with timer.stage("metadata"):
        if conversion is not None:
            metadata = build_metadata(conversion.a_converted)
    with timer.stage("lookup_table"):
        lut = build_lookup_table(effective, grid_shape, config)

    plan = generate_kernel(
        effective, grid_shape, config,
        fragment=fragment, dtype=dtype, spec=spec, engine=engine,
        conversion_method=conversion_method, block_hint=options.block_hint,
        render_source=False,
        prebuilt_conversion=conversion,
        prebuilt_metadata=metadata,
        prebuilt_lut=lut,
    )

    return CompiledStencil(
        original_pattern=options.pattern,
        pattern=effective,
        grid_shape=grid_shape,
        plan=plan,
        search=search_result,
        spec=spec,
        overhead_seconds=dict(timer.stages),
        temporal_fusion=options.temporal_fusion,
        conversion_method=options.conversion_method,
        boundary=options.boundary,
        backend=options.backend,
    )


def compile_cached(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    cache=None,
    **compile_kwargs,
) -> CompiledStencil:
    """Compile through ``cache`` (a :class:`repro.service.CompileCache`) when
    one is given, else compile directly — the single entry path every
    cache-aware caller (solve wrappers, sharded service, scaling analysis,
    leftover plans) funnels through."""
    if cache is not None:
        return cache.compile(pattern, grid_shape, **compile_kwargs)
    return compile_stencil(pattern, grid_shape, **compile_kwargs)


def execute_compiled(
    compiled: CompiledStencil,
    grid: Grid,
    iterations: int,
    *,
    cache=None,
) -> StencilRunResult:
    """Run ``iterations`` time steps of the compiled stencil on ``grid``.

    Thin wrapper over the execution-engine layer
    (:class:`repro.engine.SingleDeviceExecutor`): per sweep, the lookup
    tables gather ``B'`` from the current grid, the conversion's row
    permutation is applied, the (sparse or dense) MMA runs on the simulated
    Tensor Cores and the result is assembled back into the grid interior.
    The halo ring then follows the plan's boundary condition — held fixed
    under Dirichlet, refreshed from the interior under ``periodic`` /
    ``reflect`` — matching the golden reference.

    When ``iterations`` is not a multiple of the temporal-fusion factor, the
    remaining ``iterations % temporal_fusion`` steps run as plain (unfused)
    sweeps after the fused ones.  ``cache`` (an optional
    :class:`repro.service.CompileCache`) keeps the unfused leftover plan from
    being recompiled on every call.

    This is the engine-layer entry the session facade and the other internal
    callers share; user code goes through :meth:`repro.StencilSession.run`
    (or the deprecated :func:`run_stencil` shim).
    """
    from repro.engine.single import SingleDeviceExecutor

    return SingleDeviceExecutor(cache=cache).execute(compiled, grid, iterations)


def run_stencil(
    compiled: CompiledStencil,
    grid: Grid,
    iterations: int,
    *,
    cache=None,
) -> StencilRunResult:
    """Deprecated shim: run a compiled stencil through the default session.

    .. deprecated:: 1.1
       Use :meth:`repro.StencilSession.run` (its :class:`Solution` carries
       the same :class:`StencilRunResult` plus provenance).  This shim
       delegates to :func:`repro.session.default_session` and returns the
       bit-identical run result.
    """
    from repro.session import default_session
    from repro.util.deprecation import warn_legacy

    warn_legacy("run_stencil()", "StencilSession.run()")
    return default_session().run(compiled, grid, iterations,
                                 cache=cache).result


def sparstencil_solve(
    pattern: StencilPattern,
    grid: Grid,
    iterations: int,
    cache=None,
    **compile_kwargs,
) -> Tuple[CompiledStencil, StencilRunResult]:
    """Deprecated shim: compile-and-run through the default session.

    .. deprecated:: 1.1
       Use :meth:`repro.StencilSession.solve` with a
       :class:`repro.session.Problem` (``mode="single"`` reproduces this
       call exactly; ``mode="auto"`` additionally routes large grids to the
       sharded engine).  Returns the bit-identical
       ``(CompiledStencil, StencilRunResult)`` pair.
    """
    from repro.session import Problem, SolvePolicy, default_session
    from repro.util.deprecation import warn_legacy

    warn_legacy("sparstencil_solve()", "StencilSession.solve()")
    solution = default_session().solve(
        Problem(pattern, grid, iterations, options=compile_kwargs),
        SolvePolicy(mode="single"), cache=cache)
    return solution.compiled, solution.result


class SparStencilCompiler:
    """Object-style facade over :func:`compile_stencil` / :func:`run_stencil`.

    Useful when compiling many stencils against the same device configuration:

    >>> compiler = SparStencilCompiler()
    >>> compiled = compiler.compile(pattern, (128, 128))   # doctest: +SKIP
    >>> result = compiler.run(compiled, grid, iterations=4)  # doctest: +SKIP

    Passing ``cache=True`` (or an explicit :class:`repro.service.CompileCache`)
    makes ``compile``/``solve`` memoise compiled plans, so repeated workloads
    against the same device configuration pay the layout search only once.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC,
                 dtype: DataType = DataType.FP16,
                 cache=None) -> None:
        self.spec = spec
        self.dtype = DataType(dtype)
        self.cache = None
        self.cache = self._coerce_cache(cache)

    def _coerce_cache(self, cache):
        """``True`` → the compiler-owned cache (created on demand, so
        memoisation persists across calls), ``False`` → no cache."""
        if cache is True:
            if self.cache is None:
                from repro.service.cache import CompileCache
                self.cache = CompileCache()
            return self.cache
        return cache if cache is not False else None

    def compile(self, pattern: StencilPattern, grid_shape: Tuple[int, ...],
                **kwargs) -> CompiledStencil:
        kwargs.setdefault("spec", self.spec)
        kwargs.setdefault("dtype", self.dtype)
        cache = self._coerce_cache(kwargs.pop("cache", self.cache))
        if cache is not None:
            return cache.compile(pattern, grid_shape, **kwargs)
        return compile_stencil(pattern, grid_shape, **kwargs)

    def run(self, compiled: CompiledStencil, grid: Grid,
            iterations: int) -> StencilRunResult:
        return execute_compiled(compiled, grid, iterations, cache=self.cache)

    def solve(self, pattern: StencilPattern, grid: Grid, iterations: int,
              **kwargs) -> Tuple[CompiledStencil, StencilRunResult]:
        kwargs.setdefault("spec", self.spec)
        kwargs.setdefault("dtype", self.dtype)
        cache = self._coerce_cache(kwargs.pop("cache", self.cache))
        compiled = compile_cached(pattern, tuple(grid.shape), cache=cache,
                                  **kwargs)
        return compiled, execute_compiled(compiled, grid, iterations,
                                          cache=cache)

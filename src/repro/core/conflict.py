"""Column conflict graphs (§3.2, Definitions 1–3 and Figure 5(b)).

Two columns of the morphed kernel matrix *conflict* when some row holds a
nonzero in both — pairing them inside one 2-element group would then break
the 1:2 sub-pattern the 2:4 constraint decomposes into.  The conversion stage
builds the conflict graph, and for self-similar staircase matrices it builds
it at two levels (global over column blocks, local inside a block), which is
what lets the hierarchical matching run in linear time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx
import numpy as np

from repro.core.staircase import BlockStructure
from repro.util.validation import require, require_array

__all__ = [
    "conflict_matrix",
    "conflict_graph",
    "ConflictGraphs",
    "build_conflict_graphs",
]


def conflict_matrix(matrix: np.ndarray) -> np.ndarray:
    """Boolean ``(n, n)`` adjacency: columns i and j share a nonzero row.

    Vectorised as ``M.T @ M`` on the boolean nonzero mask; the diagonal is
    cleared (a column never conflicts with itself for matching purposes).
    """
    matrix = require_array(matrix, "matrix", ndim=2)
    mask = (np.asarray(matrix) != 0)
    # float32 keeps the co-occurrence count in BLAS (integer matmul falls back
    # to a slow inner loop); exact because counts stay far below 2^24.
    counts = mask.T.astype(np.float32) @ mask.astype(np.float32)
    adjacency = counts > 0.5
    np.fill_diagonal(adjacency, False)
    return adjacency


def conflict_graph(matrix: np.ndarray) -> nx.Graph:
    """The conflict graph of Definition 1 as a :class:`networkx.Graph`.

    Nodes are column indices ``0..n-1`` (present even when isolated); an edge
    connects every conflicting pair.
    """
    adjacency = conflict_matrix(matrix)
    n = adjacency.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(np.triu(adjacency, k=1))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return graph


@dataclass(frozen=True)
class ConflictGraphs:
    """The two-level conflict structure of a self-similar staircase matrix.

    Attributes
    ----------
    global_graph:
        Conflict graph over column *blocks* (Definition: blocks i and j
        conflict when some row has a nonzero in both blocks).
    local_graphs:
        Per-block conflict graph over the columns inside that block, indexed
        by block id.  For a self-similar staircase matrix all local graphs are
        isomorphic (Figure 5(b): "exactly same!").
    structure:
        The block partition the graphs were built over.
    """

    global_graph: nx.Graph
    local_graphs: Dict[int, nx.Graph]
    structure: BlockStructure

    def local_isomorphic(self) -> bool:
        """Whether all local graphs have identical edge sets (block-relative)."""
        edge_sets = []
        for block, graph in sorted(self.local_graphs.items()):
            base = block * self.structure.block_size
            edges = frozenset(
                (min(u, v) - base, max(u, v) - base) for u, v in graph.edges()
            )
            edge_sets.append(edges)
        return len(set(edge_sets)) <= 1


def build_conflict_graphs(matrix: np.ndarray,
                          structure: BlockStructure) -> ConflictGraphs:
    """Build the global and local conflict graphs of Figure 5(b)."""
    matrix = require_array(matrix, "matrix", ndim=2)
    require(matrix.shape[1] == structure.n_columns,
            f"matrix has {matrix.shape[1]} columns, structure expects "
            f"{structure.n_columns}")
    mask = (np.asarray(matrix) != 0)
    g = structure.block_size
    n_blocks = structure.n_blocks

    # Global graph: does any row touch both block i and block j?
    block_mask = mask.reshape(mask.shape[0], n_blocks, g).any(axis=2)
    block_adjacency = (block_mask.T.astype(np.float32)
                       @ block_mask.astype(np.float32)) > 0.5
    np.fill_diagonal(block_adjacency, False)
    global_graph = nx.Graph()
    global_graph.add_nodes_from(range(n_blocks))
    rows, cols = np.nonzero(np.triu(block_adjacency, k=1))
    global_graph.add_edges_from(zip(rows.tolist(), cols.tolist()))

    # Local graphs: conflicts between columns inside each block (columns keep
    # their global indices so matchings can be merged directly).
    local_graphs: Dict[int, nx.Graph] = {}
    for block in range(n_blocks):
        columns = list(structure.columns_of_block(block))
        sub_mask = mask[:, columns]
        adjacency = (sub_mask.T.astype(np.float32)
                     @ sub_mask.astype(np.float32)) > 0.5
        np.fill_diagonal(adjacency, False)
        graph = nx.Graph()
        graph.add_nodes_from(columns)
        local_rows, local_cols = np.nonzero(np.triu(adjacency, k=1))
        graph.add_edges_from(
            (columns[u], columns[v]) for u, v in zip(local_rows.tolist(),
                                                     local_cols.tolist())
        )
        local_graphs[block] = graph

    return ConflictGraphs(global_graph=global_graph,
                          local_graphs=local_graphs,
                          structure=structure)

"""Table-driven memory mapping (§3.3, "Lookup Table").

Building the duplicate-free input matrix ``B'`` on the device requires every
thread block to translate (tile index, patch element) pairs into global
memory addresses — integer divisions and modulos that are slow on GPUs and
identical across blocks.  SparStencil precomputes them on the host:

* ``column_base[j]`` — flat offset of tile ``j``'s patch corner in the
  (padded) input grid;
* ``patch_offset[i]`` — flat offset of patch element ``i`` relative to the
  corner (constant across tiles).

``B'[i, j] = input.flat[column_base[j] + patch_offset[i]]`` then needs one
addition per element.  The same tables drive the simulated kernel here: the
per-sweep gather in :func:`gather_b_matrix` is how the run loop builds ``B'``,
so the tables are functionally load-bearing, not just cost-model props.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.flatten import flatten_output_shape
from repro.core.morphing import MorphConfig
from repro.stencils.pattern import StencilPattern
from repro.util.arrays import ceil_div
from repro.util.validation import require, require_array

__all__ = ["LookupTable", "build_lookup_table", "gather_b_matrix"]


@dataclass(frozen=True)
class LookupTable:
    """Host-precomputed address tables for one (pattern, grid, layout) triple.

    Attributes
    ----------
    column_base: ``(n',)`` int32 flat offsets of each tile's patch corner.
    patch_offset: ``(k',)`` int32 flat offsets of each patch element.
    padded_grid_shape: input extents after tile padding (what the offsets
        index into).
    grid_shape: original input extents.
    tile_grid / out_shape / padded_out_shape: output geometry, recorded so the
        run loop can assemble results without re-deriving it.
    """

    column_base: np.ndarray
    patch_offset: np.ndarray
    padded_grid_shape: Tuple[int, ...]
    grid_shape: Tuple[int, ...]
    tile_grid: Tuple[int, ...]
    out_shape: Tuple[int, ...]
    padded_out_shape: Tuple[int, ...]

    @property
    def k_prime(self) -> int:
        return int(self.patch_offset.shape[0])

    @property
    def n_prime(self) -> int:
        return int(self.column_base.shape[0])

    @property
    def nbytes(self) -> int:
        """Device bytes occupied by the tables (what Figure 8's LUT bar costs)."""
        return int(self.column_base.nbytes + self.patch_offset.nbytes)


def build_lookup_table(
    pattern: StencilPattern,
    grid_shape: Tuple[int, ...],
    config: MorphConfig,
) -> LookupTable:
    """Precompute the address tables for ``pattern`` on ``grid_shape`` with ``config``."""
    require(len(config.r) == pattern.ndim,
            f"config has {len(config.r)} tile extents for a {pattern.ndim}D pattern")
    grid_shape = tuple(int(s) for s in grid_shape)
    k = pattern.diameter
    out_shape = flatten_output_shape(pattern, grid_shape)
    tile_grid = tuple(ceil_div(o, ri) for o, ri in zip(out_shape, config.r))
    padded_out_shape = tuple(t * ri for t, ri in zip(tile_grid, config.r))
    padded_grid_shape = tuple(po + k - 1 for po in padded_out_shape)

    patch_shape = config.patch_shape(k)
    strides = np.array(
        [int(np.prod(padded_grid_shape[axis + 1:])) for axis in range(pattern.ndim)],
        dtype=np.int64,
    )

    # Patch-relative offsets: row-major enumeration of the patch elements.
    patch_indices = np.stack(
        np.meshgrid(*[np.arange(s) for s in patch_shape], indexing="ij"), axis=-1
    ).reshape(-1, pattern.ndim)
    patch_offset = (patch_indices @ strides).astype(np.int32)

    # Tile corners: tile index times the tile extent along each axis.
    tile_indices = np.stack(
        np.meshgrid(*[np.arange(t) for t in tile_grid], indexing="ij"), axis=-1
    ).reshape(-1, pattern.ndim)
    corners = tile_indices * np.asarray(config.r, dtype=np.int64)
    column_base = (corners @ strides).astype(np.int32)

    return LookupTable(
        column_base=column_base,
        patch_offset=patch_offset,
        padded_grid_shape=padded_grid_shape,
        grid_shape=grid_shape,
        tile_grid=tile_grid,
        out_shape=out_shape,
        padded_out_shape=padded_out_shape,
    )


def gather_b_matrix(lut: LookupTable, data: np.ndarray) -> np.ndarray:
    """Build ``B'`` from the input grid using the precomputed tables.

    Equivalent to :func:`repro.core.morphing.morph_input_matrix` but driven
    entirely by the lookup tables (a single fancy-indexing gather), which is
    what the generated kernel's asynchronous-copy stage does.
    """
    data = require_array(data, "data")
    require(tuple(data.shape) == lut.grid_shape,
            f"grid shape {tuple(data.shape)} does not match the lookup table's "
            f"{lut.grid_shape}")
    pad = [(0, ps - s) for ps, s in zip(lut.padded_grid_shape, data.shape)]
    if any(hi for _, hi in pad):
        data = np.pad(data, pad, mode="constant")
    flat = np.ascontiguousarray(data, dtype=np.float64).ravel()
    gather = lut.patch_offset[:, None].astype(np.int64) + \
        lut.column_base[None, :].astype(np.int64)
    return flat[gather]

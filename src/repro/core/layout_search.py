"""Layout exploration (§3.3, Eq. 11).

The ``(r1, r2)`` tile extents trade memory footprint against padding and
fragment utilisation.  The search space is small and the analytical model is
cheap, so SparStencil simply evaluates every candidate and keeps the fastest
(Eq. 11) — this module does the same and additionally returns the full
candidate table, which is what the Figure-9 heatmaps plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.morphing import MorphConfig
from repro.core.perf_model import PerfEstimate, estimate_layout
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec, SPARSE_FRAGMENTS
from repro.util.parallel import parallel_map
from repro.util.validation import require, require_positive_int

__all__ = [
    "LayoutCandidate",
    "LayoutSearchResult",
    "default_search_space",
    "search_layout",
    "search_layout_many",
]


@dataclass(frozen=True)
class LayoutCandidate:
    """One evaluated point of the search space."""

    r1: int
    r2: int
    estimate: PerfEstimate

    @property
    def t_total(self) -> float:
        return self.estimate.t_total


@dataclass(frozen=True)
class LayoutSearchResult:
    """Outcome of the exhaustive layout exploration."""

    best: LayoutCandidate
    candidates: Tuple[LayoutCandidate, ...]
    pattern_name: str
    grid_shape: Tuple[int, ...]

    @property
    def best_config(self) -> MorphConfig:
        return self.best.estimate.config

    def as_table(self) -> List[dict]:
        """Candidate table for reporting / the Figure-9 heatmaps."""
        rows = []
        for candidate in self.candidates:
            est = candidate.estimate
            rows.append({
                "r1": candidate.r1,
                "r2": candidate.r2,
                "t_total": est.t_total,
                "t_compute": est.t_compute,
                "t_memory": est.t_memory,
                "n_mma": est.n_mma,
                "k_padded": est.k_padded,
                "sparsity": est.sparsity,
                "compute_density": est.compute_density,
                "bound": est.bound,
            })
        return rows

    def density_grid(self) -> Tuple[np.ndarray, List[int], List[int]]:
        """Compute-density heatmap over (r2, r1) for the evaluated candidates."""
        r1_values = sorted({c.r1 for c in self.candidates})
        r2_values = sorted({c.r2 for c in self.candidates})
        grid = np.full((len(r2_values), len(r1_values)), np.nan)
        for candidate in self.candidates:
            i = r2_values.index(candidate.r2)
            j = r1_values.index(candidate.r1)
            grid[i, j] = candidate.estimate.compute_density
        return grid, r2_values, r1_values


def default_search_space(pattern: StencilPattern,
                         max_r1: int = 16, max_r2: int = 8
                         ) -> List[Tuple[int, int]]:
    """The default ``(r1, r2)`` candidates for a pattern.

    1D patterns only sweep ``r1`` (there is no second tiled axis); 2D and 3D
    sweep both of the two fastest axes.  Candidates grow in small steps at the
    low end (where the trade-off is steep) and powers of two beyond.
    """
    require_positive_int(max_r1, "max_r1")
    require_positive_int(max_r2, "max_r2")

    def axis_values(limit: int) -> List[int]:
        values = [v for v in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32) if v <= limit]
        return values or [1]

    r1_values = axis_values(max_r1)
    if pattern.ndim == 1:
        return [(r1, 1) for r1 in r1_values]
    r2_values = axis_values(max_r2)
    return [(r1, r2) for r2 in r2_values for r1 in r1_values]


def search_layout(
    pattern: StencilPattern,
    grid_shape: Sequence[int],
    *,
    fragment: FragmentShape = SPARSE_FRAGMENTS[0],
    dtype: DataType = DataType.FP16,
    spec: GPUSpec = A100_SPEC,
    engine: str = "sparse_mma",
    space: Optional[Iterable[Tuple[int, int]]] = None,
    conversion_method: str = "auto",
) -> LayoutSearchResult:
    """Exhaustively evaluate the layout space and return the fastest candidate.

    Candidates whose tile extents exceed the output extents are skipped (they
    would only add padding).  Ties are broken toward smaller ``r1 * r2`` so
    the chosen layout carries the least padding.
    """
    grid_shape = tuple(int(s) for s in grid_shape)
    out_shape = tuple(s - pattern.diameter + 1 for s in grid_shape)
    require(all(s > 0 for s in out_shape),
            f"grid shape {grid_shape} too small for pattern {pattern.name}")

    pairs = list(space) if space is not None else default_search_space(pattern)
    candidates: List[LayoutCandidate] = []
    for r1, r2 in pairs:
        if r1 > out_shape[-1]:
            continue
        if pattern.ndim >= 2 and r2 > out_shape[-2]:
            continue
        if pattern.ndim == 1 and r2 != 1:
            continue
        config = MorphConfig.from_r1_r2(pattern.ndim, r1, r2)
        estimate = estimate_layout(
            pattern, grid_shape, config,
            fragment=fragment, dtype=dtype, spec=spec, engine=engine,
            conversion_method=conversion_method,
        )
        candidates.append(LayoutCandidate(r1=r1, r2=r2, estimate=estimate))

    require(candidates, "layout search produced no feasible candidates")
    best = min(candidates, key=lambda c: (c.t_total, c.r1 * c.r2))
    return LayoutSearchResult(
        best=best,
        candidates=tuple(candidates),
        pattern_name=pattern.name,
        grid_shape=grid_shape,
    )


def search_layout_many(
    jobs: Sequence[Tuple[StencilPattern, Sequence[int]]],
    *,
    max_workers: Optional[int] = None,
    **search_kwargs,
) -> List[LayoutSearchResult]:
    """Run :func:`search_layout` for many ``(pattern, grid_shape)`` jobs.

    The analytical model is pure Python/numpy, so distinct searches are
    independent and run concurrently on a thread pool (the same
    :func:`repro.util.parallel.parallel_map` fan-out the batched solve
    service uses for whole compilations).  Results come back in job order.
    """
    return parallel_map(
        lambda job: search_layout(job[0], job[1], **search_kwargs),
        list(jobs), max_workers=max_workers)

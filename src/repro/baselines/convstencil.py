"""ConvStencil baseline (Chen et al., PPoPP'24): layout-transformed dense TCUs.

ConvStencil also reshapes the stencil into a matrix–matrix product, but runs
it on *dense* Tensor Cores with a fixed (hand-derived) tiling rather than an
automatic layout search, and the clustered sparsity of its kernel matrix is
simply computed through.  It is the strongest baseline in the paper; the gap
to SparStencil comes from (a) the 2x sparse-TCU rate once the kernel matrix
is 2:4-converted and (b) the layout exploration.

The reproduction reuses SparStencil's own morphing machinery with the dense
engine and a fixed ``r1 = 16, r2 = 1``-style layout — i.e. "Layout Morphing
on dense TCUs", the middle bar of the Figure-7 breakdown.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.core.pipeline import compile_stencil, execute_compiled
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DENSE_FRAGMENTS, DataType, FragmentShape, GPUSpec

__all__ = ["ConvStencilBaseline"]


class ConvStencilBaseline(Baseline):
    """Dense-Tensor-Core stencil with a fixed ConvStencil-style layout."""

    name = "ConvStencil"

    def __init__(self, fragment: FragmentShape = DENSE_FRAGMENTS[0],
                 r1: int = 16, r2: int = 1) -> None:
        self.fragment = fragment
        self.r1 = int(r1)
        self.r2 = int(r2)

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)

        # Clamp the fixed layout to the output extents of (the fused) kernel.
        out_last = grid.shape[-1] - pattern.diameter + 1
        r1 = max(1, min(self.r1, out_last))
        r2 = 1 if pattern.ndim == 1 else max(
            1, min(self.r2, grid.shape[-2] - pattern.diameter + 1))

        compiled = compile_stencil(
            pattern, tuple(grid.shape),
            dtype=dtype, spec=spec,
            engine="dense_mma", fragment=self.fragment,
            search=False, r1=r1, r2=r2,
            temporal_fusion=temporal_fusion,
        )
        result = execute_compiled(compiled, grid, iterations)
        return self._package(
            pattern, grid, iterations, result.output,
            elapsed=result.elapsed_seconds,
            compute_seconds=result.compute_seconds,
            memory_seconds=result.memory_seconds,
            utilization=result.utilization,
            extra={"r1": float(r1), "r2": float(r2)},
        )

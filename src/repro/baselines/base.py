"""Common interface for all execution methods (baselines and SparStencil).

Every method implements :meth:`Baseline.run`, which executes ``iterations``
time steps of a stencil over a grid on the simulated device and returns a
:class:`BaselineResult` with the functional output and the modelled metrics.
Keeping the interface identical across methods is what lets the benchmark
harness produce the paper's comparison figures from one loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import stencil_points_updated
from repro.tcu.counters import UtilizationReport
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec
from repro.util.validation import require, require_positive_int

__all__ = ["Baseline", "BaselineResult"]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one method executing a stencil workload."""

    method: str
    output: np.ndarray
    iterations: int
    elapsed_seconds: float
    compute_seconds: float
    memory_seconds: float
    gstencil_per_second: float
    gflops_per_second: float
    utilization: Optional[UtilizationReport] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def bound(self) -> str:
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


class Baseline(abc.ABC):
    """A stencil execution method with a cost model on the simulated device."""

    #: Display name used in figures and tables (matches the paper's labels).
    name: str = "baseline"

    @abc.abstractmethod
    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        """Execute ``iterations`` sweeps of ``pattern`` over ``grid``."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(pattern: StencilPattern, grid: Grid, iterations: int) -> None:
        require_positive_int(iterations, "iterations")
        require(grid.ndim == pattern.ndim,
                f"grid ndim {grid.ndim} does not match pattern ndim {pattern.ndim}")
        require(all(s >= pattern.diameter for s in grid.shape),
                f"grid {grid.shape} too small for pattern {pattern.name}")

    def _package(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        output: np.ndarray,
        elapsed: float,
        compute_seconds: float,
        memory_seconds: float,
        utilization: Optional[UtilizationReport] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> BaselineResult:
        """Assemble a :class:`BaselineResult` with the standard throughput metrics."""
        points = stencil_points_updated(pattern, grid.shape, iterations)
        gstencil = points / elapsed / 1e9 if elapsed > 0 else 0.0
        flops = 2.0 * pattern.points * points
        gflops = flops / elapsed / 1e9 if elapsed > 0 else 0.0
        return BaselineResult(
            method=self.name,
            output=output,
            iterations=iterations,
            elapsed_seconds=elapsed,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            gstencil_per_second=gstencil,
            gflops_per_second=gflops,
            utilization=utilization,
            extra=dict(extra or {}),
        )

"""State-of-the-art baselines the paper compares against (§4.1).

Each baseline is re-implemented as (a) a numerically correct execution path
and (b) a cost model on the same simulated A100, so Figure 6/10 and Table 3
comparisons measure *how much work each mapping performs* on identical
hardware assumptions — the quantity the paper's comparison is really about.
"""

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.naive import NaiveCudaBaseline
from repro.baselines.cudnn import CudnnBaseline
from repro.baselines.tcstencil import TCStencilBaseline
from repro.baselines.convstencil import ConvStencilBaseline
from repro.baselines.drstencil import DRStencilBaseline
from repro.baselines.brick import BrickBaseline
from repro.baselines.amos import AMOSBaseline
from repro.baselines.sparstencil_adapter import SparStencilMethod
from repro.baselines.registry import (
    available_baselines,
    get_baseline,
    all_methods,
    FIGURE6_BASELINES,
)

__all__ = [
    "Baseline",
    "BaselineResult",
    "NaiveCudaBaseline",
    "CudnnBaseline",
    "TCStencilBaseline",
    "ConvStencilBaseline",
    "DRStencilBaseline",
    "BrickBaseline",
    "AMOSBaseline",
    "SparStencilMethod",
    "available_baselines",
    "get_baseline",
    "all_methods",
    "FIGURE6_BASELINES",
]

"""DRStencil baseline (You et al., HPCC'21): fusion-partition data reuse.

DRStencil stays on the scalar FFMA pipeline but aggressively reuses data
through register/shared-memory tiling and kernel fusion, so its global memory
traffic approaches the compulsory minimum (grid in, grid out, once per
sweep).  It is competitive for low-order stencils where the arithmetic is
cheap, and falls behind Tensor-Core methods as the kernel grows.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import run_stencil_iterations, stencil_points_updated
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec

__all__ = ["DRStencilBaseline"]


class DRStencilBaseline(Baseline):
    """FFMA stencil with near-optimal data reuse (fusion + partition tiling)."""

    name = "DRStencil"

    #: Fraction of FFMA peak the tuned kernels sustain for low-order stencils
    #: (register pressure and occupancy keep real kernels below peak).
    base_compute_efficiency = 0.65

    @classmethod
    def compute_efficiency_for(cls, points: int) -> float:
        """Sustained efficiency degrades for high-order kernels.

        DRStencil's fusion-partition scheme targets low-order stencils; large
        kernels exhaust registers and its measured throughput collapses (the
        paper's Table 3 shows Box-2D49P at roughly a third of Heat-2D).
        """
        return cls.base_compute_efficiency * min(1.0, (9.0 / max(points, 1)) ** 0.5)

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        output = run_stencil_iterations(pattern, grid, iterations)

        points_per_iter = stencil_points_updated(pattern, grid.shape, 1)
        itemsize = dtype.itemsize
        # Scalar arithmetic runs on the fp32 pipeline for half-precision data.
        ffma_dtype = dtype if dtype is DataType.FP64 else DataType.TF32
        efficiency = self.compute_efficiency_for(pattern.points)
        flops_per_iter = 2.0 * pattern.points * points_per_iter / efficiency
        traffic = MemoryTraffic(
            global_read_bytes=float(grid.size) * itemsize,
            global_write_bytes=float(points_per_iter) * itemsize,
            shared_read_bytes=float(grid.size) * itemsize,
            shared_write_bytes=float(grid.size) * itemsize,
        )
        launch = KernelLaunch(
            name=f"drstencil/{pattern.name}",
            engine="ffma",
            dtype=ffma_dtype,
            flops=flops_per_iter,
            traffic=traffic,
            precomputed_result=output,
            threads_per_block=256,
            blocks=max(1, points_per_iter // 512),
            registers_per_thread=96,
            repeats=iterations,
        )
        result = execute_launch(launch, spec)
        return self._package(
            pattern, grid, iterations, output,
            elapsed=result.elapsed_seconds,
            compute_seconds=result.compute_seconds,
            memory_seconds=result.memory_seconds,
            utilization=result.utilization,
        )

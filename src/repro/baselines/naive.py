"""Naive CUDA baseline: one thread per output point, scalar FFMA arithmetic.

This is the "CUDA" bar of Figure 7: every tap is read straight from global
memory (no staging, no reuse between neighbouring threads beyond what the
cost model's read volume implies) and the arithmetic runs on the regular FFMA
pipeline rather than Tensor Cores.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import run_stencil_iterations, stencil_points_updated
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec

__all__ = ["NaiveCudaBaseline"]


class NaiveCudaBaseline(Baseline):
    """Straightforward CUDA stencil kernel (no Tensor Cores, no tiling)."""

    name = "CUDA"

    #: Sustained fraction of FFMA peak an untiled kernel reaches.
    compute_efficiency = 0.75

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        output = run_stencil_iterations(pattern, grid, iterations)

        points_per_iter = stencil_points_updated(pattern, grid.shape, 1)
        itemsize = dtype.itemsize
        # Scalar stencil arithmetic runs through the fp32 FFMA pipeline
        # regardless of the (half-precision) storage type, at a sustained
        # fraction of peak typical for untiled kernels.
        ffma_dtype = dtype if dtype is DataType.FP64 else DataType.TF32
        flops_per_iter = 2.0 * pattern.points * points_per_iter / self.compute_efficiency
        traffic = MemoryTraffic(
            # Loads along the contiguous axis hit in cache; cross-row accesses
            # cost roughly one extra pass over the grid.
            global_read_bytes=2.0 * grid.size * itemsize,
            global_write_bytes=float(points_per_iter) * itemsize,
        )
        launch = KernelLaunch(
            name=f"cuda/{pattern.name}",
            engine="ffma",
            dtype=ffma_dtype,
            flops=flops_per_iter,
            traffic=traffic,
            precomputed_result=output,
            threads_per_block=256,
            blocks=max(1, points_per_iter // 256),
            registers_per_thread=40,
            repeats=iterations,
        )
        result = execute_launch(launch, spec)
        return self._package(
            pattern, grid, iterations, output,
            elapsed=result.elapsed_seconds,
            compute_seconds=result.compute_seconds,
            memory_seconds=result.memory_seconds,
            utilization=result.utilization,
        )

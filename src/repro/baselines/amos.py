"""AMOS baseline (Zheng et al., ISCA'22): automatic mapping to tensor units.

AMOS maps depth-wise convolutions (equivalent to stencils) onto Tensor Cores
through a generic hardware-abstraction search.  Because the abstraction is
not stencil-aware, the generated mappings replicate data heavily and leave
most fragment lanes idle — the paper measures it an order of magnitude behind
the stencil-specialised systems (Table 3: ~10 GFlops/s at FP64).
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.core.flatten import flatten_stencil
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DENSE_FRAGMENTS, DataType, FragmentShape, GPUSpec

__all__ = ["AMOSBaseline"]


class AMOSBaseline(Baseline):
    """Generic tensorisation of the stencil with a stencil-agnostic mapping."""

    name = "AMOS"

    #: The auto-generated mapping issues this many times more fragment work
    #: than the minimal flattened GEMM (padding every software axis to the
    #: hardware intrinsic independently).
    mapping_inefficiency = 4.0

    def __init__(self, fragment: FragmentShape = DENSE_FRAGMENTS[0]) -> None:
        self.fragment = fragment

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        radius = pattern.radius
        interior = tuple(slice(radius, s - radius) for s in grid.shape)
        itemsize = dtype.itemsize

        current = grid.data.copy()
        elapsed = compute_s = memory_s = 0.0
        utilization = None
        for _ in range(iterations):
            flattened = flatten_stencil(pattern, current)
            k_dim, p_cols = flattened.b_matrix.shape
            traffic = MemoryTraffic(
                global_read_bytes=(current.size + 2.0 * k_dim * p_cols) * itemsize,
                global_write_bytes=(p_cols + k_dim * p_cols) * itemsize,
                shared_read_bytes=2.0 * k_dim * p_cols * itemsize,
                shared_write_bytes=2.0 * k_dim * p_cols * itemsize,
            )
            launch = KernelLaunch(
                name=f"amos/{pattern.name}",
                engine="dense_mma",
                a=flattened.a_vector,
                b=flattened.b_matrix,
                fragment=self.fragment,
                dtype=dtype,
                traffic=traffic,
                threads_per_block=128,
                blocks=max(1, p_cols // 64),
                registers_per_thread=128,
            )
            result = execute_launch(launch, spec)
            if result.output is None:
                raise RuntimeError(
                    f"{launch.name} produced no functional output")
            current[interior] = result.output.reshape(flattened.out_shape)
            # AMOS's mapping inefficiency multiplies the issued fragment work.
            elapsed += max(result.compute_seconds * self.mapping_inefficiency,
                           result.memory_seconds)
            compute_s += result.compute_seconds * self.mapping_inefficiency
            memory_s += result.memory_seconds
            utilization = result.utilization

        return self._package(
            pattern, grid, iterations, current,
            elapsed=elapsed,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            utilization=utilization,
        )

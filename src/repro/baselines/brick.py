"""Brick baseline (Zhao et al., SC'19): fine-grained data blocking.

Bricks reorganise the grid into small fixed-size blocks so neighbouring
points are contiguous in memory, which gives excellent locality and
vectorisation on both CPUs and GPUs.  Like DRStencil it runs on the scalar
pipeline; its strength is memory behaviour, not arithmetic throughput.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.stencils.reference import run_stencil_iterations, stencil_points_updated
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DataType, GPUSpec

__all__ = ["BrickBaseline"]


class BrickBaseline(Baseline):
    """FFMA stencil over a bricked data layout."""

    name = "Brick"

    #: Sustained fraction of FFMA peak (bricks vectorise well).
    compute_efficiency = 0.75
    #: Bricked layouts re-read a small halo per brick.
    halo_read_factor = 1.15

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        output = run_stencil_iterations(pattern, grid, iterations)

        points_per_iter = stencil_points_updated(pattern, grid.shape, 1)
        itemsize = dtype.itemsize
        # Scalar arithmetic runs on the fp32 pipeline for half-precision data.
        ffma_dtype = dtype if dtype is DataType.FP64 else DataType.TF32
        flops_per_iter = 2.0 * pattern.points * points_per_iter / self.compute_efficiency
        traffic = MemoryTraffic(
            global_read_bytes=float(grid.size) * self.halo_read_factor * itemsize,
            global_write_bytes=float(points_per_iter) * itemsize,
            shared_read_bytes=float(grid.size) * 0.5 * itemsize,
            shared_write_bytes=float(grid.size) * 0.5 * itemsize,
        )
        launch = KernelLaunch(
            name=f"brick/{pattern.name}",
            engine="ffma",
            dtype=ffma_dtype,
            flops=flops_per_iter,
            traffic=traffic,
            precomputed_result=output,
            threads_per_block=256,
            blocks=max(1, points_per_iter // 512),
            registers_per_thread=64,
            repeats=iterations,
        )
        result = execute_launch(launch, spec)
        return self._package(
            pattern, grid, iterations, output,
            elapsed=result.elapsed_seconds,
            compute_seconds=result.compute_seconds,
            memory_seconds=result.memory_seconds,
            utilization=result.utilization,
        )

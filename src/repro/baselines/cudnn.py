"""cuDNN-style baseline: the stencil as a single-channel convolution.

cuDNN lowers the convolution to an im2col matrix that is materialised in
global memory and multiplied on dense Tensor Cores.  With one input and one
output channel the GEMM's M dimension is 1, so 15 of the 16 fragment rows are
wasted (the Figure 1(a) problem), and the im2col matrix inflates global
traffic by a factor of ``k^d`` — which is why the paper measures cuDNN
2.9–60× behind SparStencil despite using the same Tensor Cores.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineResult
from repro.core.flatten import flatten_stencil
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DENSE_FRAGMENTS, DataType, FragmentShape, GPUSpec

__all__ = ["CudnnBaseline"]


class CudnnBaseline(Baseline):
    """Single-channel convolution through im2col + dense Tensor-Core GEMM."""

    name = "cuDNN"

    def __init__(self, fragment: FragmentShape = DENSE_FRAGMENTS[0]) -> None:
        self.fragment = fragment

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        radius = pattern.radius
        interior = tuple(slice(radius, s - radius) for s in grid.shape)
        itemsize = dtype.itemsize

        current = grid.data.copy()
        elapsed = compute_s = memory_s = 0.0
        utilization = None
        for _ in range(iterations):
            flattened = flatten_stencil(pattern, current)
            k_dim, p_cols = flattened.b_matrix.shape
            traffic = MemoryTraffic(
                # input read + im2col written to and read back from global
                global_read_bytes=(current.size + k_dim * p_cols) * itemsize,
                global_write_bytes=(p_cols + k_dim * p_cols) * itemsize,
                shared_read_bytes=float(k_dim * p_cols) * itemsize,
                shared_write_bytes=float(k_dim * p_cols) * itemsize,
            )
            launch = KernelLaunch(
                name=f"cudnn/{pattern.name}",
                engine="dense_mma",
                a=flattened.a_vector,
                b=flattened.b_matrix,
                fragment=self.fragment,
                dtype=dtype,
                traffic=traffic,
                threads_per_block=128,
                blocks=max(1, p_cols // 64),
                registers_per_thread=36,
            )
            result = execute_launch(launch, spec)
            if result.output is None:
                raise RuntimeError(
                    f"{launch.name} produced no functional output")
            current[interior] = result.output.reshape(flattened.out_shape)
            elapsed += result.elapsed_seconds
            compute_s += result.compute_seconds
            memory_s += result.memory_seconds
            utilization = result.utilization

        return self._package(
            pattern, grid, iterations, current,
            elapsed=elapsed,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            utilization=utilization,
        )

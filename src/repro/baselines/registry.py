"""Registry of execution methods for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.baselines.amos import AMOSBaseline
from repro.baselines.base import Baseline
from repro.baselines.brick import BrickBaseline
from repro.baselines.convstencil import ConvStencilBaseline
from repro.baselines.cudnn import CudnnBaseline
from repro.baselines.drstencil import DRStencilBaseline
from repro.baselines.naive import NaiveCudaBaseline
from repro.baselines.sparstencil_adapter import SparStencilMethod
from repro.baselines.tcstencil import TCStencilBaseline
from repro.util.validation import ValidationError

__all__ = ["available_baselines", "get_baseline", "all_methods", "FIGURE6_BASELINES"]

_REGISTRY: Dict[str, Type[Baseline]] = {
    "cuda": NaiveCudaBaseline,
    "cudnn": CudnnBaseline,
    "amos": AMOSBaseline,
    "brick": BrickBaseline,
    "drstencil": DRStencilBaseline,
    "tcstencil": TCStencilBaseline,
    "convstencil": ConvStencilBaseline,
    "sparstencil": SparStencilMethod,
}

#: The comparison set of Figure 6 (plus SparStencil itself).
FIGURE6_BASELINES = (
    "cudnn", "amos", "brick", "drstencil", "tcstencil", "convstencil",
)


def available_baselines() -> List[str]:
    """Registered method keys (lowercase)."""
    return sorted(_REGISTRY)


def get_baseline(name: str, **kwargs) -> Baseline:
    """Instantiate a method by its registry key or display name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValidationError(
            f"unknown method {name!r}; available: {available_baselines()}")
    return _REGISTRY[key](**kwargs)


def all_methods(include_sparstencil: bool = True) -> List[Baseline]:
    """Instantiate every registered method (optionally without SparStencil)."""
    methods = []
    for key in available_baselines():
        if key == "sparstencil" and not include_sparstencil:
            continue
        methods.append(get_baseline(key))
    return methods

"""SparStencil wrapped in the common method interface.

The benchmark harness iterates over "methods" uniformly; this adapter exposes
the full SparStencil pipeline (layout search + structured sparsity conversion
+ sparse-TCU execution, or the dense-TCU FP64 fallback) through the same
:class:`~repro.baselines.base.Baseline` interface the comparators use.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Baseline, BaselineResult
from repro.core.pipeline import compile_stencil, execute_compiled
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.spec import A100_SPEC, DataType, FragmentShape, GPUSpec

__all__ = ["SparStencilMethod"]


class SparStencilMethod(Baseline):
    """The paper's system as a benchmark method."""

    name = "SparStencil"

    def __init__(self, fragment: Optional[FragmentShape] = None,
                 search: bool = True,
                 conversion_method: str = "auto",
                 cache=None) -> None:
        self.fragment = fragment
        self.search = search
        self.conversion_method = conversion_method
        #: Optional :class:`repro.service.CompileCache`; when set, repeated
        #: benchmark runs of the same workload reuse the compiled plan.
        self.cache = cache

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        compiler = self.cache.compile if self.cache is not None else compile_stencil
        compiled = compiler(
            pattern, tuple(grid.shape),
            dtype=dtype, spec=spec,
            engine="auto",
            fragment=self.fragment,
            search=self.search,
            temporal_fusion=temporal_fusion,
            conversion_method=self.conversion_method,
        )
        result = execute_compiled(compiled, grid, iterations)
        extra = {
            "r1": float(compiled.config.r1),
            "r2": float(compiled.config.r2),
            "sparsity": float(compiled.plan.estimate.sparsity),
            "compute_density": float(compiled.plan.estimate.compute_density),
        }
        extra.update({f"overhead_{k}": v for k, v in result.overhead_seconds.items()})
        return self._package(
            pattern, grid, iterations, result.output,
            elapsed=result.elapsed_seconds,
            compute_seconds=result.compute_seconds,
            memory_seconds=result.memory_seconds,
            utilization=result.utilization,
            extra=extra,
        )

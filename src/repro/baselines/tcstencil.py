"""TCStencil baseline (Liu et al., ICS'22): direct dense-TCU mapping.

TCStencil stages input tiles in shared memory and feeds the flattened
stencil to dense Tensor Cores without removing the sliding-window
duplicates — the kernel vector occupies one fragment row and the staged
tiles carry the full ``k^d``-fold replication, producing the >50 % clustered
sparsity and heavy shared-memory traffic the paper describes.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult
from repro.core.flatten import flatten_stencil
from repro.stencils.grid import Grid
from repro.stencils.pattern import StencilPattern
from repro.tcu.executor import KernelLaunch, execute_launch
from repro.tcu.memory import MemoryTraffic
from repro.tcu.spec import A100_SPEC, DENSE_FRAGMENTS, DataType, FragmentShape, GPUSpec

__all__ = ["TCStencilBaseline"]


class TCStencilBaseline(Baseline):
    """Direct stencil-on-dense-Tensor-Core mapping with shared-memory staging."""

    name = "TCStencil"

    def __init__(self, fragment: FragmentShape = DENSE_FRAGMENTS[0]) -> None:
        self.fragment = fragment

    def run(
        self,
        pattern: StencilPattern,
        grid: Grid,
        iterations: int,
        *,
        dtype: DataType = DataType.FP16,
        spec: GPUSpec = A100_SPEC,
        temporal_fusion: int = 1,
    ) -> BaselineResult:
        self._validate(pattern, grid, iterations)
        dtype = DataType(dtype)
        radius = pattern.radius
        interior = tuple(slice(radius, s - radius) for s in grid.shape)
        itemsize = dtype.itemsize

        current = grid.data.copy()
        elapsed = compute_s = memory_s = 0.0
        utilization = None
        for _ in range(iterations):
            flattened = flatten_stencil(pattern, current)
            k_dim, p_cols = flattened.b_matrix.shape
            # Input tiles (with halo) come from global memory once; the
            # duplicated flattened matrix lives in shared memory only.
            traffic = MemoryTraffic(
                global_read_bytes=float(current.size) * 1.25 * itemsize,
                global_write_bytes=float(p_cols) * itemsize,
                shared_read_bytes=float(k_dim * p_cols) * itemsize,
                shared_write_bytes=float(k_dim * p_cols) * itemsize,
            )
            launch = KernelLaunch(
                name=f"tcstencil/{pattern.name}",
                engine="dense_mma",
                a=flattened.a_vector,
                b=flattened.b_matrix,
                fragment=self.fragment,
                dtype=dtype,
                traffic=traffic,
                threads_per_block=256,
                blocks=max(1, p_cols // 128),
                registers_per_thread=72,
            )
            result = execute_launch(launch, spec)
            if result.output is None:
                raise RuntimeError(
                    f"{launch.name} produced no functional output")
            current[interior] = result.output.reshape(flattened.out_shape)
            elapsed += result.elapsed_seconds
            compute_s += result.compute_seconds
            memory_s += result.memory_seconds
            utilization = result.utilization

        return self._package(
            pattern, grid, iterations, current,
            elapsed=elapsed,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            utilization=utilization,
        )

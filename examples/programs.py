"""Multi-stage stencil programs: an RK2 advection-diffusion DAG.

A :class:`repro.StencilProgram` is an ordered DAG of named stencil stages
executed once per program step.  This example builds a midpoint (RK2) time
integrator for the 2-D advection-diffusion equation

    du/dt = -c . grad(u) + nu * laplacian(u)

as a genuine DAG — the ``update`` stage reads *both* the original state and
the ``half`` midpoint stage::

    half   = (I + dt/2 * L)(state)          # midpoint estimate
    update = I(state) + dt * L(half)        # full step from the midpoint

and solves it through the session front door, checking the fp16 Tensor-Core
execution against the float64 golden reference and showing what the modelled
cross-stage fusion would save on a sharded run.

Run with::

    python examples/programs.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    STATE,
    Problem,
    ProgramStage,
    StencilPattern,
    StencilProgram,
    StencilSession,
    make_grid,
    program_fusion_summary,
    run_program_reference,
)

GRID_SIZE = 128
STEPS = 8

# physics: diffusivity, advection velocity (upwind-discretised), time step
NU = 0.05
CX, CY = 0.5, 0.25
DT = 0.4


def operator_kernel() -> np.ndarray:
    """Dense 3x3 kernel of L = -c.grad + nu*laplacian (first-order upwind
    advection for positive c, second-order central diffusion)."""
    kernel = np.zeros((3, 3))
    kernel[1, 1] = -4.0 * NU - CX - CY
    kernel[0, 1] = NU + CX    # x-1: diffusion + upwind inflow
    kernel[2, 1] = NU         # x+1
    kernel[1, 0] = NU + CY    # y-1: diffusion + upwind inflow
    kernel[1, 2] = NU         # y+1
    return kernel


def rk2_program() -> StencilProgram:
    operator = operator_kernel()
    half = np.zeros((3, 3))
    half[1, 1] = 1.0
    half += 0.5 * DT * operator
    identity = np.zeros((3, 3))
    identity[1, 1] = 1.0
    return StencilProgram(
        name="rk2-advection-diffusion",
        stages=(
            ProgramStage("half", taps=(
                (STATE, StencilPattern.from_dense(half, name="rk2-half")),
            )),
            # a two-tap stage: u_next = u + dt * L(u_half) reads both the
            # step's input state and the midpoint stage — a true DAG node
            ProgramStage("update", taps=(
                (STATE, StencilPattern.from_dense(identity,
                                                  name="identity")),
                ("half", StencilPattern.from_dense(DT * operator,
                                                   name="rk2-slope")),
            )),
        ),
        output="update",
    )


def main() -> None:
    program = rk2_program()
    print("Program:", program.describe())
    print("Chain?", program.is_chain,
          "(multi-tap stages make this a general DAG)")

    grid = make_grid((GRID_SIZE, GRID_SIZE), kind="gaussian",
                     boundary="periodic")
    session = StencilSession()
    solution = session.solve(Problem(program=program, grid=grid,
                                     iterations=STEPS))
    print("Routed to:", solution.provenance.delegate,
          "|", solution.provenance.reason)

    reference = run_program_reference(program, grid, STEPS)
    error = float(np.max(np.abs(solution.output.astype(np.float64)
                                - reference)))
    print(f"Max |error| vs float64 reference after {STEPS} steps: "
          f"{error:.2e}")
    assert error < 5e-3  # fp16 Tensor-Core tolerance

    # General DAGs run single-device (only single-tap chains shard); a
    # chain variant of the same physics shows what fusion buys when sharded.
    euler = np.zeros((3, 3))
    euler[1, 1] = 1.0
    euler += DT * operator_kernel()
    chain = StencilProgram.chain("rk2-chain", [
        ("step", StencilPattern.from_dense(euler, name="euler-step")),
        ("smooth", StencilPattern.box(2, 1, weights=[1.0 / 9.0] * 9)),
    ])
    plan = session.compile(Problem(program=chain, grid=grid,
                                   iterations=STEPS))
    summary = program_fusion_summary(plan, devices=4, steps=STEPS)
    print(f"\nFusion (modelled, {summary.devices} devices, "
          f"{summary.steps} steps):")
    print(f"  unfused halo exchanges: {summary.unfused.exchange_count}")
    print(f"  fused halo exchanges:   {summary.fused.exchange_count} "
          f"(groups: {[list(g) for g in summary.fused.groups]})")
    print(f"  exchanges removed:      {summary.exchanges_removed} "
          f"({summary.exchange_reduction:.0%})")
    session.close()


if __name__ == "__main__":
    main()

"""High-order seismic wave propagation with SparStencil.

Geophysical imaging codes sweep high-order Laplacian stencils (order 8 and
beyond) over large grids for thousands of time steps.  These kernels are the
sweet spot of the paper's technique: wide star stencils leave lots of
clustered sparsity in the morphed kernel matrix, which the 2:4 conversion
turns into sparse-Tensor-Core throughput.

The script propagates an acoustic wavelet with the standard second-order
time / eighth-order space scheme, using SparStencil for the Laplacian term,
and prints the layout the automatic search selected.

Run with::

    python examples/seismic_wave_2d.py
"""

from __future__ import annotations

import numpy as np

from repro import compile_stencil, run_stencil
from repro.stencils.domains import acoustic_wave
from repro.stencils.grid import Grid

GRID_SIZE = 192
TIME_STEPS = 12
COURANT_SQ = 0.08      # (c * dt / dx)^2, kept small for stability


def ricker_wavelet(size: int) -> np.ndarray:
    """A Ricker-style source centred in the grid."""
    x = np.linspace(-3.0, 3.0, size)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    r2 = xx ** 2 + yy ** 2
    return (1.0 - r2) * np.exp(-r2 / 2.0)


def main() -> None:
    laplacian = acoustic_wave(2, 8, name="acoustic-2d-o8")
    print(f"Stencil: {laplacian}  (radius {laplacian.radius}, "
          f"{laplacian.points} taps in a {laplacian.diameter}x{laplacian.diameter} footprint)")

    compiled = compile_stencil(laplacian, (GRID_SIZE, GRID_SIZE))
    assert compiled.search is not None
    best = compiled.search.best
    print(f"Layout search picked (r1={best.r1}, r2={best.r2}) out of "
          f"{len(compiled.search.candidates)} candidates "
          f"(sparsity {best.estimate.sparsity:.2f}, "
          f"compute density {best.estimate.compute_density:.3f})")

    # Second-order-in-time wave equation: u_next = 2u - u_prev + c^2 L(u)
    u_prev = ricker_wavelet(GRID_SIZE)
    u_curr = u_prev.copy()
    radius = laplacian.radius
    interior = (slice(radius, -radius), slice(radius, -radius))

    total_device_seconds = 0.0
    for step in range(TIME_STEPS):
        lap_run = run_stencil(compiled, Grid(data=u_curr, dtype=np.float16), 1)
        # The acoustic kernel *is* the discrete Laplacian, so the stencil
        # application gives L(u) directly on the interior region.
        laplacian_term = lap_run.output[interior]
        u_next = u_curr.copy()
        u_next[interior] = (2.0 * u_curr[interior] - u_prev[interior]
                            + COURANT_SQ * laplacian_term)
        u_prev, u_curr = u_curr, u_next
        total_device_seconds += lap_run.elapsed_seconds

    # The wavefront must expand outward: energy appears away from the centre.
    centre = GRID_SIZE // 2
    ring = abs(u_curr[centre, centre + GRID_SIZE // 4])
    print(f"\nAfter {TIME_STEPS} steps: |u| at the centre = "
          f"{abs(u_curr[centre, centre]):.4f}, on the ring = {ring:.4f}")
    print(f"Field stays bounded: max |u| = {np.abs(u_curr).max():.4f}")
    assert np.isfinite(u_curr).all()
    assert np.abs(u_curr).max() < 10.0

    print(f"Total modelled Laplacian time on the simulated A100: "
          f"{total_device_seconds * 1e6:.1f} us for {TIME_STEPS} sweeps")


if __name__ == "__main__":
    main()

"""Sharded execution through the session: one large grid, several A100s.

The same :class:`repro.Problem` runs on one device, explicitly sharded, and
under ``mode="auto"`` — where the session's perf/partition model decides,
records its reasoning in :attr:`repro.Solution.provenance`, and (for a grid
this size) routes to the sharded engine.  The sharded output is bit-identical
to the single-device run: sharding is purely an execution-engine concern.

Run with::

    python examples/sharded_multi_gpu.py
"""

from __future__ import annotations

import numpy as np

from repro import Problem, SolvePolicy, StencilPattern, StencilSession, make_grid, multi_a100
from repro.analysis import per_shard_utilization, sharded_scaling


def main() -> None:
    # 1. A 2D heat stencil on a grid sized for multi-device territory
    #    (per-sweep device time must clear the NVLink halo latency — on
    #    small grids sharding correctly models a *slowdown*, and auto mode
    #    would keep the problem on one device).
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    problem = Problem(heat, make_grid((2048, 2048), kind="gaussian"),
                      iterations=2, tag="heat/large")

    with StencilSession(devices=multi_a100(4)) as session:
        # 2. Single-device reference run.
        single = session.solve(problem, mode="single")
        print(f"single device : "
              f"{single.elapsed_seconds * 1e6:8.1f} us modelled")

        # 3. The same problem, explicitly sharded over the 4-device pool.
        sharded = session.solve(problem, SolvePolicy(mode="sharded"))
        result = sharded.result
        identical = np.array_equal(single.output, sharded.output)
        print(f"4 devices     : {result.elapsed_seconds * 1e6:8.1f} us modelled "
              f"({single.elapsed_seconds / result.elapsed_seconds:.2f}x)")
        print(f"shard grid    : {result.shard_grid}")
        print(f"bit-identical : {identical}")
        print(f"halo traffic  : {100 * result.halo_traffic_fraction:.3f}% "
              f"({result.halo_exchange_bytes / 1024:.1f} KiB exchanged)")
        print(f"load balance  : {result.load_balance:.3f}")

        # 4. mode="auto": the session's scheduler makes the same call and
        #    says why.
        auto = session.solve(problem)  # SolvePolicy() defaults to auto
        print(f"\nauto routed to: {auto.provenance.executor} on "
              f"{auto.provenance.devices} device(s) "
              f"({auto.provenance.reason})")
        assert np.array_equal(auto.output, single.output)

        print("\nPer-shard utilization:")
        for row in per_shard_utilization(result):
            print(f"  shard {int(row['shard'])}: "
                  f"{row['elapsed_seconds'] * 1e6:7.1f} us busy, "
                  f"SM {row['SM Utilization']:5.1f}%, "
                  f"DRAM {row['DRAM Throughput']:5.1f}%")

        # 5. How the same workload scales with device count (reusing the
        #    session cache and the already-compiled plan).
        report = sharded_scaling(heat, problem.grid, problem.iterations,
                                 device_counts=(1, 2, 4, 8),
                                 cache=session.cache,
                                 compiled=single.compiled)
        print("\nScaling sweep:")
        for point in report.points:
            print(f"  {point.devices:2d} device(s): "
                  f"speedup {point.speedup:5.2f}x, "
                  f"efficiency {point.efficiency:5.2f}, "
                  f"halo {100 * point.halo_traffic_fraction:5.2f}%")


if __name__ == "__main__":
    main()

"""Sharded execution: one large grid across several simulated A100s.

The grid's interior is decomposed into per-shard subgrids with radius-wide
halos; each shard compiles (through the shared compilation cache) and sweeps
on its own simulated device, exchanging halos with its neighbours between
sweeps.  The output is bit-identical to the single-device run — sharding is
purely an execution-engine concern.

Run with::

    python examples/sharded_multi_gpu.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompileCache,
    StencilPattern,
    compile_stencil,
    make_grid,
    multi_a100,
    run_stencil,
    solve_sharded,
)
from repro.analysis import per_shard_utilization, sharded_scaling


def main() -> None:
    # 1. A 2D heat stencil on a grid sized for multi-device territory
    #    (per-sweep device time must clear the NVLink halo latency — on
    #    small grids sharding correctly models a *slowdown*).
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    grid = make_grid((2048, 2048), kind="gaussian")
    iterations = 2

    # 2. Single-device reference run.
    compiled = compile_stencil(heat, grid.shape)
    single = run_stencil(compiled, grid, iterations)
    print(f"single device : {single.elapsed_seconds * 1e6:8.1f} us modelled")

    # 3. The same workload sharded over 4 simulated A100s on NVLink.
    cache = CompileCache()
    _, sharded = solve_sharded(heat, grid, iterations,
                               devices=multi_a100(4), cache=cache)
    identical = np.array_equal(single.output, sharded.output)
    print(f"4 devices     : {sharded.elapsed_seconds * 1e6:8.1f} us modelled "
          f"({single.elapsed_seconds / sharded.elapsed_seconds:.2f}x)")
    print(f"shard grid    : {sharded.shard_grid}")
    print(f"bit-identical : {identical}")
    print(f"halo traffic  : {100 * sharded.halo_traffic_fraction:.3f}% "
          f"({sharded.halo_exchange_bytes / 1024:.1f} KiB exchanged)")
    print(f"load balance  : {sharded.load_balance:.3f}")

    print("\nPer-shard utilization:")
    for row in per_shard_utilization(sharded):
        print(f"  shard {int(row['shard'])}: "
              f"{row['elapsed_seconds'] * 1e6:7.1f} us busy, "
              f"SM {row['SM Utilization']:5.1f}%, "
              f"DRAM {row['DRAM Throughput']:5.1f}%")

    # 4. How the same workload scales with device count.
    report = sharded_scaling(heat, grid, iterations,
                             device_counts=(1, 2, 4, 8), cache=cache,
                             compiled=compiled)
    print("\nScaling sweep:")
    for point in report.points:
        print(f"  {point.devices:2d} device(s): speedup {point.speedup:5.2f}x, "
              f"efficiency {point.efficiency:5.2f}, "
              f"halo {100 * point.halo_traffic_fraction:5.2f}%")


if __name__ == "__main__":
    main()

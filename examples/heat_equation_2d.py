"""Solve the 2D heat equation with SparStencil and compare against baselines.

This mirrors the kind of workload the paper's introduction motivates: a long
explicit time integration whose stencil sweep dominates the runtime.  The
script integrates a hot square cooling down, checks physical sanity (maximum
principle, smooth decay), and reports the modelled speedup of SparStencil
over the cuDNN-style and naive-CUDA baselines.

Run with::

    python examples/heat_equation_2d.py
"""

from __future__ import annotations

import numpy as np

from repro import StencilPattern, compile_stencil, make_grid, run_stencil
from repro.baselines import CudnnBaseline, NaiveCudaBaseline
from repro.stencils.grid import Grid

GRID_SIZE = 160
ALPHA = 0.2          # diffusion number (stable for explicit updates: < 0.25)
ITERATIONS = 24


def build_initial_condition() -> Grid:
    """A hot square patch in the middle of a cold plate."""
    data = np.zeros((GRID_SIZE, GRID_SIZE))
    lo, hi = GRID_SIZE // 3, 2 * GRID_SIZE // 3
    data[lo:hi, lo:hi] = 100.0
    return Grid(data=data, dtype=np.float16)


def main() -> None:
    heat = StencilPattern.star(
        2, 1, weights=[1.0 - 4.0 * ALPHA, ALPHA, ALPHA, ALPHA, ALPHA],
        name="heat-2d")
    grid = build_initial_condition()
    initial_max = grid.data.max()
    initial_mean = grid.data.mean()

    compiled = compile_stencil(heat, grid.shape, temporal_fusion=3)
    print("SparStencil plan:", compiled.plan.summary())

    result = run_stencil(compiled, grid, iterations=ITERATIONS)
    final = result.output

    # --- physics sanity checks -------------------------------------------
    # Maximum principle: diffusion never exceeds the initial extremes.
    assert final.max() <= initial_max + 1e-2
    assert final.min() >= -1e-2
    # Heat spreads: the patch boundary cools down and the cold surroundings
    # just outside the patch warm up (the patch centre is too far from the
    # edge to change in only a couple dozen steps).
    lo = GRID_SIZE // 3
    boundary_of_patch = final[lo, GRID_SIZE // 2]
    outside_patch = final[lo - 4, GRID_SIZE // 2]
    assert boundary_of_patch < initial_max - 1.0
    assert outside_patch > 0.1
    print(f"\nPeak temperature after {ITERATIONS} steps: "
          f"{final.max():7.2f} (initial {initial_max:.1f})")
    print(f"Patch boundary cooled to {boundary_of_patch:6.2f}; "
          f"4 cells outside warmed to {outside_patch:6.2f}")
    print(f"Interior mean (should stay ~constant):     "
          f"{final[1:-1, 1:-1].mean():7.3f} vs initial {initial_mean:7.3f}")

    # --- performance comparison ------------------------------------------
    print(f"\nSparStencil modelled time: {result.elapsed_seconds * 1e6:9.1f} us "
          f"({result.gstencil_per_second:7.1f} GStencil/s)")
    for baseline in (CudnnBaseline(), NaiveCudaBaseline()):
        b = baseline.run(heat, grid, ITERATIONS)
        speedup = b.elapsed_seconds / result.elapsed_seconds
        print(f"{baseline.name:12s} modelled time: {b.elapsed_seconds * 1e6:9.1f} us "
              f"({b.gstencil_per_second:7.1f} GStencil/s)  ->  "
              f"SparStencil is {speedup:4.1f}x faster")


if __name__ == "__main__":
    main()

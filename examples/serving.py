"""Online serving: a request stream through the StencilServer.

The server owns the whole online path — bounded admission queue,
fingerprint-coalescing micro-batcher, device-pool scheduler, telemetry —
on top of the compile cache and the execution engine.  This walkthrough
submits a skewed stream of requests (two hot kernels, one cold, one huge),
shows the typed backpressure errors, and prints the metrics snapshot an
operator would scrape.

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeadlineExceededError,
    QueueFullError,
    ServerConfig,
    StencilPattern,
    StencilServer,
    make_grid,
    sparstencil_solve,
)


def main() -> None:
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    box = StencilPattern.box(2, 1, name="box-2d9p")
    wave = StencilPattern.star(1, 2, name="wave-1d")

    # 1. A server over 4 simulated A100s.  The context manager drains and
    #    shuts down on exit; submit() never blocks — it admits or rejects.
    with StencilServer(devices=4,
                       config=ServerConfig(window_seconds=0.01)) as server:
        # 2. A skewed stream: heat-2d is hot (6 requests, one compile),
        #    box/wave are cooler, and one 2048^2 grid is big enough that the
        #    scheduler routes it to the sharded executor.
        handles = [
            server.submit(heat, make_grid((96, 96), seed=i), 4,
                          tag=f"heat/{i}")
            for i in range(6)
        ]
        handles += [
            server.submit(box, make_grid((96, 96), seed=10 + i), 4,
                          tag=f"box/{i}")
            for i in range(3)
        ]
        handles.append(server.submit(wave, make_grid((4096,), seed=20), 4,
                                     tag="wave/0"))
        handles.append(server.submit(heat, make_grid((2048, 2048), seed=30),
                                     2, tag="heat/big"))

        # 3. Results are bit-identical to direct sequential solves.
        big = next(h for h in handles if h.tag == "heat/big")
        result = big.result()
        _, reference = sparstencil_solve(heat, make_grid((2048, 2048),
                                                         seed=30), 2)
        print(f"heat/big routed to : {result.executor} "
              f"({result.devices} devices)")
        print(f"bit-identical      : "
              f"{np.array_equal(result.output, reference.output)}")

        for handle in handles:
            outcome = handle.result()
            print(f"  {outcome.tag:10s} {outcome.executor:7s} "
                  f"batch={outcome.batch_size:2d} "
                  f"wait={outcome.queue_wait_seconds * 1e3:6.1f} ms "
                  f"total={outcome.service_seconds * 1e3:6.1f} ms")

        # 4. The operator's view: one plain-dict metrics snapshot.
        metrics = server.metrics()
        print("\nTelemetry:")
        print(f"  completed          : {metrics['completed']}"
              f" / submitted {metrics['submitted']}")
        print(f"  coalescing ratio   : "
              f"{metrics['coalescing']['ratio']:.2f} requests/dispatch")
        print(f"  cache hit rate     : {metrics['cache']['hit_rate']:.1%} "
              f"({metrics['cache']['misses']} compiles)")
        print(f"  p50 / p95 latency  : "
              f"{metrics['latency']['total']['p50_seconds'] * 1e3:.1f} / "
              f"{metrics['latency']['total']['p95_seconds'] * 1e3:.1f} ms")
        print(f"  peak queue depth   : {metrics['queue']['peak_depth']}")
        print(f"  peak devices busy  : {metrics['devices']['peak_in_use']}"
              f" / {metrics['devices']['device_count']}")

    # 5. Backpressure is typed, never silent: with the single device leased
    #    away (a busy pool), a burst overruns the tiny queue and the
    #    overflow is rejected with QueueFullError; a hopeless deadline is
    #    refused at admission.
    with StencilServer(devices=1,
                       config=ServerConfig(queue_bound=2,
                                           max_batch_size=1)) as server:
        lease = server.scheduler.ledger.acquire(1)  # pool fully busy
        accepted, rejected = 0, 0
        for i in range(8):
            try:
                server.submit(heat, make_grid((96, 96), seed=i), 2)
                accepted += 1
            except QueueFullError:
                rejected += 1
        print(f"\nBackpressure: accepted {accepted}, "
              f"rejected {rejected} (queue_bound=2, pool busy)")
        try:
            server.submit(heat, make_grid((96, 96), seed=0), 2,
                          deadline_seconds=-1.0)
        except DeadlineExceededError as exc:
            print(f"Dead-on-arrival deadline refused: {exc}")
        server.scheduler.ledger.release(lease)
        server.drain()  # every *accepted* request is still served


if __name__ == "__main__":
    main()

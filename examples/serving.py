"""Online serving through the session: Problems in, typed results out.

The session's server owns the whole online path — bounded admission queue,
fingerprint-coalescing micro-batcher, device-pool scheduler, telemetry — on
top of the same compile cache and engines every other mode uses.  This
walkthrough submits a skewed stream of :class:`repro.Problem`\\ s, shows the
blocking ``mode="served"`` form, the typed backpressure errors, and the
metrics snapshot an operator would scrape.

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeadlineExceededError,
    Problem,
    QueueFullError,
    SessionConfig,
    StencilPattern,
    StencilSession,
    make_grid,
)


def main() -> None:
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    box = StencilPattern.box(2, 1, name="box-2d9p")
    wave = StencilPattern.star(1, 2, name="wave-1d")

    # 1. A session over 4 simulated A100s; its server materialises on first
    #    use with the session's serving tunables.  The context manager shuts
    #    the server down on exit.
    with StencilSession(SessionConfig(devices=4,
                                      window_seconds=0.01)) as session:
        server = session.server()

        # 2. A skewed stream: heat-2d is hot (6 requests, one compile),
        #    box/wave are cooler, and one 2048^2 grid is big enough that the
        #    scheduler routes it to the sharded executor.
        problems = [Problem(heat, make_grid((96, 96), seed=i), 4,
                            tag=f"heat/{i}") for i in range(6)]
        problems += [Problem(box, make_grid((96, 96), seed=10 + i), 4,
                             tag=f"box/{i}") for i in range(3)]
        problems.append(Problem(wave, make_grid((4096,), seed=20), 4,
                                tag="wave/0"))
        problems.append(Problem(heat, make_grid((2048, 2048), seed=30), 2,
                                tag="heat/big"))
        handles = [server.submit_problem(problem) for problem in problems]

        # 3. Results are bit-identical to direct solves of the same Problem.
        big = next(h for h in handles if h.tag == "heat/big")
        result = big.result()
        reference = session.solve(
            Problem(heat, make_grid((2048, 2048), seed=30), 2),
            mode="single")
        print(f"heat/big routed to : {result.executor} "
              f"({result.devices} devices)")
        print(f"bit-identical      : "
              f"{np.array_equal(result.output, reference.output)}")

        for handle in handles:
            outcome = handle.result()
            print(f"  {outcome.tag:10s} {outcome.executor:7s} "
                  f"batch={outcome.batch_size:2d} "
                  f"wait={outcome.queue_wait_seconds * 1e3:6.1f} ms "
                  f"total={outcome.service_seconds * 1e3:6.1f} ms")

        # 4. The blocking form: mode="served" submits and waits, and the
        #    Solution's provenance records what the server did.
        solution = session.solve(Problem(heat, make_grid((96, 96), seed=99),
                                         4, tag="heat/blocking"),
                                 mode="served")
        print(f"\nmode='served'      : executor={solution.provenance.executor} "
              f"delegate={solution.provenance.delegate} "
              f"batch={solution.provenance.batch_size}")

        # 5. The operator's view: one plain-dict metrics snapshot (the
        #    session wraps cache + pool + server metrics).
        metrics = session.metrics()["server"]
        print("\nTelemetry:")
        print(f"  completed          : {metrics['completed']}"
              f" / submitted {metrics['submitted']}")
        print(f"  coalescing ratio   : "
              f"{metrics['coalescing']['ratio']:.2f} requests/dispatch")
        print(f"  cache hit rate     : {metrics['cache']['hit_rate']:.1%} "
              f"({metrics['cache']['misses']} compiles)")
        print(f"  p50 / p95 latency  : "
              f"{metrics['latency']['total']['p50_seconds'] * 1e3:.1f} / "
              f"{metrics['latency']['total']['p95_seconds'] * 1e3:.1f} ms")
        print(f"  peak queue depth   : {metrics['queue']['peak_depth']}")
        print(f"  peak devices busy  : {metrics['devices']['peak_in_use']}"
              f" / {metrics['devices']['device_count']}")

    # 6. Backpressure is typed, never silent: with the single device leased
    #    away (a busy pool), a burst overruns the tiny queue and the
    #    overflow is rejected with QueueFullError; a hopeless deadline is
    #    refused at admission.
    with StencilSession(SessionConfig(devices=1, queue_bound=2,
                                      max_batch_size=1)) as session:
        server = session.server()
        lease = session.scheduler.ledger.acquire(1)  # pool fully busy
        accepted, rejected = 0, 0
        for i in range(8):
            try:
                server.submit_problem(
                    Problem(heat, make_grid((96, 96), seed=i), 2))
                accepted += 1
            except QueueFullError:
                rejected += 1
        print(f"\nBackpressure: accepted {accepted}, "
              f"rejected {rejected} (queue_bound=2, pool busy)")
        try:
            server.submit_problem(
                Problem(heat, make_grid((96, 96), seed=0), 2),
                deadline_seconds=-1.0)
        except DeadlineExceededError as exc:
            print(f"Dead-on-arrival deadline refused: {exc}")
        session.scheduler.ledger.release(lease)
        server.drain()  # every *accepted* request is still served


if __name__ == "__main__":
    main()

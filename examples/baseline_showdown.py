"""Compare SparStencil against every baseline on a Table-2 kernel.

A small-scale rendition of the Figure-6 experiment: all methods run the same
Box-2D49P workload on the simulated A100 and the script prints a ranking with
speedups relative to SparStencil, plus the correctness error of each method
against the golden reference.

Run with::

    python examples/baseline_showdown.py [kernel-name]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import CompileCache, get_benchmark, make_grid, run_stencil_iterations
from repro.analysis import cache_amortization, compare_methods
from repro.baselines import all_methods

GRID_2D = (192, 192)
ITERATIONS = 3


def main(kernel_name: str = "Box-2D49P") -> None:
    config = get_benchmark(kernel_name)
    pattern = config.pattern
    shape = {1: (8192,), 2: GRID_2D, 3: (48, 48, 48)}[pattern.ndim]
    grid = make_grid(shape, kind="random", seed=42)

    # Figure-6 protocol: 3x temporal fusion for the TCU layout methods on
    # small kernels.
    fusion = {"SparStencil": 3, "ConvStencil": 3} if pattern.points <= 9 else {}

    # SparStencil compiles through the service cache: the comparison run
    # pays the layout search once, and the warm re-run below reuses the plan.
    cache = CompileCache()
    methods = all_methods()
    sparstencil = next(m for m in methods if m.name == "SparStencil")
    sparstencil.cache = cache

    print(f"Workload: {config.name} ({pattern.points} taps) on {shape}, "
          f"{ITERATIONS} iterations, fp16")
    comparison = compare_methods(pattern, grid, ITERATIONS, methods,
                                 temporal_fusion=fusion)
    reference = run_stencil_iterations(pattern, grid, ITERATIONS)
    errors = comparison.max_error_vs(reference)
    speedups = comparison.speedup_over("SparStencil")

    print(f"\n{'method':>14} {'GStencil/s':>12} {'vs SparStencil':>15} "
          f"{'bound':>8} {'max err':>10}")
    ranked = sorted(comparison.results.items(),
                    key=lambda kv: kv[1].elapsed_seconds)
    for name, result in ranked:
        rel = 1.0 / speedups[name]
        print(f"{name:>14} {result.gstencil_per_second:>12.1f} "
              f"{rel:>14.2f}x {result.bound:>8} {errors[name]:>10.2e}")

    fastest = comparison.fastest()
    print(f"\nFastest method: {fastest}")

    # A follow-up request for the same workload (think: the next user in the
    # queue) is a pure cache hit — no morphing, conversion or layout search.
    sparstencil.run(pattern, grid, ITERATIONS,
                    temporal_fusion=fusion.get("SparStencil", 1))
    amortization = cache_amortization(cache)
    print(f"Compile cache after a repeat request: "
          f"{amortization.misses} compile(s), {amortization.hits} hit(s), "
          f"hit rate {amortization.hit_rate:.0%}, "
          f"saved {amortization.saved_seconds * 1e3:.1f} ms, "
          f"amortized {amortization.amortized_seconds_per_request * 1e3:.1f} ms "
          f"of host compile per request")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Box-2D49P")

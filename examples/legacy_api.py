"""Migration reference: the pre-session API, side by side with the session.

The five historical entry points still work — each one is a
deprecation-warning shim delegating to the default
:class:`repro.StencilSession`, so results are bit-identical — but new code
should use the session directly.  The mapping:

=====================================  =============================================
Legacy call                            Session equivalent
=====================================  =============================================
``compile_stencil(p, shape)`` +        ``session.solve(Problem(p, grid, n))``
``run_stencil(compiled, grid, n)``     (or ``session.run(compiled, grid, n)``
                                       for an existing plan)
``sparstencil_solve(p, grid, n)``      ``session.solve(Problem(p, grid, n),
                                       mode="single")``
``solve_many(requests)``               ``session.solve_batch(problems)``
``solve_sharded(p, grid, n,            ``session.solve(Problem(p, grid, n),
devices=4)``                           SolvePolicy(mode="sharded", devices=4))``
``StencilServer.submit(p, grid, n)``   ``server.submit_problem(Problem(p, grid,
                                       n))`` or ``session.solve(...,
                                       mode="served")``
``SolveRequest(...)``                  ``Problem(...)``
=====================================  =============================================

Run with::

    python examples/legacy_api.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import (
    Problem,
    SolvePolicy,
    StencilPattern,
    StencilSession,
    compile_stencil,
    make_grid,
    run_stencil,
    solve_many,
    solve_sharded,
    sparstencil_solve,
)
from repro.service import SolveRequest


def main() -> None:
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    grid = make_grid((128, 128), kind="gaussian")

    session = StencilSession(devices=2)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)

        # --- run_stencil / sparstencil_solve ---------------------------- #
        compiled = compile_stencil(heat, grid.shape)   # not deprecated
        legacy_run = run_stencil(compiled, grid, 4)
        _, legacy_solve = sparstencil_solve(heat, grid, 4)
        modern = session.solve(Problem(heat, grid, 4), mode="single")
        assert np.array_equal(legacy_run.output, modern.output)
        assert np.array_equal(legacy_solve.output, modern.output)

        # --- solve_many ------------------------------------------------- #
        requests = [SolveRequest(heat, make_grid((64, 64), seed=i), 2,
                                 tag=f"r{i}") for i in range(3)]
        legacy_report = solve_many(requests)
        modern_report = session.solve_batch(
            [Problem(heat, make_grid((64, 64), seed=i), 2, tag=f"r{i}")
             for i in range(3)])
        for old, new in zip(legacy_report.items, modern_report.items):
            assert np.array_equal(old.result.output, new.result.output)

        # --- solve_sharded ---------------------------------------------- #
        big = make_grid((1024, 1024), seed=9)
        _, legacy_sharded = solve_sharded(heat, big, 2, devices=2)
        modern_sharded = session.solve(
            Problem(heat, big, 2), SolvePolicy(mode="sharded", devices=2))
        assert np.array_equal(legacy_sharded.output, modern_sharded.output)

    print("All legacy entry points matched the session bit-for-bit.")
    print(f"\n{len(caught)} DeprecationWarnings were emitted; each names its "
          f"replacement:")
    for message in sorted({str(w.message).split(";")[0] for w in caught}):
        print(f"  - {message}")

    session.close()


if __name__ == "__main__":
    main()

"""Backends: run the same compiled plan on different execution backends.

Every plan the compiler produces carries a *backend* — the host strategy
that executes the sweeps.  The default, ``tcu-sim``, is the instrumented
step-by-step simulation of the paper's kernel (gather through the lookup
table, 2:4-sparse MMA per fragment row, halo reassembly).  The ``numpy``
backend executes the mathematically identical update as one vectorized
host sweep: float64-exact numerics and several times faster wall-clock,
while billing the *same* modelled device time from the plan's roofline
estimate.

Pick a backend per solve (``SolvePolicy(backend=...)``), per compile
(``compile_stencil(..., backend=...)``), or process-wide with the
``REPRO_BACKEND`` environment variable.  Backend choice joins the compile
fingerprint, so caches never serve a plan across backends.

Run with::

    python examples/backends.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    Problem,
    SolvePolicy,
    StencilPattern,
    StencilSession,
    available_backends,
    get_backend,
    make_grid,
    run_stencil_iterations,
)


def main() -> None:
    # 1. What is registered in this process?
    print("Registered backends:")
    for name in available_backends():
        backend = get_backend(name)
        print(f"  {name:8s} {backend.description}")

    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    grid = make_grid((256, 256), kind="gaussian")
    iterations = 8
    reference = run_stencil_iterations(heat, grid, iterations)

    # 2. Solve the same problem on each backend.  The policy's backend
    #    joins the compile fingerprint, so each backend compiles its own
    #    plan — a cached tcu-sim plan is never served to a numpy solve.
    with StencilSession() as session:
        solutions = {}
        for name in available_backends():
            problem = Problem(heat, grid, iterations, tag=f"demo-{name}")
            start = time.perf_counter()
            solution = session.solve(problem, SolvePolicy(mode="single",
                                                          backend=name))
            wall = time.perf_counter() - start
            solutions[name] = solution
            error = float(np.max(np.abs(solution.output - reference)))
            print(f"\n{name}:")
            print(f"  provenance.backend     : {solution.provenance.backend}")
            print(f"  host wall-clock        : {wall * 1e3:8.2f} ms")
            print(f"  modelled device time   : "
                  f"{solution.result.elapsed_seconds * 1e6:8.2f} us")
            print(f"  max |error| vs float64 : {error:.2e}")

        stats = session.cache.stats
        print(f"\nSession cache: {stats.misses} compiles for "
              f"{len(solutions)} backends (fingerprints are per-backend)")

    # 3. The backends agree on the modelled device economics bit-exactly
    #    (both bill the plan's roofline estimate); they differ only in host
    #    wall-clock and in the fp16 rounding the simulation carries.
    sim = solutions["tcu-sim"]
    fast = solutions["numpy"]
    assert sim.result.elapsed_seconds == fast.result.elapsed_seconds
    drift = float(np.max(np.abs(sim.output.astype(np.float64) - fast.output)))
    print(f"tcu-sim vs numpy outputs : max |drift| {drift:.2e} "
          f"(the simulation's fp16 envelope)")
    assert drift < 2e-2


if __name__ == "__main__":
    main()

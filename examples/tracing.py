"""End-to-end tracing: follow one served, sharded request span by span.

A :class:`repro.Tracer` attached to the session records every phase a
request passes through — queue wait, the coalescing window, the routing
decision (including the communication-avoiding halo depth), compiles and
cache lookups, and per-round sweeps / halo exchanges inside the sharded
engine — as one span tree, keyed by the ``trace_id`` stamped into
``Solution.provenance``.  The trace exports to Chrome trace-event JSON
(open it at https://ui.perfetto.dev) and to JSONL, and the unified metrics
registry exports a one-dict snapshot of the whole system next to it.

Run with::

    python examples/tracing.py [output.json]
"""

from __future__ import annotations

import json
import sys

from repro import (
    Problem,
    SessionConfig,
    SolvePolicy,
    StencilPattern,
    StencilSession,
    Tracer,
    global_registry,
    make_grid,
)
from repro.analysis import render_span_tree, validate_spans


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")

    # 1. A tracer-equipped session: every solve opens a root span, and the
    #    server / cache / engines join it automatically.
    tracer = Tracer()
    with StencilSession(SessionConfig(devices=4, tracer=tracer,
                                      min_speedup=1.01)) as session:
        # 2. One served request, big enough that the scheduler shards it
        #    across the pool (per-round sweep + halo-exchange spans).
        problem = Problem(heat, make_grid((1024, 1024), seed=7),
                          iterations=8, tag="traced-request")
        solution = session.solve(problem, SolvePolicy(mode="served"))
        # snapshot while the server is alive — registry providers are
        # weakrefs, so the server section is pruned once the session closes
        snapshot = global_registry().snapshot()

    trace_id = solution.provenance.trace_id
    spans = tracer.spans(trace_id)
    print(f"executor: {solution.provenance.executor} "
          f"(delegate={solution.provenance.delegate}, "
          f"devices={solution.provenance.devices})")
    print(f"trace_id: {trace_id}  ({len(spans)} spans)")
    problems = validate_spans(spans)
    print(f"trace well-formed: {not problems}")

    # 3. The span tree, human-readable (wall ms + modelled device ms).
    print()
    print(render_span_tree(spans, attr_keys=["outcome", "halo_depth",
                                             "executor", "devices",
                                             "round", "phase"]))

    # 4. Chrome trace-event export — load this file in Perfetto.
    tracer.export_chrome(out_path, trace_id)
    with open(out_path) as fh:
        doc = json.load(fh)
    print(f"\nwrote {out_path}: {len(doc['traceEvents'])} events "
          f"(open at https://ui.perfetto.dev)")

    # 5. The unified metrics snapshot: server, cache and device-pool
    #    sections in one dict, registered automatically (taken above,
    #    while the session was still serving).
    sections = sorted(k for k in snapshot
                      if k not in ("counters", "gauges", "histograms"))
    print(f"metrics sections: {sections}")
    for name in sections:
        if name.startswith("cache"):
            cache = snapshot[name]
            print(f"  {name}: hit_rate={cache['hit_rate']:.2f} "
                  f"resident={cache['resident_plans']}")

    assert not problems, problems
    assert {"queue_wait", "coalesce", "route", "sweep"} <= \
        {s.name for s in spans}
    assert any(name.startswith("server") for name in sections), sections


if __name__ == "__main__":
    main()

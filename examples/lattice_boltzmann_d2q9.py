"""Lattice-Boltzmann-style relaxation with the D2Q9 neighbourhood.

Lattice Boltzmann methods are one of the nine application domains of the
paper's 79-kernel suite.  This example runs a BGK-like step split into its
two classical sub-steps — *collide* (relaxation toward the D2Q9
equilibrium-weighted average) and *stream* (upwind bulk motion) — expressed
as a :class:`repro.StencilProgram` and solved through the session front
door, then verifies the program path is **bit-identical** to the hand-rolled
loop that runs the two compiled kernels one engine call at a time.

Run with::

    python examples/lattice_boltzmann_d2q9.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Problem,
    StencilPattern,
    StencilProgram,
    StencilSession,
)
from repro.engine import SingleDeviceExecutor
from repro.stencils.domains import lbm_d2q9
from repro.stencils.grid import Grid

GRID_SIZE = 128
STEPS = 16


def stream_pattern() -> StencilPattern:
    """Upwind bulk motion along the (+x, +y) lattice direction: each site
    keeps most of its density and receives the rest from the upwind axis
    neighbours (weights sum to one, so streaming conserves mass)."""
    kernel = np.zeros((3, 3))
    kernel[1, 1] = 0.7
    kernel[0, 1] = 0.15   # from x-1 (upwind in +x)
    kernel[1, 0] = 0.15   # from y-1 (upwind in +y)
    return StencilPattern.from_dense(kernel, name="lbm-stream")


def main() -> None:
    collide = lbm_d2q9()
    stream = stream_pattern()
    program = StencilProgram.chain(
        "lbm-d2q9", [("collide", collide), ("stream", stream)])
    print("Program:", program.describe())

    # Initial density: a short-wavelength perturbation on a uniform background
    # (short wavelengths relax quickly under the D2Q9 smoothing).
    x = np.linspace(0.0, 2.0 * np.pi, GRID_SIZE)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    density = 1.0 + 0.05 * np.sin(8.0 * xx) * np.cos(8.0 * yy)
    grid = Grid(data=density, dtype=np.float16)

    # --- the program path: one solve, stages compiled through the cache ---
    session = StencilSession()
    solution = session.solve(Problem(program=program, grid=grid,
                                     iterations=STEPS))
    plan = solution.compiled
    print("Program fingerprint:", solution.fingerprint[:16], "...")
    for entry in solution.provenance.stage_fingerprints:
        stage, _, fingerprint = entry.partition(":")
        print(f"  stage {stage:8s} -> {fingerprint[:16]}...")
    print("Fusion groups:", solution.provenance.fusion_groups,
          f"({plan.fusion.reason})")

    # --- the hand-rolled loop the program replaces: one engine call per
    # stage per step, feeding each stage's output grid into the next ---
    executor = SingleDeviceExecutor(cache=session.cache)
    state = grid
    for _ in range(STEPS):
        for stage in plan.stages:
            out = executor.execute(stage.compiled[0], state, 1).output
            state = Grid(data=out, boundary=grid.boundary)

    identical = np.array_equal(solution.output, state.data)
    print(f"Program output bit-identical to the hand-rolled loop: {identical}")
    assert identical

    # The collide and stream weights each sum to one, so interior mass is
    # (approximately) conserved and the perturbation decays monotonically.
    initial_amplitude = float(np.abs(density - 1.0).max())
    final_amplitude = float(np.abs(solution.output[8:-8, 8:-8] - 1.0).max())
    print(f"Perturbation amplitude: {initial_amplitude:.4f} -> "
          f"{final_amplitude:.4f}")
    assert final_amplitude < initial_amplitude

    interior_mean = solution.output[8:-8, 8:-8].mean()
    print(f"Interior mean density: {interior_mean:.6f} (expected ~1.0)")
    assert abs(interior_mean - 1.0) < 1e-2

    result = solution.result
    print(f"\nModelled device time: {result.elapsed_seconds * 1e6:.1f} us "
          f"({result.gstencil_per_second:.1f} GStencil/s)")
    session.close()


if __name__ == "__main__":
    main()

"""Lattice-Boltzmann-style relaxation with the D2Q9 neighbourhood.

Lattice Boltzmann methods are one of the nine application domains of the
paper's 79-kernel suite.  This example runs a BGK-like relaxation of a
density field toward local equilibrium using the D2Q9 equilibrium-weighted
neighbourhood as a single fused stencil, executed on the simulated sparse
Tensor Cores, and verifies mass conservation.

Run with::

    python examples/lattice_boltzmann_d2q9.py
"""

from __future__ import annotations

import numpy as np

from repro import compile_stencil, run_stencil, run_stencil_iterations
from repro.stencils.domains import lbm_d2q9
from repro.stencils.grid import Grid

GRID_SIZE = 128
STEPS = 16


def main() -> None:
    d2q9 = lbm_d2q9()
    print(f"Stencil: {d2q9}  weights sum to {sum(d2q9.weights):.6f}")

    # Initial density: a short-wavelength perturbation on a uniform background
    # (short wavelengths relax quickly under the D2Q9 smoothing).
    x = np.linspace(0.0, 2.0 * np.pi, GRID_SIZE)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    density = 1.0 + 0.05 * np.sin(8.0 * xx) * np.cos(8.0 * yy)
    grid = Grid(data=density, dtype=np.float16)

    compiled = compile_stencil(d2q9, grid.shape)
    print("Selected layout:", compiled.config.r1, "x", compiled.config.r2,
          "| engine:", compiled.engine)

    result = run_stencil(compiled, grid, iterations=STEPS)
    reference = run_stencil_iterations(d2q9, grid, STEPS)
    error = float(np.max(np.abs(result.output - reference)))
    print(f"Max |error| vs reference after {STEPS} steps: {error:.2e}")

    # The D2Q9 weights sum to one, so interior mass is (approximately)
    # conserved and the perturbation amplitude decays monotonically.
    initial_amplitude = float(np.abs(density - 1.0).max())
    final_amplitude = float(np.abs(result.output[8:-8, 8:-8] - 1.0).max())
    print(f"Perturbation amplitude: {initial_amplitude:.4f} -> {final_amplitude:.4f}")
    assert final_amplitude < initial_amplitude

    interior_mean = result.output[8:-8, 8:-8].mean()
    print(f"Interior mean density: {interior_mean:.6f} (expected ~1.0)")
    assert abs(interior_mean - 1.0) < 1e-2

    print(f"\nModelled device time: {result.elapsed_seconds * 1e6:.1f} us "
          f"({result.gstencil_per_second:.1f} GStencil/s)")


if __name__ == "__main__":
    main()

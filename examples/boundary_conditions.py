"""Boundary conditions: the same heat stencil on three kinds of domain.

Every grid carries a boundary condition (:mod:`repro.stencils.boundary`)
that decides what happens to the radius-wide halo ring between sweeps:

* ``dirichlet`` — halo held fixed (the paper's benchmark setup, default);
* ``periodic``  — wrap-around halos: the interior tiles the space, the
  classic setting for turbulence / spectral-benchmark PDE domains;
* ``reflect``   — mirrored halos, the ghost-cell approximation of a
  zero-flux (Neumann) wall.

The condition rides on the :class:`repro.Grid`, enters the canonical
compile fingerprint (so cached plans can never cross boundaries), and is
honoured identically by the single-device and sharded engines — the sharded
run below is bit-identical to the single-device one under every condition.

Run with::

    PYTHONPATH=src python examples/boundary_conditions.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BOUNDARY_CONDITIONS,
    Problem,
    SolvePolicy,
    StencilPattern,
    StencilSession,
    make_grid,
    run_stencil_iterations,
)


def main() -> None:
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    print(f"Stencil: {heat}\n")

    with StencilSession(devices=4) as session:
        fingerprints = set()
        for boundary in BOUNDARY_CONDITIONS:
            grid = make_grid((128, 128), kind="gaussian", boundary=boundary)
            problem = Problem(heat, grid, iterations=8, tag=boundary)

            single = session.solve(problem, mode="single")
            sharded = session.solve(problem,
                                    SolvePolicy(mode="sharded", devices=4))
            identical = np.array_equal(single.output, sharded.output)

            reference = run_stencil_iterations(heat, grid, 8)
            error = float(np.max(np.abs(single.output - reference)))

            print(f"{boundary:10s}  fingerprint={single.fingerprint[:12]}  "
                  f"sharded==single: {identical}  "
                  f"|err| vs reference: {error:.2e}")
            assert identical and error < 5e-3
            fingerprints.add(single.fingerprint)

        # three boundary conditions -> three distinct compile fingerprints:
        # the cache can never serve a plan across boundaries
        stats = session.cache.stats
        print(f"\n{len(fingerprints)} distinct compile fingerprints for one "
              f"stencil — one per boundary condition "
              f"(cache: {stats.misses} compiles incl. shard plans, "
              f"{stats.hits} warm hits)")
        assert len(fingerprints) == len(BOUNDARY_CONDITIONS)

    # mass conservation: on a periodic domain this conservative stencil
    # (weights sum to 1) preserves the total interior heat exactly
    grid = make_grid((128, 128), kind="gaussian", boundary="periodic")
    out = run_stencil_iterations(heat, grid, 32)
    before = grid.data[1:-1, 1:-1].sum()
    after = out[1:-1, 1:-1].sum()
    print(f"\nPeriodic mass conservation over 32 sweeps: "
          f"{before:.6f} -> {after:.6f} "
          f"(drift {abs(after - before):.2e})")


if __name__ == "__main__":
    main()

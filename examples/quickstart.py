"""Quickstart: compile a 2D heat stencil for the simulated sparse Tensor Cores
and run a few time steps.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    StencilPattern,
    compile_stencil,
    make_grid,
    render_cuda_source,
    run_stencil,
    run_stencil_iterations,
)


def main() -> None:
    # 1. Describe the stencil: a classic 5-point explicit heat update.
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    print(f"Stencil: {heat}")

    # 2. Build a workload: a Gaussian temperature bump on a 128x128 grid.
    grid = make_grid((128, 128), kind="gaussian")

    # 3. Compile — layout search, 2:4 conversion and kernel generation happen here.
    compiled = compile_stencil(heat, grid.shape)
    plan = compiled.plan
    print("\nCompiled kernel plan:")
    for key, value in plan.summary().items():
        print(f"  {key:24s} {value}")

    # 4. Run 8 time steps on the simulated A100.
    result = run_stencil(compiled, grid, iterations=8)
    print(f"\nSimulated device time : {result.elapsed_seconds * 1e6:9.2f} us")
    print(f"Throughput            : {result.gstencil_per_second:9.2f} GStencil/s")
    print(f"Roofline side         : {'compute' if result.compute_seconds >= result.memory_seconds else 'memory'}-bound")

    # 5. Verify against the golden numpy reference.
    reference = run_stencil_iterations(heat, grid, 8)
    error = float(np.max(np.abs(result.output - reference)))
    print(f"Max |error| vs reference (fp16 device arithmetic): {error:.2e}")
    assert error < 5e-3

    # 6. Peek at the generated CUDA-like kernel source.
    source = render_cuda_source(plan)
    print("\nFirst lines of the generated kernel source:")
    print("\n".join(source.splitlines()[:12]))


if __name__ == "__main__":
    main()

"""Quickstart: compile a 2D heat stencil for the simulated sparse Tensor Cores
and run a few time steps — through the compilation cache, the way a serving
deployment would.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompileCache,
    StencilPattern,
    make_grid,
    render_cuda_source,
    run_stencil,
    run_stencil_iterations,
    sparstencil_solve,
)


def main() -> None:
    # 1. Describe the stencil: a classic 5-point explicit heat update.
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    print(f"Stencil: {heat}")

    # 2. Build a workload: a Gaussian temperature bump on a 128x128 grid.
    grid = make_grid((128, 128), kind="gaussian")

    # 3. Solve through the compilation cache — layout search, 2:4 conversion
    #    and kernel generation happen here, exactly once per fingerprint.
    cache = CompileCache()
    compiled, result = sparstencil_solve(heat, grid, 8, cache=cache)
    plan = compiled.plan
    print("\nCompiled kernel plan:")
    for key, value in plan.summary().items():
        print(f"  {key:24s} {value}")

    print(f"\nSimulated device time : {result.elapsed_seconds * 1e6:9.2f} us")
    print(f"Throughput            : {result.gstencil_per_second:9.2f} GStencil/s")
    print(f"Roofline side         : {'compute' if result.compute_seconds >= result.memory_seconds else 'memory'}-bound")

    # 4. Verify against the golden numpy reference.
    reference = run_stencil_iterations(heat, grid, 8)
    error = float(np.max(np.abs(result.output - reference)))
    print(f"Max |error| vs reference (fp16 device arithmetic): {error:.2e}")
    assert error < 5e-3

    # 5. Solve again: the warm cache skips morphing, conversion and the
    #    layout search entirely and goes straight to execution.
    compiled_again, warm = run_warm(heat, grid, cache)
    assert compiled_again is compiled
    assert np.array_equal(warm.output, result.output)
    stats = cache.stats
    print(f"\nCache after a repeat solve: {stats.hits} hit(s), "
          f"{stats.misses} miss(es), hit rate {stats.hit_rate:.0%}, "
          f"{stats.saved_seconds * 1e3:.1f} ms of compile time saved")

    # 6. Peek at the generated CUDA-like kernel source.
    source = render_cuda_source(plan)
    print("\nFirst lines of the generated kernel source:")
    print("\n".join(source.splitlines()[:12]))


def run_warm(heat, grid, cache):
    """A second request for the same workload: pure cache hit."""
    compiled = cache.compile(heat, grid.shape)
    return compiled, run_stencil(compiled, grid, iterations=8)


if __name__ == "__main__":
    main()

"""Quickstart: solve a 2D heat stencil through the session API.

A :class:`repro.StencilSession` is the one front door over every execution
mode: you describe *what* to solve as a :class:`repro.Problem`, optionally
*how* as a :class:`repro.SolvePolicy`, and get back a uniform
:class:`repro.Solution` with the output, the compiled plan and the
provenance of which engine actually ran.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Problem,
    StencilPattern,
    StencilSession,
    make_grid,
    render_cuda_source,
    run_stencil_iterations,
)


def main() -> None:
    # 1. Describe the stencil: a classic 5-point explicit heat update.
    heat = StencilPattern.star(2, 1, weights=[0.6, 0.1, 0.1, 0.1, 0.1],
                               name="heat-2d")
    print(f"Stencil: {heat}")

    # 2. Build a workload: a Gaussian temperature bump on a 128x128 grid.
    problem = Problem(heat, make_grid((128, 128), kind="gaussian"),
                      iterations=8, tag="quickstart")

    with StencilSession() as session:
        # 3. Solve.  Layout search, 2:4 conversion and kernel generation run
        #    here, exactly once per compile fingerprint (the session owns the
        #    compilation cache); mode="auto" routes through the perf model.
        solution = session.solve(problem)
        plan = solution.compiled.plan
        print("\nCompiled kernel plan:")
        for key, value in plan.summary().items():
            print(f"  {key:24s} {value}")

        result = solution.result
        print(f"\nRouted to             : {solution.provenance.executor} "
              f"({solution.provenance.reason})")
        print(f"Simulated device time : {result.elapsed_seconds * 1e6:9.2f} us")
        print(f"Throughput            : {solution.gstencil_per_second:9.2f} GStencil/s")
        print(f"Roofline side         : {'compute' if result.compute_seconds >= result.memory_seconds else 'memory'}-bound")

        # 4. Verify against the golden numpy reference.
        reference = run_stencil_iterations(heat, problem.grid, 8)
        error = float(np.max(np.abs(solution.output - reference)))
        print(f"Max |error| vs reference (fp16 device arithmetic): {error:.2e}")
        assert error < 5e-3

        # 5. Solve again: the warm session cache skips morphing, conversion
        #    and the layout search entirely and goes straight to execution.
        warm = session.solve(problem)
        assert warm.compiled is solution.compiled
        assert np.array_equal(warm.output, solution.output)
        stats = session.cache.stats
        print(f"\nCache after a repeat solve: {stats.hits} hit(s), "
              f"{stats.misses} miss(es), hit rate {stats.hit_rate:.0%}, "
              f"{stats.saved_seconds * 1e3:.1f} ms of compile time saved")

    # 6. Peek at the generated CUDA-like kernel source.
    source = render_cuda_source(plan)
    print("\nFirst lines of the generated kernel source:")
    print("\n".join(source.splitlines()[:12]))


if __name__ == "__main__":
    main()

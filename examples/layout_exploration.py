"""Explore the (r1, r2) layout space for a kernel (the Figure-9 heatmap data).

The automatic kernel generator evaluates every candidate layout with the
analytical roofline of Eq. 6-10 and keeps the fastest.  This script prints
the full candidate table for Box-2D49P, shows the compute-density heatmap the
bottom half of Figure 9 plots, and demonstrates how the chosen layout differs
between a small star kernel and a large box kernel.

Run with::

    python examples/layout_exploration.py
"""

from __future__ import annotations

from repro import StencilPattern, search_layout
from repro.analysis.sparsity import analyze_sparsity
from repro.core.morphing import MorphConfig

GRID = (2048, 2048)


def explore(pattern: StencilPattern) -> None:
    print(f"\n=== {pattern.name}  ({pattern.points} taps, k={pattern.diameter}) "
          f"on a {GRID[0]}x{GRID[1]} grid ===")
    result = search_layout(pattern, GRID)
    table = result.as_table()
    table.sort(key=lambda row: row["t_total"])

    header = f"{'r1':>4} {'r2':>4} {'t_sweep(us)':>12} {'bound':>8} " \
             f"{'k_padded':>9} {'sparsity':>9} {'density':>8}"
    print(header)
    print("-" * len(header))
    for row in table[:10]:
        print(f"{row['r1']:>4} {row['r2']:>4} {row['t_total'] * 1e6:>12.2f} "
              f"{row['bound']:>8} {row['k_padded']:>9} {row['sparsity']:>9.2f} "
              f"{row['compute_density']:>8.3f}")

    best = result.best
    print(f"--> selected (r1={best.r1}, r2={best.r2}), "
          f"modelled sweep {best.t_total * 1e6:.2f} us")

    report = analyze_sparsity(pattern, MorphConfig.from_r1_r2(2, best.r1, best.r2))
    print(f"    morphed sparsity {report.morphed_sparsity:.2f} -> "
          f"converted sparsity {report.converted_sparsity:.2f} "
          f"({report.padded_columns} zero columns added, "
          f"K {report.k_prime} -> {report.k_padded})")

    grid, r2_values, r1_values = result.density_grid()
    print("\nCompute-density heatmap (rows = r2, cols = r1):")
    print("      " + " ".join(f"{r1:>6}" for r1 in r1_values))
    for i, r2 in enumerate(r2_values):
        cells = " ".join(
            f"{grid[i, j]:6.3f}" if grid[i, j] == grid[i, j] else "     -"
            for j in range(len(r1_values)))
        print(f"r2={r2:<3} {cells}")


def main() -> None:
    explore(StencilPattern.box(2, 3, name="box-2d49p"))
    explore(StencilPattern.star(2, 1, name="heat-2d"))


if __name__ == "__main__":
    main()

"""Unit tests for repro.util.timing, repro.util.rng and repro.util.parallel."""

import threading

import numpy as np
import pytest

from repro.util.parallel import default_workers, parallel_map
from repro.util.rng import DEFAULT_SEED, default_rng
from repro.util.timing import StageTimer, Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            sum(range(100))
        assert t.elapsed > 0.0

    def test_multiple_intervals_accumulate(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestStageTimer:
    def test_stage_records_named_timing(self):
        st = StageTimer()
        with st.stage("a"):
            sum(range(10))
        assert "a" in st.stages
        assert st.stages["a"] >= 0.0

    def test_total_is_sum_of_stages(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        with st.stage("b"):
            pass
        assert st.total() == pytest.approx(st.stages["a"] + st.stages["b"])

    def test_same_stage_accumulates(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        first = st.stages["a"]
        with st.stage("a"):
            pass
        assert st.stages["a"] >= first

    def test_fractions_sum_to_one(self):
        st = StageTimer()
        with st.stage("a"):
            sum(range(1000))
        with st.stage("b"):
            sum(range(1000))
        fractions = st.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert StageTimer().fractions() == {}


class TestDefaultRng:
    def test_deterministic_with_default_seed(self):
        a = default_rng().random(5)
        b = default_rng().random(5)
        assert np.array_equal(a, b)

    def test_explicit_seed_changes_stream(self):
        a = default_rng(1).random(5)
        b = default_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(20)) == [i * i for i in range(20)]

    def test_empty_and_single(self):
        assert parallel_map(lambda x: x, []) == []
        assert parallel_map(lambda x: x + 1, [41]) == [42]

    def test_serial_fallback_runs_on_caller_thread(self):
        threads = set()
        parallel_map(lambda x: threads.add(threading.current_thread()),
                     [1, 2, 3], max_workers=1)
        assert threads == {threading.current_thread()}

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"item {x}")
        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2, 3, 4], max_workers=4)

    def test_default_workers_bounds(self):
        assert default_workers(0) == 1
        assert default_workers(1) == 1
        assert 1 <= default_workers(10_000) <= 10_000

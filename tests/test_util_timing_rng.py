"""Unit tests for repro.util.timing and repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, default_rng
from repro.util.timing import StageTimer, Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            sum(range(100))
        assert t.elapsed > 0.0

    def test_multiple_intervals_accumulate(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestStageTimer:
    def test_stage_records_named_timing(self):
        st = StageTimer()
        with st.stage("a"):
            sum(range(10))
        assert "a" in st.stages
        assert st.stages["a"] >= 0.0

    def test_total_is_sum_of_stages(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        with st.stage("b"):
            pass
        assert st.total() == pytest.approx(st.stages["a"] + st.stages["b"])

    def test_same_stage_accumulates(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        first = st.stages["a"]
        with st.stage("a"):
            pass
        assert st.stages["a"] >= first

    def test_fractions_sum_to_one(self):
        st = StageTimer()
        with st.stage("a"):
            sum(range(1000))
        with st.stage("b"):
            sum(range(1000))
        fractions = st.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert StageTimer().fractions() == {}


class TestDefaultRng:
    def test_deterministic_with_default_seed(self):
        a = default_rng().random(5)
        b = default_rng().random(5)
        assert np.array_equal(a, b)

    def test_explicit_seed_changes_stream(self):
        a = default_rng(1).random(5)
        b = default_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)

"""Golden-regression tests: frozen reference outputs for Table-2 workloads.

Two layers of protection per fixture (see ``tests/golden/generate_golden.py``):

* against the stored *numpy reference* with the fp16 device tolerance —
  the pipeline must stay functionally correct;
* against the stored *pipeline output* near-exactly — refactors of the
  compile/execute path must not silently move the numerics at all.

The cached and batched service paths are held to the same goldens, so the new
serving layer can never return different numbers than a direct solve.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import compile_stencil, get_benchmark, make_grid, run_stencil
from repro.service import CompileCache, SolveRequest, solve_many

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Must mirror CASES in tests/golden/generate_golden.py.
CASES = [
    ("Heat-1D", (2048,), 4, 2026),
    ("Heat-2D", (96, 96), 4, 2026),
    ("Box-2D49P", (96, 96), 2, 2026),
]

#: fp16 device-arithmetic tolerance (same bound the e2e tests use).
REFERENCE_TOL = 5e-3
#: Drift bound for the frozen pipeline output: effectively exact, with a
#: whisker of slack for BLAS/numpy reduction-order differences across builds.
DRIFT_TOL = 1e-9


def load_fixture(name: str):
    path = GOLDEN_DIR / f"{name.lower()}.npz"
    assert path.exists(), (
        f"golden fixture {path} missing — regenerate with "
        f"`PYTHONPATH=src python tests/golden/generate_golden.py`")
    return np.load(path)

def workload(name: str, grid_shape, seed: int):
    config = get_benchmark(name)
    return config.pattern, make_grid(grid_shape, kind="random", seed=seed)


@pytest.mark.parametrize("name,grid_shape,iterations,seed", CASES,
                         ids=[c[0] for c in CASES])
class TestGoldenRegression:
    def test_fixture_matches_workload(self, name, grid_shape, iterations, seed):
        fixture = load_fixture(name)
        assert tuple(fixture["grid_shape"]) == tuple(grid_shape)
        assert int(fixture["iterations"]) == iterations
        assert int(fixture["seed"]) == seed

    def test_run_stencil_matches_golden(self, name, grid_shape, iterations, seed):
        fixture = load_fixture(name)
        pattern, grid = workload(name, grid_shape, seed)
        compiled = compile_stencil(pattern, grid_shape)
        result = run_stencil(compiled, grid, iterations)
        assert np.max(np.abs(result.output - fixture["reference"])) < REFERENCE_TOL
        np.testing.assert_allclose(result.output, fixture["pipeline"],
                                   rtol=0.0, atol=DRIFT_TOL)

    def test_cached_solve_matches_golden(self, name, grid_shape, iterations, seed):
        fixture = load_fixture(name)
        pattern, grid = workload(name, grid_shape, seed)
        cache = CompileCache()
        cache.compile(pattern, grid_shape)           # cold compile
        compiled = cache.compile(pattern, grid_shape)  # warm hit
        assert cache.stats.hits == 1
        result = run_stencil(compiled, grid, iterations)
        np.testing.assert_allclose(result.output, fixture["pipeline"],
                                   rtol=0.0, atol=DRIFT_TOL)


@pytest.mark.slow
def test_batched_service_matches_goldens():
    """One batch over all golden workloads reproduces every fixture."""
    requests = []
    fixtures = []
    for name, grid_shape, iterations, seed in CASES:
        pattern, grid = workload(name, grid_shape, seed)
        requests.append(SolveRequest(pattern, grid, iterations, tag=name))
        fixtures.append(load_fixture(name))
    report = solve_many(requests)
    for item, fixture in zip(report.items, fixtures):
        np.testing.assert_allclose(item.result.output, fixture["pipeline"],
                                   rtol=0.0, atol=DRIFT_TOL)
